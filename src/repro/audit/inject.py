"""Seeded violation injection: plant known corruptions, score recall.

An auditor that has never been proven to *catch* anything is a dashboard,
not a safety net.  The :class:`ViolationInjector` plants corruptions the
auditor must find — each through the real damage path the corresponding
production failure would take:

* **dropped relay event** — a whole transaction window silently removed
  from a relay buffer (``Relay.drop_window``), the failure a consumer
  checkpoint skips straight past;
* **bit-flipped stored value** — one bit flipped inside a Voldemort
  log-structured record on the simulated disk, caught as a CRC failure
  only when the value is next read;
* **skipped index update** — a document removed from a search index its
  Databus consumer had already applied;
* **duplicated Kafka message** — an already-counted payload produced to
  the broker a second time, bypassing the producer's audit counting;
* **corrupted store write** — an arbitrary wrong write applied through
  a caller-supplied writer (e.g. a stale document put straight to an
  Espresso master).

Every plant is scheduled through the fault plan's ``inject`` action so
it lands at a deterministic simulated time and appears in the executed
fault trace, and every plant records a :class:`PlantedViolation` — the
ground truth (constraint, subject, key, guilty stage) that
:func:`reconcile` scores the auditor's findings against: caught,
missed, unexpected, and top-1 blame accuracy.

The injector deliberately takes the plan, clusters, and stores as
duck-typed arguments (the layering contract forbids ``audit`` importing
``simnet`` or ``migration``): it calls ``plan.inject(...)`` and
``plan.disk.flip_bit(...)`` but never names their types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.audit.blame import (
    STAGE_BROKER,
    STAGE_INDEXER,
    STAGE_RELAY,
    STAGE_STORAGE_MEDIA,
    STAGE_STORE_WRITER,
)
from repro.audit.engine import AuditFinding
from repro.databus.relay import DEFAULT_BUFFER, Relay
from repro.kafka.message import Message, MessageSet

KIND_DROPPED_RELAY = "dropped-relay-event"
KIND_BIT_FLIP = "bit-flipped-value"
KIND_SKIPPED_INDEX = "skipped-index-update"
KIND_DUPLICATED_KAFKA = "duplicated-kafka-message"
KIND_CORRUPT_WRITE = "corrupted-store-write"


@dataclass(frozen=True)
class PlantedViolation:
    """Ground truth for one planted corruption."""

    kind: str
    constraint: str   # the constraint expected to fire
    subject: str      # its subject
    key: str          # the Violation.key (repr) expected in the finding
    stage: str        # the pipeline stage truly responsible
    at: float         # scheduled simulated time

    @property
    def identity(self) -> tuple[str, str, str]:
        return (self.constraint, self.subject, self.key)


class ViolationInjector:
    """Plants corruptions through a fault plan and records ground truth."""

    def __init__(self):
        self.planted: list[PlantedViolation] = []

    def _plant(self, kind: str, constraint: str, subject: str, key: str,
               stage: str, at: float) -> PlantedViolation:
        planted = PlantedViolation(kind, constraint, subject, key, stage, at)
        self.planted.append(planted)
        return planted

    # -- the injection kinds ----------------------------------------------

    def drop_relay_window(self, plan, at: float, relay: Relay, scn: int, *,
                          constraint: str, subject: str, key: object,
                          buffer_name: str = DEFAULT_BUFFER
                          ) -> PlantedViolation:
        """Silently remove the window committed at ``scn`` from the
        relay before any consumer polls it; the consumer checkpoint
        skips the gap without error — only containment can see it."""
        def fire() -> None:
            relay.drop_window(scn, buffer_name)

        plan.inject(at, f"drop-relay-window:{relay.name}:scn={scn}", fire)
        return self._plant(KIND_DROPPED_RELAY, constraint, subject,
                           repr(key), STAGE_RELAY, at)

    def flip_voldemort_bit(self, plan, at: float, cluster, store: str,
                           node_id: int, key: bytes, *, constraint: str,
                           subject: str) -> PlantedViolation:
        """Flip one bit inside the newest stored record for ``key`` on
        one replica's log.  The engine's CRC turns the flip into a
        ``ChecksumError`` on the next read, which the replica probe
        reports as an unreadable value — replica divergence."""
        node = cluster.node_name(node_id)

        def fire() -> None:
            engine = cluster.server_for(node_id).engine(store)
            offset, length = engine.record_span(key)
            path = f"{store}/{engine.LOG_NAME}"
            # last byte of the record: always inside the value/flag body,
            # so the header survives and the CRC check does the catching
            plan.disk.flip_bit(node, path, offset=offset + length - 1)

        plan.inject(at, f"bit-flip:{node}:{store}:{key!r}", fire)
        return self._plant(KIND_BIT_FLIP, constraint, subject, repr(key),
                           STAGE_STORAGE_MEDIA, at)

    def skip_index_update(self, plan, at: float, index, doc_id, *,
                          constraint: str, subject: str,
                          key: object = None) -> PlantedViolation:
        """Un-apply one already-indexed document, as if the indexer had
        skipped the update while still checkpointing past it.  ``key``
        is the source key the containment constraint will report (it
        defaults to the doc id, but containment over a SQL table keys
        violations by primary-key tuple)."""
        def fire() -> None:
            index.remove(doc_id)

        plan.inject(at, f"skip-index-update:{doc_id!r}", fire)
        return self._plant(KIND_SKIPPED_INDEX, constraint, subject,
                           repr(doc_id if key is None else key),
                           STAGE_INDEXER, at)

    def duplicate_kafka_message(self, plan, at: float, cluster, topic: str,
                                partition: int, payload: bytes, window: int,
                                *, constraint: str, subject: str
                                ) -> PlantedViolation:
        """Produce an already-counted payload straight to the broker,
        bypassing the auditing producer — consumed exceeds produced for
        the payload's window."""
        def fire() -> None:
            cluster.broker_for(topic, partition).produce(
                topic, partition, MessageSet([Message(payload)]))

        plan.inject(at, f"duplicate-kafka:{topic}-{partition}:w{window}",
                    fire)
        return self._plant(KIND_DUPLICATED_KAFKA, constraint, subject,
                           repr((topic, window)), STAGE_BROKER, at)

    def corrupt_store_write(self, plan, at: float,
                            writer: Callable[[], None], *, constraint: str,
                            subject: str, key: object,
                            stage: str = STAGE_STORE_WRITER
                            ) -> PlantedViolation:
        """Apply an arbitrary wrong write through ``writer`` (e.g. a
        stale document put directly to a store master)."""
        plan.inject(at, f"corrupt-store-write:{key!r}", writer)
        return self._plant(KIND_CORRUPT_WRITE, constraint, subject,
                           repr(key), stage, at)


@dataclass(frozen=True)
class InjectionAudit:
    """The score card: planted corruptions vs reported findings."""

    caught: tuple[PlantedViolation, ...]
    missed: tuple[PlantedViolation, ...]
    unexpected: tuple[tuple[str, str, str], ...]  # finding identities
    blame_hits: int
    blame_total: int

    @property
    def exact(self) -> bool:
        """Caught everything planted and nothing else."""
        return not self.missed and not self.unexpected

    @property
    def blame_accuracy(self) -> float:
        if self.blame_total == 0:
            return 1.0
        return self.blame_hits / self.blame_total

    def summary(self) -> str:
        return (f"caught {len(self.caught)}/{len(self.caught) + len(self.missed)}, "
                f"{len(self.unexpected)} unexpected, "
                f"blame {self.blame_hits}/{self.blame_total} top-1")


def reconcile(planted: list[PlantedViolation],
              findings: list[AuditFinding]) -> InjectionAudit:
    """Match findings to ground truth by (constraint, subject, key)."""
    by_identity = {}
    for finding in findings:
        violation = finding.violation
        identity = (violation.constraint, violation.subject, violation.key)
        by_identity.setdefault(identity, finding)
    caught, missed = [], []
    blame_hits = blame_total = 0
    matched: set[tuple[str, str, str]] = set()
    for plant in planted:
        finding = by_identity.get(plant.identity)
        if finding is None:
            missed.append(plant)
            continue
        caught.append(plant)
        matched.add(plant.identity)
        if finding.blame is not None:
            blame_total += 1
            if finding.blame.top == plant.stage:
                blame_hits += 1
    unexpected = tuple(sorted(identity for identity in by_identity
                              if identity not in matched))
    return InjectionAudit(tuple(caught), tuple(missed), unexpected,
                          blame_hits, blame_total)
