"""Blame attribution: walk the data lineage, rank the guilty stage.

A violation says *what* diverged; operators need *where*.  Every
derived-data path in the repo is a pipeline —

    commit → capture → relay → consumer → store writer

for Databus-fed stores, ``producer → broker`` for the Kafka audit
trail, ``replication → storage media`` for Voldemort replicas — and
each stage exposes a durable position (binlog SCN, relay buffer
contents, consumer checkpoint, Kafka offsets) that can be interrogated
after the fact.  A :class:`Lineage` is that pipeline written down as an
ordered list of ``(stage, check)`` pairs, where ``check`` inspects one
violation and answers: did the data make it *through* this stage
intact?

Ranking follows the pipeline's causal order: the **first** failing
stage is the most responsible (everything upstream of it demonstrably
did its job; everything downstream never received the data), so it gets
score 1.0 and each later failing stage half the previous.  Stages whose
check cannot decide (``None`` or a taxonomy error) get a small residual
score rather than zero — unknown is not innocent.  If every check
passes yet the violation exists, the last stage — the one closest to
the corrupted artifact — takes a low-confidence default blame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError, ReproError
from repro.audit.constraints import Violation

# Canonical stage names, shared by lineages and the injector's
# ground-truth records so accuracy can be scored by string equality.
STAGE_COMMIT = "commit"
STAGE_CAPTURE = "capture"
STAGE_RELAY = "relay"
STAGE_CONSUMER = "consumer"
STAGE_STORE_WRITER = "store-writer"
STAGE_INDEXER = "indexer"
STAGE_PRODUCER = "producer"
STAGE_BROKER = "broker"
STAGE_REPLICATION = "replication"
STAGE_STORAGE_MEDIA = "storage-media"

#: A check answers: did this stage handle the violated key correctly?
#: True = verified good, False = verified broken, None = cannot tell.
StageCheck = Callable[[Violation], bool | None]


@dataclass(frozen=True)
class Evidence:
    """One interrogated stage: its verdict and a human-readable detail."""

    stage: str
    ok: bool | None
    detail: str = ""


@dataclass(frozen=True)
class BlameVerdict:
    """The ranked outcome of one lineage walk."""

    top: str                                   # most responsible stage
    ranking: tuple[tuple[str, float], ...]     # (stage, score), best first
    evidence: tuple[Evidence, ...]             # pipeline order

    def score_of(self, stage: str) -> float:
        for name, score in self.ranking:
            if name == stage:
                return score
        return 0.0


class Lineage:
    """An ordered pipeline of (stage, check) pairs for one constraint."""

    def __init__(self, stages: list[tuple[str, StageCheck]]):
        if not stages:
            raise ConfigurationError("a lineage needs at least one stage")
        names = [name for name, _ in stages]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate stage names in {names}")
        self.stages = list(stages)

    def stage_names(self) -> list[str]:
        return [name for name, _ in self.stages]


class BlameEngine:
    """Maps constraint names to lineages and attributes violations."""

    def __init__(self):
        self._lineages: dict[str, Lineage] = {}
        self.attributions = 0

    def register(self, constraint_name: str, lineage: Lineage) -> None:
        if constraint_name in self._lineages:
            raise ConfigurationError(
                f"lineage for {constraint_name!r} already registered")
        self._lineages[constraint_name] = lineage

    def lineage_for(self, constraint_name: str) -> Lineage | None:
        return self._lineages.get(constraint_name)

    def attribute(self, violation: Violation) -> BlameVerdict | None:
        """Walk the violation's lineage; None when none is registered."""
        lineage = self._lineages.get(violation.constraint)
        if lineage is None:
            return None
        self.attributions += 1
        evidence: list[Evidence] = []
        for stage, check in lineage.stages:
            try:
                ok = check(violation)
            except ReproError as exc:
                evidence.append(Evidence(
                    stage, None, f"check raised {type(exc).__name__}: {exc}"))
                continue
            detail = {True: "verified intact", False: "verified broken",
                      None: "undetermined"}[ok]
            evidence.append(Evidence(stage, ok, detail))
        return _rank(lineage, evidence)


def _rank(lineage: Lineage, evidence: list[Evidence]) -> BlameVerdict:
    names = lineage.stage_names()
    scores = {name: 0.0 for name in names}
    failed = [e.stage for e in evidence if e.ok is False]
    unknown = [e.stage for e in evidence if e.ok is None]
    if failed:
        # first broken link in causal order carries the blame; later
        # breakage is likely downstream fallout of the same loss
        for rank, stage in enumerate(failed):
            scores[stage] = 1.0 / (2 ** rank)
        for stage in unknown:
            scores[stage] = max(scores[stage], 0.1)
    elif unknown:
        for rank, stage in enumerate(unknown):
            scores[stage] = 0.5 / (2 ** rank)
    else:
        # every stage checks out yet the data is wrong: default to the
        # stage closest to the corrupted artifact, at low confidence
        scores[names[-1]] = 0.1
    order = {name: index for index, name in enumerate(names)}
    ranking = tuple(sorted(scores.items(),
                           key=lambda item: (-item[1], order[item[0]])))
    return BlameVerdict(top=ranking[0][0], ranking=ranking,
                        evidence=tuple(evidence))
