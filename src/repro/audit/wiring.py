"""Ready-made probes and lineages for the repo's derived-data paths.

The constraint DSL is store-agnostic — it sees closures.  This module
builds those closures for the pipelines that actually exist here:

* sqlstore → Databus → Espresso (the migration target path);
* sqlstore → Databus → search index;
* Voldemort replicas behind a routed store;
* Kafka's §V.D produced/consumed audit counts;
* the migration cutover gate, re-expressed as declared constraints.

Probes take their stores duck-typed wherever the layering contract has
no edge (the migration ``EspressoTarget``, a search index, a reconciler)
and read public positions only: binlog transactions, relay buffer
contents, consumer checkpoints, replica engines via the routing ring.
Everything is sorted at the point of iteration so probe output — and
therefore violation order — is deterministic.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.common.errors import ChecksumError, KeyNotFoundError
from repro.audit.blame import (
    STAGE_BROKER,
    STAGE_CAPTURE,
    STAGE_COMMIT,
    STAGE_CONSUMER,
    STAGE_PRODUCER,
    STAGE_RELAY,
    STAGE_REPLICATION,
    STAGE_STORAGE_MEDIA,
    STAGE_STORE_WRITER,
    Lineage,
)
from repro.audit.constraints import (
    ABSENT_VALUE,
    UNREADABLE,
    KeySetContainment,
    ValueEquality,
    Violation,
)
from repro.databus.relay import DEFAULT_BUFFER, Relay
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.database import SqlDatabase


# -- sqlstore-side probes ---------------------------------------------------

def binlog_key_scns(database: SqlDatabase, table: str
                    ) -> Callable[[], dict[tuple, int]]:
    """``{live key: last commit SCN}`` for one table, replayed from the
    binlog — the authoritative "what should downstream stores hold"."""
    def probe() -> dict[tuple, int]:
        live: dict[tuple, int] = {}
        for txn in database.binlog.read_from(0):
            for change in txn.changes:
                if change.table != table:
                    continue
                if change.kind is ChangeKind.DELETE:
                    live.pop(change.key, None)
                else:
                    live[change.key] = txn.scn
        return live
    return probe


def source_documents(database: SqlDatabase, table: str, transform
                     ) -> Callable[[], dict[tuple, dict]]:
    """``{source key: expected target document}`` under a row transform
    (the migration's :class:`RowTransform`, duck-typed)."""
    def probe() -> dict[tuple, dict]:
        schema = database.table(table).schema
        return {schema.key_of(row): transform.document_of(table, row)
                for row in database.table(table).scan()}
    return probe


# -- Espresso-target constraints --------------------------------------------

def espresso_containment(name: str, database: SqlDatabase, table: str,
                         target, horizon: Callable[[], int]
                         ) -> KeySetContainment:
    """Every committed source row reaches the Espresso target by the
    certified horizon (``target`` is a migration ``EspressoTarget``)."""
    return KeySetContainment(
        name, subject=f"espresso:{table}",
        source_items=binlog_key_scns(database, table),
        contains=lambda key: target.get_document(table, key) is not None,
        horizon=horizon)


def espresso_value_equality(name: str, database: SqlDatabase, table: str,
                            target, horizon: Callable[[], int] | None = None
                            ) -> ValueEquality:
    """Espresso documents equal the transform of their source rows."""
    scns = binlog_key_scns(database, table)

    def actual_of(key: tuple) -> object:
        document = target.get_document(table, key)
        return ABSENT_VALUE if document is None else document

    return ValueEquality(
        name, subject=f"espresso:{table}",
        expected_items=source_documents(database, table, target.transform),
        actual_of=actual_of,
        scn_of=lambda key: scns().get(key, 0),
        horizon=horizon)


# -- search-index constraints ------------------------------------------------

def search_containment(name: str, database: SqlDatabase, table: str,
                       index, horizon: Callable[[], int],
                       doc_id_of: Callable[[tuple], object] | None = None
                       ) -> KeySetContainment:
    """Every committed source row is present in the search index by the
    horizon.  ``doc_id_of`` maps a source key to the index's document
    id (default: the key's first column)."""
    ids = doc_id_of if doc_id_of is not None else (lambda key: key[0])
    return KeySetContainment(
        name, subject=f"search:{table}",
        source_items=binlog_key_scns(database, table),
        contains=lambda key: ids(key) in index,
        horizon=horizon)


# -- Voldemort replica probes ------------------------------------------------

def voldemort_replica_values(cluster, routed, store: str,
                             keys: Callable[[], Iterable[bytes]]
                             ) -> Callable[[], dict]:
    """``{key: {replica: value}}`` read directly off each responsible
    replica's engine.  Unserved keys map to the sentinels the
    :class:`~repro.audit.constraints.ReplicaAgreement` constraint (and
    the storage-media lineage check) understand."""
    def probe() -> dict:
        out: dict[bytes, dict[str, object]] = {}
        for key in sorted(keys()):
            by_replica: dict[str, object] = {}
            for node_id in routed.replica_nodes(key):
                name = cluster.node_name(node_id)
                try:
                    versions = cluster.server_for(node_id).engine(store).get(key)
                except KeyNotFoundError:
                    by_replica[name] = ABSENT_VALUE
                except ChecksumError:
                    by_replica[name] = UNREADABLE
                else:
                    by_replica[name] = tuple(
                        sorted(v.value or b"" for v in versions))
            out[key] = by_replica
        return out
    return probe


def voldemort_replica_lineage(replica_values: Callable[[], dict]) -> Lineage:
    """replication (every replica holds the key) → storage media (every
    held copy is readable)."""
    def held(violation: Violation) -> dict | None:
        return replica_values().get(violation.raw_key)

    def replication_check(violation: Violation) -> bool | None:
        by_replica = held(violation)
        if by_replica is None:
            return None
        return all(value != ABSENT_VALUE for value in by_replica.values())

    def media_check(violation: Violation) -> bool | None:
        by_replica = held(violation)
        if by_replica is None:
            return None
        return all(value != UNREADABLE for value in by_replica.values())

    return Lineage([(STAGE_REPLICATION, replication_check),
                    (STAGE_STORAGE_MEDIA, media_check)])


# -- the Databus pipeline lineage -------------------------------------------

def sqlstore_pipeline_lineage(database: SqlDatabase, table: str, capture,
                              relay: Relay, client,
                              store_check: Callable[[tuple], bool],
                              store_stage: str = STAGE_STORE_WRITER,
                              buffer_name: str = DEFAULT_BUFFER) -> Lineage:
    """commit → capture → relay → consumer → store writer, interrogated
    through the positions each stage already exposes: the binlog, the
    capture adapter's ``captured_through``, the relay buffer's window
    contents, and the client checkpoint.  ``store_check`` answers
    whether the final store holds the key correctly (containment: "is
    it there"; equality: "does it match")."""
    scns = binlog_key_scns(database, table)

    def scn_of(violation: Violation) -> int | None:
        return scns().get(violation.raw_key)

    def commit_check(violation: Violation) -> bool | None:
        # the violated key must trace back to a real commit; if not,
        # the violation is about a row the source itself lost
        return scn_of(violation) is not None

    def capture_check(violation: Violation) -> bool | None:
        scn = scn_of(violation)
        if scn is None:
            return None
        return capture.captured_through >= scn

    def relay_check(violation: Violation) -> bool | None:
        scn = scn_of(violation)
        if scn is None:
            return None
        buffer = relay.buffer(buffer_name)
        # intact if the window is still being served, or left the buffer
        # through honest eviction (a lagging consumer bootstraps; the
        # data was never silently lost)
        return buffer.contains_scn(scn) or scn <= buffer.evicted_through

    def consumer_check(violation: Violation) -> bool | None:
        scn = scn_of(violation)
        if scn is None:
            return None
        return client.checkpoint >= scn

    def writer_check(violation: Violation) -> bool | None:
        if violation.raw_key is None:
            return None
        return store_check(violation.raw_key)

    return Lineage([(STAGE_COMMIT, commit_check),
                    (STAGE_CAPTURE, capture_check),
                    (STAGE_RELAY, relay_check),
                    (STAGE_CONSUMER, consumer_check),
                    (store_stage, writer_check)])


# -- Kafka audit-trail wiring ------------------------------------------------

def kafka_counts(reconciler) -> tuple[Callable[[], dict], Callable[[], dict]]:
    """(produced, consumed) probes over an ``AuditReconciler``
    (duck-typed: anything with ``reconcile() -> AuditReport``)."""
    return (lambda: reconciler.reconcile().produced,
            lambda: reconciler.reconcile().consumed)


def kafka_audit_lineage(reconciler) -> Lineage:
    """producer (claimed a count for the bucket) → broker (holds exactly
    the claimed count)."""
    def producer_check(violation: Violation) -> bool | None:
        if violation.raw_key is None:
            return None
        return violation.raw_key in reconciler.reconcile().produced

    def broker_check(violation: Violation) -> bool | None:
        if violation.raw_key is None:
            return None
        report = reconciler.reconcile()
        return (report.produced.get(violation.raw_key, 0)
                == report.consumed.get(violation.raw_key, 0))

    return Lineage([(STAGE_PRODUCER, producer_check),
                    (STAGE_BROKER, broker_check)])


# -- the migration cutover gate ---------------------------------------------

def cutover_constraints(proxy) -> list:
    """The migration cutover gate as declared constraints: for every
    table, target values equal transformed source rows, every source
    key is on the target, and the target holds no extra keys.  ``proxy``
    is a migration ``DualWriteProxy`` (duck-typed: ``source``,
    ``target``)."""
    source, target = proxy.source, proxy.target
    constraints = []
    for table in source.table_names():
        scns = binlog_key_scns(source, table)

        def actual_of(key: tuple, table: str = table) -> object:
            document = target.get_document(table, key)
            return ABSENT_VALUE if document is None else document

        constraints.append(KeySetContainment(
            f"cutover-containment-{table}", subject=f"espresso:{table}",
            source_items=scns,
            contains=lambda key, table=table:
                target.get_document(table, key) is not None,
            horizon=source_head(source)))
        constraints.append(ValueEquality(
            f"cutover-equality-{table}", subject=f"espresso:{table}",
            expected_items=source_documents(source, table, target.transform),
            actual_of=actual_of))
        constraints.append(KeySetContainment(
            f"cutover-no-extras-{table}", subject=f"source:{table}",
            source_items=lambda table=table:
                {key: 0 for key in target.dump(table)},
            contains=lambda key, table=table:
                source.table(table).contains(key),
            horizon=lambda: 0))
    return constraints


def cutover_check(proxy) -> Callable[[], list[Violation]]:
    """A drop-in for ``MigrationCoordinator(cutover_check=...)``: at the
    cutover gate, evaluate the declared constraints and return their
    violations (empty == safe to cut over)."""
    constraints = cutover_constraints(proxy)

    def check() -> list[Violation]:
        out: list[Violation] = []
        for constraint in constraints:
            out.extend(constraint.check())
        return out

    return check


def source_head(database: SqlDatabase) -> Callable[[], int]:
    """A horizon pinned to the source's committed head — correct once
    the pipeline is quiesced (the cutover gate runs with dual writes on
    and the stream drained, so there is no in-flight window)."""
    return lambda: database.last_committed_scn
