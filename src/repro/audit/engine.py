"""The continuous auditor: certified cuts, tick loop, violation reports.

Comparing a source store against a derived store is only meaningful at
a *consistent* horizon — compare mid-flight and every lagging row looks
like a loss.  The DBLog bracket machinery the migration backfill uses
(``SqlDatabase.write_watermark``) gives us exactly that for free: a
:class:`WatermarkCut` writes a watermark into the source commit order,
pumps the pipeline until every downstream position has passed the
watermark's SCN, and only then lets constraints compare the two sides
at that horizon.  The watermark is a real commit, so it flows through
the same relay/consumer path as the data it certifies — if the pipeline
is wedged, certification fails loudly instead of auditing a torn view.

The :class:`Auditor` owns declared constraints and cuts.  Each
:meth:`Auditor.tick` re-certifies the cuts, evaluates every constraint,
deduplicates findings by identity (a persistent violation is one
finding, not one per tick), stamps detection time from the injected
clock, meters each finding through the shared
:class:`~repro.common.metrics.MetricsRegistry` counter family, and —
when a :class:`~repro.audit.blame.BlameEngine` is attached — walks the
violation's lineage for a ranked blame verdict.

``report()``/``report_bytes()`` serialize the accumulated findings with
sorted keys and sorted ordering, so two same-seed runs produce
byte-identical reports — the property the seeded-injection suite
asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable

from repro.common.clock import Clock
from repro.common.errors import ConfigurationError, NonConvergenceError
from repro.common.metrics import MetricsRegistry
from repro.audit.blame import BlameEngine, BlameVerdict
from repro.audit.constraints import Constraint, Violation

#: the counter family auditor findings are metered through
VIOLATIONS_FAMILY = "audit.violations"


class WatermarkCut:
    """A certified virtual cut over one watermark-capable source.

    ``pump`` advances the pipeline one step (typically capture.poll()
    plus client.poll()); ``positions`` are the downstream SCN positions
    (consumer checkpoints) that must pass the watermark before the cut
    is certified.  ``certify`` returns the horizon SCN.
    """

    def __init__(self, source, pump: Callable[[], object],
                 positions: list[Callable[[], int]],
                 label: str = "audit-cut", max_rounds: int = 10_000):
        if not positions:
            raise ConfigurationError("a cut needs at least one position")
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        self.source = source
        self.pump = pump
        self.positions = list(positions)
        self.label = label
        self.max_rounds = max_rounds
        self.cuts_certified = 0
        self.last_scn = 0

    def certify(self) -> int:
        """Write a watermark and pump until every position passes it."""
        scn = self.source.write_watermark(self.label)
        for _ in range(self.max_rounds):
            if all(position() >= scn for position in self.positions):
                self.cuts_certified += 1
                self.last_scn = scn
                return scn
            self.pump()
        lagging = [index for index, position in enumerate(self.positions)
                   if position() < scn]
        raise NonConvergenceError(
            f"cut {self.label!r} did not certify SCN {scn} within "
            f"{self.max_rounds} pump rounds (positions {lagging} lagging)")


@dataclass(frozen=True)
class AuditFinding:
    """One deduplicated violation plus its blame verdict (if any)."""

    violation: Violation
    blame: BlameVerdict | None = None


class Auditor:
    """Continuous constraint evaluation over certified cuts."""

    def __init__(self, clock: Clock, metrics: MetricsRegistry | None = None,
                 blame: BlameEngine | None = None):
        self.clock = clock
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.blame = blame
        self._constraints: list[Constraint] = []
        self._cuts: list[WatermarkCut] = []
        self._seen: set[tuple[str, str, str, str]] = set()
        self.findings: list[AuditFinding] = []
        self.ticks = 0
        self._next_tick = None   # pending clock event for run_every

    # -- declaration -------------------------------------------------------

    def declare(self, constraint: Constraint) -> Constraint:
        if any(c.name == constraint.name for c in self._constraints):
            raise ConfigurationError(
                f"constraint {constraint.name!r} already declared")
        self._constraints.append(constraint)
        return constraint

    def add_cut(self, cut: WatermarkCut) -> WatermarkCut:
        self._cuts.append(cut)
        return cut

    def constraint_names(self) -> list[str]:
        return sorted(c.name for c in self._constraints)

    # -- the tick loop -----------------------------------------------------

    def tick(self) -> list[AuditFinding]:
        """Certify cuts, evaluate constraints; returns *new* findings."""
        self.ticks += 1
        for cut in self._cuts:
            cut.certify()
        now = round(self.clock.now(), 9)
        fresh: list[AuditFinding] = []
        for constraint in self._constraints:
            for violation in constraint.check():
                if violation.identity in self._seen:
                    continue
                self._seen.add(violation.identity)
                stamped = replace(violation, detected_at=now)
                self.metrics.family(VIOLATIONS_FAMILY).labels(
                    constraint=stamped.constraint,
                    kind=stamped.kind).increment()
                verdict = (self.blame.attribute(stamped)
                           if self.blame is not None else None)
                finding = AuditFinding(stamped, verdict)
                self.findings.append(finding)
                fresh.append(finding)
        self.metrics.counter("audit.ticks").increment()
        return fresh

    def run_every(self, interval: float, first_at: float | None = None) -> None:
        """Self-rescheduling ticks on the clock (SimClock-driven tests
        advance time; the auditor fires with it).  ``first_at`` defaults
        to one interval from now."""
        if interval <= 0:
            raise ConfigurationError("tick interval must be positive")
        if self._next_tick is not None:
            raise ConfigurationError("auditor is already running")

        def fire() -> None:
            self.tick()
            self._next_tick = self.clock.call_later(interval, fire)

        delay = (interval if first_at is None
                 else max(0.0, first_at - self.clock.now()))
        self._next_tick = self.clock.call_later(delay, fire)

    def stop(self) -> None:
        if self._next_tick is not None:
            self.clock.cancel(self._next_tick)
            self._next_tick = None

    # -- reporting ---------------------------------------------------------

    @property
    def violations(self) -> list[Violation]:
        return [finding.violation for finding in self.findings]

    def report(self) -> dict:
        """The accumulated findings as a deterministic document."""
        entries = []
        ordered = sorted(self.findings,
                         key=lambda f: (f.violation.constraint,
                                        f.violation.kind, f.violation.key))
        for finding in ordered:
            violation = finding.violation
            entry = {
                "constraint": violation.constraint,
                "kind": violation.kind,
                "subject": violation.subject,
                "key": violation.key,
                "expected": violation.expected,
                "actual": violation.actual,
                "scn": violation.scn,
                "detected_at": violation.detected_at,
            }
            if finding.blame is not None:
                entry["blame"] = {
                    "top": finding.blame.top,
                    "ranking": [[stage, score]
                                for stage, score in finding.blame.ranking],
                    "evidence": [{"stage": e.stage, "ok": e.ok,
                                  "detail": e.detail}
                                 for e in finding.blame.evidence],
                }
            entries.append(entry)
        return {
            "constraints": self.constraint_names(),
            "ticks": self.ticks,
            "cuts_certified": sum(cut.cuts_certified for cut in self._cuts),
            "violations": entries,
        }

    def report_bytes(self) -> bytes:
        """Canonical serialization, for byte-identical same-seed runs."""
        return json.dumps(self.report(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
