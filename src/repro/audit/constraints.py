"""Cross-store integrity constraints as declared, checkable objects.

The paper's §V.D audit trail is one hand-built instance of a general
idea: a *conservation law* between what one stage of a pipeline emitted
and what the next stage holds.  The repo now has five derived-data
paths (sqlstore→Databus→Espresso, Espresso→search index, Voldemort
replicas, Kafka audit counts, migration shadow reads), and each had its
own ad-hoc divergence check.  This module turns those checks into four
reusable constraint families:

* :class:`CountConservation` — per-bucket message counts claimed by the
  producer side equal the counts observed on the consumer side (§V.D
  generalized beyond Kafka);
* :class:`KeySetContainment` — every key committed in a source store by
  a given SCN horizon is present in a derived store (the horizon comes
  from a certified cut, so in-flight rows are never false positives);
* :class:`ValueEquality` — where a key exists on both sides, the
  derived value equals the declared transform of the source value;
* :class:`ReplicaAgreement` — after quiescence, every responsible
  replica of a key holds the same readable value.

A constraint never raises on a violated invariant: it *returns*
:class:`Violation` records carrying the evidence (expected, actual,
SCN) so the auditor can deduplicate, meter, and blame them.  All
iteration is explicitly sorted — same state, same violations, same
order — which is what makes same-seed audit reports byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.common.errors import ConfigurationError

#: Sentinel values probes use for keys a replica cannot serve.  They are
#: plain strings so they survive ``repr`` round-trips in reports.
ABSENT_VALUE = "<absent>"
UNREADABLE = "<unreadable>"

_PREVIEW_LIMIT = 120


def preview(value: object) -> str:
    """A bounded, deterministic rendering of a value for evidence."""
    text = repr(value)
    if len(text) > _PREVIEW_LIMIT:
        return text[:_PREVIEW_LIMIT] + "..."
    return text


@dataclass(frozen=True)
class Violation:
    """One detected integrity violation, with its evidence.

    All descriptive fields are plain strings so a report serializes
    deterministically; ``raw_key`` carries the original (typed) key for
    blame-engine lineage checks but never appears in reports.
    """

    constraint: str          # name of the violated constraint
    kind: str                # e.g. "missing-key", "replica-divergence"
    subject: str             # the store/pipeline under audit
    key: str                 # repr of the affected key or bucket
    expected: str
    actual: str
    scn: int = 0             # source commit SCN when known, else 0
    detected_at: float = 0.0  # stamped by the auditor at detection time
    raw_key: object = field(default=None, repr=False, compare=False)

    @property
    def identity(self) -> tuple[str, str, str, str]:
        """What makes a violation "the same finding" across ticks."""
        return (self.constraint, self.kind, self.subject, self.key)

    def render(self) -> str:
        return (f"[{self.constraint}] {self.kind} in {self.subject}: "
                f"key {self.key} expected {self.expected}, "
                f"got {self.actual}")


class Constraint:
    """Base class: a named invariant over one or more stores."""

    def __init__(self, name: str, subject: str):
        if not name or not subject:
            raise ConfigurationError("constraint needs a name and a subject")
        self.name = name
        self.subject = subject

    def check(self) -> list[Violation]:
        """Evaluate now; returns violations (empty == invariant holds)."""
        raise NotImplementedError

    def _violation(self, kind: str, raw_key: object, expected: str,
                   actual: str, scn: int = 0) -> Violation:
        return Violation(self.name, kind, self.subject, repr(raw_key),
                         expected, actual, scn=scn, raw_key=raw_key)


class CountConservation(Constraint):
    """Produced counts equal consumed counts, per bucket.

    ``produced`` and ``consumed`` return ``{bucket: count}`` maps (for
    the Kafka audit trail the bucket is ``(topic, window)``).  A deficit
    is lost messages; a surplus is duplicated messages.
    """

    def __init__(self, name: str, subject: str,
                 produced: Callable[[], dict],
                 consumed: Callable[[], dict]):
        super().__init__(name, subject)
        self.produced = produced
        self.consumed = consumed

    def check(self) -> list[Violation]:
        produced = dict(self.produced())
        consumed = dict(self.consumed())
        violations = []
        for bucket in sorted(set(produced) | set(consumed), key=repr):
            claimed = produced.get(bucket, 0)
            observed = consumed.get(bucket, 0)
            if claimed == observed:
                continue
            kind = ("lost-messages" if claimed > observed
                    else "duplicated-messages")
            violations.append(self._violation(
                kind, bucket,
                expected=f"{claimed} messages",
                actual=f"{observed} messages"))
        return violations


class KeySetContainment(Constraint):
    """Every source key committed by the horizon exists in the target.

    ``source_items`` returns ``{key: commit_scn}`` for the rows the
    source currently holds; ``contains`` answers membership in the
    derived store; ``horizon`` is the certified-cut SCN — keys committed
    after it are legitimately in flight and are skipped, which is what
    keeps a continuously-running check free of false positives.
    """

    def __init__(self, name: str, subject: str,
                 source_items: Callable[[], dict],
                 contains: Callable[[object], bool],
                 horizon: Callable[[], int]):
        super().__init__(name, subject)
        self.source_items = source_items
        self.contains = contains
        self.horizon = horizon

    def check(self) -> list[Violation]:
        horizon = int(self.horizon())
        violations = []
        for key, scn in sorted(self.source_items().items(),
                               key=lambda item: (item[1], repr(item[0]))):
            if scn > horizon:
                continue  # committed after the cut: still in flight
            if not self.contains(key):
                violations.append(self._violation(
                    "missing-key", key,
                    expected=f"present (committed at SCN {scn}, "
                             f"horizon {horizon})",
                    actual="absent", scn=scn))
        return violations


class ValueEquality(Constraint):
    """Derived values equal the transform of their source values.

    ``expected_items`` returns ``{key: expected_value}`` (the transform
    already applied); ``actual_of`` reads the derived store and returns
    :data:`ABSENT_VALUE` for missing keys — absence is
    :class:`KeySetContainment`'s concern, so it is skipped here.  With
    ``scn_of`` and ``horizon`` given, keys committed past the cut are
    skipped like containment does.
    """

    def __init__(self, name: str, subject: str,
                 expected_items: Callable[[], dict],
                 actual_of: Callable[[object], object],
                 scn_of: Callable[[object], int] | None = None,
                 horizon: Callable[[], int] | None = None):
        super().__init__(name, subject)
        self.expected_items = expected_items
        self.actual_of = actual_of
        self.scn_of = scn_of
        self.horizon = horizon

    def check(self) -> list[Violation]:
        horizon = int(self.horizon()) if self.horizon is not None else None
        violations = []
        for key, expected in sorted(self.expected_items().items(),
                                    key=lambda item: repr(item[0])):
            scn = int(self.scn_of(key)) if self.scn_of is not None else 0
            if horizon is not None and scn > horizon:
                continue
            actual = self.actual_of(key)
            if actual == ABSENT_VALUE:
                continue
            if actual != expected:
                violations.append(self._violation(
                    "value-divergence", key,
                    expected=preview(expected), actual=preview(actual),
                    scn=scn))
        return violations


class ReplicaAgreement(Constraint):
    """Quorum peers hold the same readable value after quiescence.

    ``replica_values`` returns ``{key: {replica_name: value}}`` where
    the inner map covers exactly the replicas *responsible* for the key
    (the probe consults the routing ring); probes report keys a replica
    cannot serve as :data:`ABSENT_VALUE` or :data:`UNREADABLE`, which
    disagree with any real value and therefore surface here.
    """

    def __init__(self, name: str, subject: str,
                 replica_values: Callable[[], dict],
                 min_replicas: int = 1):
        super().__init__(name, subject)
        if min_replicas < 1:
            raise ConfigurationError("min_replicas must be >= 1")
        self.replica_values = replica_values
        self.min_replicas = min_replicas

    def _describe(self, by_replica: dict) -> str:
        parts = [f"{replica}={preview(value)}"
                 for replica, value in sorted(by_replica.items())]
        return ", ".join(parts)

    def check(self) -> list[Violation]:
        violations = []
        for key, by_replica in sorted(self.replica_values().items(),
                                      key=lambda item: repr(item[0])):
            if len(by_replica) < self.min_replicas:
                violations.append(self._violation(
                    "under-replicated", key,
                    expected=f">= {self.min_replicas} replicas",
                    actual=f"{len(by_replica)} replicas "
                           f"({self._describe(by_replica)})"))
                continue
            distinct = {repr(value) for value in by_replica.values()}
            if len(distinct) > 1:
                violations.append(self._violation(
                    "replica-divergence", key,
                    expected="all replicas agree",
                    actual=self._describe(by_replica)))
        return violations


def check_all(constraints: Iterable[Constraint]) -> list[Violation]:
    """Evaluate several constraints; violations in declaration order."""
    out: list[Violation] = []
    for constraint in constraints:
        out.extend(constraint.check())
    return out
