"""Continuous cross-system consistency auditing.

The paper's §V.D audit trail (produced counts vs consumed counts over
Kafka) generalized into an always-on subsystem: declared constraints
over primary and derived stores (:mod:`repro.audit.constraints`),
a tick-driven auditor evaluating them at certified watermark cuts
(:mod:`repro.audit.engine`), seeded violation injection proving the
auditor's recall (:mod:`repro.audit.inject`), and lineage-walking blame
attribution ranking the pipeline stage responsible for each violation
(:mod:`repro.audit.blame`).  :mod:`repro.audit.wiring` pre-builds the
probes and lineages for the pipelines this repo actually has.
"""

from repro.audit.blame import BlameEngine, BlameVerdict, Evidence, Lineage
from repro.audit.constraints import (
    ABSENT_VALUE,
    UNREADABLE,
    Constraint,
    CountConservation,
    KeySetContainment,
    ReplicaAgreement,
    ValueEquality,
    Violation,
    check_all,
)
from repro.audit.engine import AuditFinding, Auditor, WatermarkCut
from repro.audit.inject import (
    InjectionAudit,
    PlantedViolation,
    ViolationInjector,
    reconcile,
)

__all__ = [
    "ABSENT_VALUE",
    "UNREADABLE",
    "AuditFinding",
    "Auditor",
    "BlameEngine",
    "BlameVerdict",
    "Constraint",
    "CountConservation",
    "Evidence",
    "InjectionAudit",
    "KeySetContainment",
    "Lineage",
    "PlantedViolation",
    "ReplicaAgreement",
    "ValueEquality",
    "Violation",
    "ViolationInjector",
    "WatermarkCut",
    "check_all",
    "reconcile",
]
