"""The social graph service (paper §I.A, Figure I.1).

"The social graph powers the social features on the site from a
partitioned graph of LinkedIn members and their attribute data ...
Example queries include showing paths between users, calculating
minimum distances between users, counting or intersecting connection
lists."  It stays fresh by subscribing to the Databus change feed, like
the search and recommendation systems.
"""

from repro.socialgraph.graph import PartitionedSocialGraph
from repro.socialgraph.service import CONNECTION_TABLE, SocialGraphService

__all__ = [
    "PartitionedSocialGraph",
    "SocialGraphService",
    "CONNECTION_TABLE",
]
