"""The graph service as a Databus subscriber.

"the social graph, search, and recommendation systems subscribe to the
feed of profile changes" (§I.A).  Here the source of truth is a
``connection`` table in the primary store; every accepted or removed
connection flows through Databus into the in-memory partitioned graph,
keeping graph queries off the primary database entirely.
"""

from __future__ import annotations

from repro.common.serialization import decode_record
from repro.databus.client import DatabusClient, DatabusConsumer
from repro.databus.relay import Relay
from repro.socialgraph.graph import PartitionedSocialGraph
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.table import Column, TableSchema

CONNECTION_TABLE = TableSchema(
    "connection",
    (Column("low_member", int), Column("high_member", int),
     Column("accepted_at", int)),
    primary_key=("low_member", "high_member"),
)


def connection_row(a: int, b: int, accepted_at: int = 0) -> dict:
    """Canonical row for an undirected edge (low id first)."""
    low, high = sorted((a, b))
    return {"low_member": low, "high_member": high,
            "accepted_at": accepted_at}


class SocialGraphService(DatabusConsumer):
    """Maintains the graph from connection-table CDC events."""

    def __init__(self, relay: Relay, num_partitions: int = 16,
                 checkpoint: int = 0):
        self.relay = relay
        self.graph = PartitionedSocialGraph(num_partitions)
        self.client = DatabusClient(self, relay, checkpoint=checkpoint)
        self.events_applied = 0

    # -- Databus consumer callbacks -------------------------------------------

    def on_data_event(self, event) -> None:
        if event.source != CONNECTION_TABLE.name:
            return
        schema = self.relay.schemas.get(event.source, event.schema_version)
        row = decode_record(schema, event.payload)
        a, b = row["low_member"], row["high_member"]
        if event.kind is ChangeKind.DELETE:
            self.graph.disconnect(a, b)
        else:
            self.graph.connect(a, b)
        self.events_applied += 1

    # -- operation ----------------------------------------------------------------

    def catch_up(self) -> int:
        """Drain the relay; returns events applied this call."""
        before = self.events_applied
        self.client.run_to_head()
        return self.events_applied - before

    @property
    def checkpoint(self) -> int:
        return self.client.checkpoint

    # -- the site-facing query API (§I.A examples) -----------------------------------

    def degree_badge(self, viewer: int, profile: int) -> str:
        """The 1st/2nd/3rd-degree marker shown on every profile."""
        distance = self.graph.distance(viewer, profile, max_degrees=3)
        if distance is None:
            return "out-of-network"
        return {0: "self", 1: "1st", 2: "2nd", 3: "3rd"}[distance]

    def mutual_connections(self, viewer: int, profile: int) -> list[int]:
        return sorted(self.graph.shared_connections(viewer, profile))

    def path_between(self, viewer: int, profile: int) -> list[int] | None:
        return self.graph.shortest_path(viewer, profile)
