"""A partitioned undirected member graph with low-latency queries.

Adjacency is partitioned by member id over a fixed partition count
(the same fixed-logical-partition discipline as every other system in
the paper); queries that walk the graph (paths, distances) naturally
cross partitions.  All queries are bounded: the site never needs more
than a few degrees (§I.A's graph distances are the 1st/2nd/3rd-degree
badges on profiles).
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ConfigurationError


class PartitionedSocialGraph:
    """Undirected graph, adjacency sets sharded by member id."""

    def __init__(self, num_partitions: int = 16):
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        self.num_partitions = num_partitions
        self._shards: list[dict[int, set[int]]] = [
            {} for _ in range(num_partitions)]
        self.edge_count = 0
        self.queries_served = 0

    def partition_of(self, member_id: int) -> int:
        return member_id % self.num_partitions

    def _adjacency(self, member_id: int) -> set[int]:
        shard = self._shards[self.partition_of(member_id)]
        if member_id not in shard:
            shard[member_id] = set()
        return shard[member_id]

    # -- mutation (driven by the Databus listener) -----------------------------

    def connect(self, a: int, b: int) -> bool:
        """Add an undirected edge; returns False if it already existed."""
        if a == b:
            raise ConfigurationError("members cannot connect to themselves")
        neighbors = self._adjacency(a)
        if b in neighbors:
            return False
        neighbors.add(b)
        self._adjacency(b).add(a)
        self.edge_count += 1
        return True

    def disconnect(self, a: int, b: int) -> bool:
        neighbors = self._shards[self.partition_of(a)].get(a)
        if neighbors is None or b not in neighbors:
            return False
        neighbors.discard(b)
        self._shards[self.partition_of(b)].get(b, set()).discard(a)
        self.edge_count -= 1
        return True

    # -- queries (§I.A's examples) -------------------------------------------------

    def connections_of(self, member_id: int) -> set[int]:
        self.queries_served += 1
        return set(self._shards[self.partition_of(member_id)]
                   .get(member_id, set()))

    def connection_count(self, member_id: int) -> int:
        """'counting ... connection lists'"""
        self.queries_served += 1
        return len(self._shards[self.partition_of(member_id)]
                   .get(member_id, set()))

    def shared_connections(self, a: int, b: int) -> set[int]:
        """'intersecting connection lists' — the people you both know."""
        self.queries_served += 1
        first = self._shards[self.partition_of(a)].get(a, set())
        second = self._shards[self.partition_of(b)].get(b, set())
        if len(first) > len(second):
            first, second = second, first
        return {m for m in first if m in second}

    def distance(self, a: int, b: int, max_degrees: int = 6) -> int | None:
        """'calculating minimum distances between users', bounded.

        Bidirectional BFS — the trick that makes social-distance
        queries fast enough for the profile page — returning None when
        the members are further apart than ``max_degrees``.
        """
        self.queries_served += 1
        if a == b:
            return 0
        dist_a: dict[int, int] = {a: 0}
        dist_b: dict[int, int] = {b: 0}
        frontier_a, frontier_b = {a}, {b}
        depth_a = depth_b = 0
        while frontier_a and frontier_b:
            if depth_a + depth_b >= max_degrees:
                return None
            # expand the smaller frontier
            if len(frontier_a) <= len(frontier_b):
                frontier, dist, other = frontier_a, dist_a, dist_b
                depth_a += 1
                depth = depth_a
            else:
                frontier, dist, other = frontier_b, dist_b, dist_a
                depth_b += 1
                depth = depth_b
            next_frontier: set[int] = set()
            best: int | None = None
            for member in frontier:
                for neighbor in self._shards[self.partition_of(member)] \
                        .get(member, set()):
                    if neighbor in other:
                        total = depth + other[neighbor]
                        if best is None or total < best:
                            best = total
                    if neighbor not in dist:
                        dist[neighbor] = depth
                        next_frontier.add(neighbor)
            if best is not None:
                return best if best <= max_degrees else None
            if frontier is frontier_a:
                frontier_a = next_frontier
            else:
                frontier_b = next_frontier
        return None

    def shortest_path(self, a: int, b: int,
                      max_degrees: int = 6) -> list[int] | None:
        """'showing paths between users': one shortest path, or None."""
        self.queries_served += 1
        if a == b:
            return [a]
        parents: dict[int, int] = {a: a}
        frontier = deque([(a, 0)])
        while frontier:
            member, depth = frontier.popleft()
            if depth >= max_degrees:
                continue
            for neighbor in sorted(self._shards[self.partition_of(member)]
                                   .get(member, set())):
                if neighbor in parents:
                    continue
                parents[neighbor] = member
                if neighbor == b:
                    path = [b]
                    while path[-1] != a:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                frontier.append((neighbor, depth + 1))
        return None

    # -- stats -----------------------------------------------------------------------

    def member_count(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def partition_sizes(self) -> list[int]:
        return [len(shard) for shard in self._shards]
