"""Synthetic workloads standing in for LinkedIn production traffic.

The paper gives us the distributions to match:

* "Both stores have a Zipfian distribution for their data size" —
  Company Follow (§II.C); keys are member/company ids.
* "Our largest read-write cluster has about 60% reads and 40% writes"
  (§II.C) — the default :class:`RequestMix`.
* Kafka ingests "user activity events corresponding to logins,
  page-views, clicks, 'likes', sharing, comments, and search queries"
  (§V) — :class:`ActivityEventGenerator` emits that shape.

Everything is seeded and deterministic.
"""

from __future__ import annotations

import math
import random
import string
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ConfigurationError


class ZipfGenerator:
    """Draws integers in ``[0, n)`` with Zipfian popularity.

    Uses the inverse-CDF method over precomputed cumulative weights,
    which is exact and fast for the n (<= a few million) used in the
    benches.  ``theta`` is the skew: 0 is uniform, ~0.99 is the YCSB
    default, higher is more skewed.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n <= 0:
            raise ConfigurationError("ZipfGenerator needs n > 0")
        if theta < 0:
            raise ConfigurationError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        weights = [1.0 / ((i + 1) ** theta) for i in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w
            cumulative.append(acc / total)
        self._cumulative = cumulative

    def next(self) -> int:
        """Sample one rank (0 = most popular)."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()


def zipf_sizes(count: int, min_bytes: int = 64, max_bytes: int = 65536,
               theta: float = 1.0, seed: int = 0) -> list[int]:
    """Value sizes with a Zipfian distribution (most values small, a
    long tail of large ones), matching the Company Follow stores."""
    if min_bytes <= 0 or max_bytes < min_bytes:
        raise ConfigurationError("require 0 < min_bytes <= max_bytes")
    rng = random.Random(seed)
    sizes = []
    for _ in range(count):
        # Pareto-like draw bounded to [min, max]
        u = rng.random()
        size = int(min_bytes / max(u ** (1.0 / max(theta, 1e-9)), min_bytes / max_bytes))
        sizes.append(min(size, max_bytes))
    return sizes


@dataclass(frozen=True)
class RequestMix:
    """A read/write mix; the paper's flagship cluster is 60/40."""

    read_fraction: float = 0.6

    def __post_init__(self):
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be within [0, 1]")

    def is_read(self, rng: random.Random) -> bool:
        return rng.random() < self.read_fraction


@dataclass(frozen=True)
class Operation:
    """One generated request."""

    kind: str          # "get" or "put"
    key: bytes
    value: bytes | None = None


class KeyValueWorkload:
    """Closed-loop key-value request stream with Zipfian key popularity."""

    def __init__(self, num_keys: int = 10_000, mix: RequestMix | None = None,
                 key_skew: float = 0.99, value_bytes: int = 1024,
                 value_size_zipfian: bool = False, seed: int = 0):
        self.num_keys = num_keys
        self.mix = mix or RequestMix()
        self._rng = random.Random(seed)
        self._keys = ZipfGenerator(num_keys, theta=key_skew, seed=seed + 1)
        if value_size_zipfian:
            self._sizes = zipf_sizes(num_keys, min_bytes=64,
                                     max_bytes=max(value_bytes, 64), seed=seed + 2)
        else:
            self._sizes = [value_bytes] * num_keys
        self._payload = bytes(range(256)) * (max(self._sizes) // 256 + 1)

    def key_for_rank(self, rank: int) -> bytes:
        return b"member:%012d" % rank

    def operations(self, count: int) -> Iterator[Operation]:
        for _ in range(count):
            rank = self._keys.next()
            key = self.key_for_rank(rank)
            if self.mix.is_read(self._rng):
                yield Operation("get", key)
            else:
                size = self._sizes[rank]
                yield Operation("put", key, self._payload[:size])

    def preload(self, count: int | None = None) -> Iterator[Operation]:
        """Puts covering the first ``count`` keys, for store warm-up."""
        count = self.num_keys if count is None else count
        for rank in range(count):
            yield Operation("put", self.key_for_rank(rank),
                            self._payload[:self._sizes[rank]])


_EVENT_TYPES = ("login", "page_view", "click", "like", "share",
                "comment", "search_query")
_PAGES = ("profile", "feed", "jobs", "groups", "companies", "inbox", "pymk")


class ActivityEventGenerator:
    """User-activity events of the kind LinkedIn feeds through Kafka.

    Events are dicts (serialized by the caller) with a member id drawn
    Zipfian (active users dominate), an event type, a page, and a small
    free-text payload for search queries — enough structure for the
    compression benchmark (EXP-K2) to be honest about redundancy.
    """

    def __init__(self, num_members: int = 100_000, seed: int = 0,
                 server_name: str = "app-01"):
        self._members = ZipfGenerator(num_members, theta=0.9, seed=seed)
        self._rng = random.Random(seed + 1)
        self.server_name = server_name
        self._sequence = 0

    def next_event(self, timestamp: float = 0.0) -> dict:
        self._sequence += 1
        kind = self._rng.choice(_EVENT_TYPES)
        event = {
            "seq": self._sequence,
            "member_id": self._members.next(),
            "event_type": kind,
            "page": self._rng.choice(_PAGES),
            "timestamp": timestamp,
            "server": self.server_name,
        }
        if kind == "search_query":
            words = [self._random_word() for _ in range(self._rng.randint(1, 4))]
            event["query"] = " ".join(words)
        return event

    def events(self, count: int, timestamp: float = 0.0) -> Iterator[dict]:
        for _ in range(count):
            yield self.next_event(timestamp)

    def _random_word(self) -> str:
        length = self._rng.randint(3, 10)
        return "".join(self._rng.choice(string.ascii_lowercase) for _ in range(length))


class ProfileViewEventGenerator:
    """Profile-view events: who looked at whose profile (§V, SNIPPETS
    §11 "Who Viewed Your Profile").

    Viewers and viewees are drawn from *independent* Zipfians: a small
    set of heavy browsers generates most views, and a (different) small
    set of prominent members receives most of them — which is what
    makes the per-viewee counters skewed and the repartition hop
    worthwhile.  Self-views are redrawn.  Events are keyed by viewer
    (the actor), matching how activity pipelines partition at the
    source; counting per viewee is the stream job's repartition to do.
    """

    def __init__(self, num_members: int = 10_000, seed: int = 0,
                 viewer_skew: float = 0.9, viewee_skew: float = 1.1):
        if num_members < 2:
            raise ConfigurationError("need at least two members")
        self.num_members = num_members
        self._viewers = ZipfGenerator(num_members, theta=viewer_skew,
                                      seed=seed)
        self._viewees = ZipfGenerator(num_members, theta=viewee_skew,
                                      seed=seed + 1)
        self._sequence = 0

    @staticmethod
    def member_id(rank: int) -> str:
        return f"member:{rank:08d}"

    def next_event(self, timestamp: float = 0.0) -> dict:
        self._sequence += 1
        viewer = self._viewers.next()
        viewee = self._viewees.next()
        while viewee == viewer:
            viewee = self._viewees.next()
        return {
            "seq": self._sequence,
            "viewer": self.member_id(viewer),
            "viewee": self.member_id(viewee),
            "ts": timestamp,
        }

    def events(self, count: int, timestamp: float = 0.0) -> Iterator[dict]:
        for _ in range(count):
            yield self.next_event(timestamp)


class DiurnalRate:
    """Sinusoidal day-shaped arrival rate, integrated deterministically.

    ``rate(t)`` swings between ``trough_rate`` (at t = 0, "midnight")
    and ``peak_rate`` (at half the period, "midday").  Event counts per
    tick come from the closed-form integral of the rate plus a
    fractional carry — no RNG, so the same tick schedule always yields
    the same event counts, which is what lets the chaos suite run a
    failure day and a clean day off one seed and compare bytes.
    """

    def __init__(self, trough_rate: float, peak_rate: float,
                 day_seconds: float = 86_400.0):
        if trough_rate < 0 or peak_rate < trough_rate:
            raise ConfigurationError(
                "need 0 <= trough_rate <= peak_rate")
        if day_seconds <= 0:
            raise ConfigurationError("day_seconds must be positive")
        self.trough_rate = trough_rate
        self.peak_rate = peak_rate
        self.day_seconds = day_seconds
        self._carry = 0.0

    def rate_at(self, t: float) -> float:
        """Instantaneous events/second at simulated time ``t``."""
        swing = (self.peak_rate - self.trough_rate) / 2.0
        phase = 2.0 * math.pi * t / self.day_seconds
        return self.trough_rate + swing * (1.0 - math.cos(phase))

    def _integral(self, t: float) -> float:
        """∫ rate dt from 0 to ``t`` (closed form)."""
        swing = (self.peak_rate - self.trough_rate) / 2.0
        omega = 2.0 * math.pi / self.day_seconds
        return ((self.trough_rate + swing) * t
                - swing * math.sin(omega * t) / omega)

    def events_in(self, t0: float, t1: float) -> int:
        """Whole events arriving in ``[t0, t1)``; the fractional
        remainder carries into the next tick, so counts over a day sum
        to the integral of the curve with no drift."""
        if t1 < t0:
            raise ConfigurationError("events_in needs t1 >= t0")
        self._carry += self._integral(t1) - self._integral(t0)
        count = int(self._carry)
        self._carry -= count
        return count
