"""A seeded day in the life of the stream-processing tier.

One simulated "day" of diurnal traffic drives both shipped stream
jobs end to end:

* profile-view events (viewer-keyed) flow through the **Who Viewed
  Your Profile** job — repartition by viewee, windowed counters,
  serving API;
* a socialgraph-derived connection log plus activity events flow
  through the **feed fan-out** job — join, fan-out, per-member
  inboxes.

Traffic follows a sinusoidal day curve (:class:`DiurnalRate`), and —
when ``fail=True`` — a :class:`FaultPlan` kills one container of each
job at the peak and restarts it later.  Everything (clock, disk,
generators, schedule) is seeded, so a failure day and a clean day are
twins: the scenario's state fingerprints must match byte for byte,
which is exactly what the chaos suite asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet
from repro.simnet.disk import SimDisk
from repro.simnet.faultplan import FaultPlan, offsets_within_watermark
from repro.socialgraph.graph import PartitionedSocialGraph
from repro.streams import (
    JobCoordinator,
    StreamContainer,
    encode_stream_message,
    route_key,
)
from repro.streams.apps import (
    FeedService,
    WhoViewedYourProfileService,
    feed_fanout_job,
    who_viewed_your_profile_job,
)
from repro.workloads.generators import (
    ActivityEventGenerator,
    DiurnalRate,
    ProfileViewEventGenerator,
)
from repro.zookeeper import ZooKeeperServer


@dataclass
class ScenarioResult:
    """Everything a test (or twin-run comparison) needs from one day."""

    seed: int
    failed: bool
    events_produced: dict[str, int]
    fault_trace: list[str] = field(default_factory=list)
    # "job/stage:partition/store" -> canonical state bytes (ascii JSON)
    state_fingerprints: dict[str, str] = field(default_factory=dict)
    top_profiles: list[tuple[str, int]] = field(default_factory=list)
    sample_inbox: list[dict] = field(default_factory=list)
    tasks_recovered_from_snapshot: int = 0
    changelog_mutations_replayed: int = 0
    duplicates_dropped: int = 0
    offset_violations: list[str] = field(default_factory=list)


class _World:
    """The simulated estate: one Kafka cluster, two jobs, six containers."""

    def __init__(self, seed: int, partitions: int, day_seconds: float,
                 containers_per_job: int):
        self.clock = SimClock()
        self.disk = SimDisk(seed=seed)
        self.zookeeper = ZooKeeperServer()
        self.cluster = KafkaCluster(
            3, "/kafka", zookeeper=self.zookeeper, clock=self.clock,
            partitions_per_topic=partitions, segment_bytes=32 * 1024,
            disk=self.disk)
        for topic in ("profile-views", "activity", "connections"):
            self.cluster.create_topic(topic, partitions=partitions)
        self.wvyp_spec = who_viewed_your_profile_job(
            partitions, window_s=day_seconds / 24.0)
        self.feed_spec = feed_fanout_job(partitions)
        self.coordinators = {
            "wvyp": JobCoordinator(self.wvyp_spec, self.cluster,
                                   self.zookeeper),
            "feed": JobCoordinator(self.feed_spec, self.cluster,
                                   self.zookeeper),
        }
        self.containers: dict[str, StreamContainer] = {}
        for job, spec in (("wvyp", self.wvyp_spec),
                          ("feed", self.feed_spec)):
            fleet = []
            for i in range(containers_per_job):
                name = f"{job}-{i}"
                container = StreamContainer(
                    name, spec, self.cluster, self.zookeeper, self.clock,
                    self.disk.scope(name), "/state",
                    snapshot_interval_commits=4)
                self.containers[name] = container
                fleet.append(container)
            self.coordinators[job].deploy(fleet)

    def job_of(self, container: str) -> str:
        return container.rsplit("-", 1)[0]

    def run_cycles(self, commit: bool = True) -> int:
        handled = 0
        for name in sorted(self.containers):
            container = self.containers[name]
            if container.alive:
                handled += container.poll()
                if commit:
                    container.commit()
        return handled

    def drain(self, max_rounds: int = 200) -> None:
        """Cycle until every live container's lag is zero."""
        for _ in range(max_rounds):
            self.run_cycles()
            if all(not c.alive or c.lag() == 0
                   for c in self.containers.values()):
                return
        raise ConfigurationError("scenario failed to drain input lag")


def _produce(world: _World, staged: dict, topic: str, key: str,
             value: dict, timestamp: float) -> None:
    partition = route_key(key, len(world.cluster.topic_layout(topic)))
    staged.setdefault((topic, partition), []).append(
        Message(encode_stream_message(key, value, timestamp)))


def _flush_staged(world: _World, staged: dict) -> None:
    for (topic, partition) in sorted(staged):
        broker = world.cluster.broker_for(topic, partition)
        broker.produce(topic, partition,
                       MessageSet(staged[(topic, partition)]))
    staged.clear()


def _bootstrap_graph(world: _World, num_members: int, seed: int) -> int:
    """Seeded connection log: every member connects to a few others.

    The edges go through :class:`PartitionedSocialGraph` first — it
    deduplicates and models the site's graph store — and each accepted
    edge becomes two member-keyed connection events, one per endpoint,
    so the fan-out stage sees the edge from both sides.
    """
    graph = PartitionedSocialGraph(num_partitions=world.wvyp_spec.partitions)
    rng = random.Random(seed + 1)
    staged: dict = {}
    events = 0
    for member in range(num_members):
        for _ in range(rng.randint(2, 5)):
            other = rng.randrange(num_members)
            if other == member or not graph.connect(member, other):
                continue
            a = ProfileViewEventGenerator.member_id(member)
            b = ProfileViewEventGenerator.member_id(other)
            _produce(world, staged, "connections", a, {"other": b}, 0.0)
            _produce(world, staged, "connections", b, {"other": a}, 0.0)
            events += 2
    _flush_staged(world, staged)
    return events


def run_day_in_the_life(seed: int = 0, partitions: int = 4,
                        containers_per_job: int = 3,
                        num_members: int = 300,
                        day_seconds: float = 720.0, tick_s: float = 30.0,
                        view_rate: tuple[float, float] = (2.0, 10.0),
                        activity_rate: tuple[float, float] = (1.0, 5.0),
                        commit_every_ticks: int = 2,
                        fail: bool = True) -> ScenarioResult:
    """Run one seeded day; returns the final observable state.

    ``fail=True`` schedules a mid-peak container kill (one per job) at
    55% of the day and a restart at 75%; ``fail=False`` runs the same
    seed with no faults.  Both runs drain fully before reporting, so
    their results are comparable.

    Containers poll every tick but commit only every
    ``commit_every_ticks`` ticks, so a mid-peak kill lands on
    processed-but-uncommitted state — the kill loses real work, forces
    reprocessing and duplicate re-emission, and thereby exercises the
    repartition dedupe rather than a trivially clean cut.
    """
    if commit_every_ticks < 1:
        raise ConfigurationError("commit_every_ticks must be >= 1")
    world = _World(seed, partitions, day_seconds, containers_per_job)
    view_gen = ProfileViewEventGenerator(num_members, seed=seed + 2)
    act_gen = ActivityEventGenerator(num_members, seed=seed + 3)
    views = DiurnalRate(view_rate[0], view_rate[1], day_seconds)
    activity = DiurnalRate(activity_rate[0], activity_rate[1], day_seconds)
    counts = {"connections": _bootstrap_graph(world, num_members, seed),
              "profile-views": 0, "activity": 0}
    # fold the whole connection log into fan-out state before traffic
    # starts: the join is then independent of poll interleaving, which
    # keeps failure-day and clean-day inboxes byte-comparable
    world.drain()

    plan = FaultPlan(world.clock, world.disk, seed=seed)

    def kill_container(name: str) -> None:
        world.containers[name].kill()
        world.coordinators[world.job_of(name)].rebalance()

    def restart_container(name: str) -> None:
        world.containers[name].restart()
        world.coordinators[world.job_of(name)].rebalance()

    plan.on_kill_container(kill_container)
    plan.on_restart_container(restart_container)

    def make_tick(index: int):
        def tick() -> None:
            t0 = index * tick_s
            t1 = t0 + tick_s
            staged: dict = {}
            n_views = views.events_in(t0, t1)
            for j in range(n_views):
                ts = t0 + tick_s * j / n_views
                event = view_gen.next_event(timestamp=ts)
                _produce(world, staged, "profile-views", event["viewer"],
                         {"viewee": event["viewee"], "ts": ts}, ts)
            n_activity = activity.events_in(t0, t1)
            for j in range(n_activity):
                ts = t0 + tick_s * j / n_activity
                event = act_gen.next_event(timestamp=ts)
                actor = ProfileViewEventGenerator.member_id(
                    event["member_id"])
                _produce(world, staged, "activity", actor,
                         {"kind": event["event_type"],
                          "id": event["seq"]}, ts)
            _flush_staged(world, staged)
            counts["profile-views"] += n_views
            counts["activity"] += n_activity
            world.run_cycles(commit=(index + 1) % commit_every_ticks == 0)
        return tick

    ticks = int(day_seconds / tick_s)
    for i in range(ticks):
        plan.call(at=(i + 1) * tick_s, label=f"tick-{i + 1:03d}",
                  fn=make_tick(i))
    if fail:
        kill_at = round(0.55 * day_seconds, 6)
        restart_at = round(0.75 * day_seconds, 6)
        for job in ("wvyp", "feed"):
            plan.kill_container(at=kill_at, container=f"{job}-1")
            plan.restart_container(at=restart_at, container=f"{job}-1")
    plan.run(until=day_seconds)
    world.drain()

    result = ScenarioResult(seed=seed, failed=fail, events_produced=counts,
                            fault_trace=plan.trace_lines())
    offsets: dict[tuple[str, int], int] = {}
    for name in sorted(world.containers):
        container = world.containers[name]
        if not container.alive:
            continue
        for key in sorted(container.tasks):
            task = container.tasks[key]
            job = world.job_of(name)
            for store_name in sorted(task.stores):
                label = f"{job}/{task.task_id}/{store_name}"
                result.state_fingerprints[label] = \
                    task.stores[store_name].fingerprint(
                        exclude_prefix="__seen/").decode()
            if task.recovered_from_snapshot:
                result.tasks_recovered_from_snapshot += 1
            result.changelog_mutations_replayed += task.replayed_mutations
            result.duplicates_dropped += task.duplicates_dropped
            offsets.update(task.input_offsets)
    result.offset_violations = offsets_within_watermark(
        offsets, lambda topic, partition: world.cluster.broker_for(
            topic, partition).log(topic, partition).high_watermark)

    wvyp_fleet = [world.containers[f"wvyp-{i}"]
                  for i in range(containers_per_job)]
    feed_fleet = [world.containers[f"feed-{i}"]
                  for i in range(containers_per_job)]
    profile_service = WhoViewedYourProfileService(
        world.coordinators["wvyp"], wvyp_fleet)
    feed_service = FeedService(world.coordinators["feed"], feed_fleet)
    result.top_profiles = [
        (ProfileViewEventGenerator.member_id(rank),
         profile_service.total_views(
             ProfileViewEventGenerator.member_id(rank)))
        for rank in range(10)]
    result.sample_inbox = feed_service.inbox(
        ProfileViewEventGenerator.member_id(0))
    return result
