"""Workload generation: key popularity, value sizing, request mixes, events."""

from repro.workloads.generators import (
    ActivityEventGenerator,
    KeyValueWorkload,
    RequestMix,
    ZipfGenerator,
    zipf_sizes,
)

__all__ = [
    "ActivityEventGenerator",
    "KeyValueWorkload",
    "RequestMix",
    "ZipfGenerator",
    "zipf_sizes",
]
