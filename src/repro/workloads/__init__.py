"""Workload generation: key popularity, value sizing, request mixes,
events, diurnal traffic shaping, and end-to-end scenario drivers."""

from repro.workloads.generators import (
    ActivityEventGenerator,
    DiurnalRate,
    KeyValueWorkload,
    ProfileViewEventGenerator,
    RequestMix,
    ZipfGenerator,
    zipf_sizes,
)
from repro.workloads.day_in_the_life import ScenarioResult, run_day_in_the_life

__all__ = [
    "ActivityEventGenerator",
    "DiurnalRate",
    "KeyValueWorkload",
    "ProfileViewEventGenerator",
    "RequestMix",
    "ZipfGenerator",
    "zipf_sizes",
    "ScenarioResult",
    "run_day_in_the_life",
]
