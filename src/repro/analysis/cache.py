"""Run-level result cache keyed by per-file content hashes.

The interprocedural stage (call graph + effect summaries) is rebuilt
from live ASTs on every run, and every project rule consumes those
in-memory objects — so the unit of caching is the whole run: if no
scanned file changed, the previous run's findings are replayed without
parsing anything; if *any* file changed, everything recomputes, because
a one-line edit can reroute call chains through every other file.

The cache key is a digest over the sorted ``(relative path, content
sha1)`` manifest plus the active rule names and a format version, so
touching a file, adding one, deleting one, or changing the rule set all
invalidate.  The payload lives in ``.repro-lint-cache/run.json`` under
the scan root; a corrupt or unreadable cache is treated as a miss and
rewritten.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.core import Finding, Frame, LintReport

#: bump whenever the serialized shape or rule semantics change
CACHE_FORMAT = 1
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def run_digest(manifest: list[tuple[str, str]],
               rule_names: list[str]) -> str:
    """Digest of the per-file hash manifest + rule set + format."""
    hasher = hashlib.sha1()
    hasher.update(f"format={CACHE_FORMAT}\n".encode())
    hasher.update(("rules=" + ",".join(sorted(rule_names)) + "\n").encode())
    for rel_path, content_hash in sorted(manifest):
        hasher.update(f"{rel_path}\x00{content_hash}\n".encode())
    return hasher.hexdigest()


def file_manifest(analyzer, paths) -> list[tuple[str, str]]:
    """``(relative path, content sha1)`` for every file a run would scan."""
    manifest = []
    for path in analyzer.iter_files(paths):
        digest = hashlib.sha1(path.read_bytes()).hexdigest()
        manifest.append((analyzer._rel(path), digest))
    return manifest


def _encode_finding(finding: Finding) -> dict:
    payload = {
        "rule": finding.rule, "path": finding.path,
        "line": finding.line, "col": finding.col,
        "message": finding.message, "snippet": finding.snippet,
        "end_line": finding.end_line,
    }
    if finding.chain:
        payload["chain"] = [
            {"path": f.path, "line": f.line,
             "caller": f.caller, "callee": f.callee}
            for f in finding.chain]
    return payload


def _decode_finding(payload: dict) -> Finding:
    chain = tuple(Frame(**frame) for frame in payload.get("chain", []))
    return Finding(rule=payload["rule"], path=payload["path"],
                   line=payload["line"], col=payload["col"],
                   message=payload["message"], snippet=payload["snippet"],
                   end_line=payload["end_line"], chain=chain)


class LintCache:
    """One-entry cache: the latest run for one digest."""

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR):
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        return self.directory / "run.json"

    def load(self, digest: str) -> LintReport | None:
        """The cached report, or None on any mismatch or damage."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (payload.get("format") != CACHE_FORMAT
                or payload.get("digest") != digest):
            return None
        try:
            report = LintReport()
            report.files_scanned = payload["files_scanned"]
            report.parse_errors = list(payload["parse_errors"])
            report.suppressed = payload["suppressed"]
            report.findings = [_decode_finding(f)
                               for f in payload["findings"]]
        except (KeyError, TypeError):
            return None
        return report

    def store(self, digest: str, report: LintReport) -> None:
        """Record the run; cache-write failures never fail the lint."""
        payload = {
            "format": CACHE_FORMAT,
            "digest": digest,
            "files_scanned": report.files_scanned,
            "parse_errors": report.parse_errors,
            "suppressed": report.suppressed,
            "findings": [_encode_finding(f) for f in report.findings],
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload, sort_keys=True),
                                 encoding="utf-8")
        except OSError:
            pass
