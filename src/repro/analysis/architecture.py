"""The layering contract: which package may import which.

LinkedIn's stack (PAPER.md) is layered — shared infrastructure at the
bottom, the four storage/messaging systems above it, and applications
on top.  The reproduction mirrors that as sibling packages under
``repro``, and this module is the *committed* statement of the legal
edges between them.  The ``layering-contract`` lint rule checks every
``import`` in the repo against this table, so an architectural
regression (a system reaching into another system's internals, the
simulation substrate growing a dependency on a system built on it)
fails CI the same way a broken test does.

Every non-obvious edge carries its paper justification inline.  Edges
*not* listed are illegal by default — adding a dependency means editing
this file, which is the point: the import graph changes only by
reviewed diff.

``if TYPE_CHECKING:`` imports are exempt.  They exist for annotations
only, never execute, and are the sanctioned escape hatch for typing a
lower layer against an interface defined above it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

#: Per-package allowed imports (of other ``repro.*`` packages).  Every
#: package may import itself and ``common``; anything further must be
#: justified here.
LAYER_CONTRACT: dict[str, frozenset[str]] = {
    # -- substrate --------------------------------------------------------
    # common is the bottom: errors, config, resilience, WAL, storage.
    "common": frozenset(),
    # simnet simulates networks/disks/clocks for every system above it;
    # it must never import a system, or the simulation could not host it.
    "simnet": frozenset(),
    # -- coordination -----------------------------------------------------
    "zookeeper": frozenset(),
    # Helix is built on ZooKeeper for its state store and notifications
    # (paper §Helix).
    "helix": frozenset({"zookeeper"}),
    # -- storage primitives ----------------------------------------------
    "sqlstore": frozenset(),
    "hadoop": frozenset(),
    # -- the four systems -------------------------------------------------
    # Kafka persists partitions on the simulated disk, registers brokers
    # in ZooKeeper, and feeds Hadoop via the ETL bridge (paper §Kafka).
    "kafka": frozenset({"simnet", "zookeeper", "hadoop"}),
    # Voldemort stores on the simulated disk and bulk-loads read-only
    # stores built offline in Hadoop (paper §Voldemort).
    "voldemort": frozenset({"simnet", "hadoop"}),
    # Espresso stores documents in MySQL-like tables, is coordinated by
    # Helix/ZooKeeper, and publishes its commit log through Databus
    # (paper §Espresso: "Databus is Espresso's replication channel").
    "espresso": frozenset({"simnet", "zookeeper", "helix", "sqlstore",
                           "databus"}),
    # Databus captures changes from the source-of-truth SQL store and
    # serves them over the simulated network (paper §Databus).
    "databus": frozenset({"simnet", "sqlstore"}),
    # The live-migration subsystem moves source-of-truth data from the
    # legacy SQL store onto Espresso while both keep serving — the
    # paper's own deployment arc ("our long term strategy is to move
    # LinkedIn's core data ... to Espresso", §IV) — consuming the
    # change stream through Databus.  It sits *above* all three and may
    # import no substrate directly: durability comes from common's WAL,
    # fault injection reaches it via duck-typed callbacks.
    "migration": frozenset({"sqlstore", "databus", "espresso"}),
    # The consistency auditor (paper §V.D generalized) observes every
    # primary and derived store — it reads binlogs, relay buffers,
    # consumer checkpoints, Espresso documents, Voldemort replica
    # engines, and Kafka audit counts — so it may import the systems it
    # audits.  It must NOT import simnet (fault injection reaches it as
    # duck-typed fault-plan callables) or migration (the coordinator
    # receives the cutover constraint as a plain callable): the auditor
    # checks those layers, it does not depend on them.
    "audit": frozenset({"sqlstore", "databus", "espresso", "voldemort",
                        "kafka"}),
    # Stream processing pulls from Kafka, checkpoints to ZooKeeper, and
    # is placed by Helix (paper §Kafka consumers; ROADMAP item 4).  It
    # must NOT import simnet: tasks see only the abstract Disk/Clock
    # from common, so the same code hosts on a SimDisk in tests and a
    # real filesystem outside them.
    "streams": frozenset({"kafka", "helix", "zookeeper"}),
    # -- applications -----------------------------------------------------
    # The search service indexes Espresso content via Databus events
    # and joins against the social graph (paper §applications).
    "search": frozenset({"databus", "espresso", "sqlstore", "socialgraph"}),
    # The social graph service fronts a SQL store and streams updates
    # out through Databus.
    "socialgraph": frozenset({"databus", "sqlstore"}),
    # Recommendations are computed offline in Hadoop and served from
    # Voldemort read-only stores, keyed by the social graph.
    "recommendations": frozenset({"hadoop", "voldemort", "socialgraph"}),
    # Workload drivers stand in for production traffic and the
    # operators running it: the day-in-the-life scenario assembles a
    # whole estate (simulated disks and fault plans, Kafka, stream
    # jobs, the social graph) and drives it end to end.
    "workloads": frozenset({"simnet", "kafka", "streams", "socialgraph",
                            "zookeeper"}),
    # -- tooling ----------------------------------------------------------
    # The analyzer inspects source text only; it may depend on nothing
    # but common, so it can never entangle itself with what it checks.
    "analysis": frozenset(),
}

_IMPLICIT = frozenset({"common"})


def allowed_imports(package: str) -> frozenset[str]:
    """Packages ``package`` may import: itself, common, and its
    contract row.  Unknown packages get an empty contract."""
    return LAYER_CONTRACT.get(package, frozenset()) | _IMPLICIT | {package}


def package_of(rel_path: str) -> str | None:
    """The ``repro`` package a repo-relative path belongs to, or None
    for files outside ``repro`` (tests, scripts) and top-level modules
    like ``repro/__init__.py``."""
    parts = rel_path.replace("\\", "/").split("/")
    if parts[:2] == ["src", "repro"]:
        parts = parts[2:]
    elif parts[:1] == ["repro"]:
        parts = parts[1:]
    else:
        return None
    if len(parts) < 2:   # a module directly under repro/
        return None
    return parts[0]


def _module_package(module: str | None) -> str | None:
    """The repro package a dotted module path refers to."""
    if not module:
        return None
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _resolve_relative(rel_path: str, level: int, module: str | None) -> str | None:
    """Absolute dotted module for a relative import in ``rel_path``."""
    parts = rel_path.replace("\\", "/").split("/")
    if parts[:2] == ["src", "repro"]:
        parts = parts[1:]          # drop the src/ prefix -> repro/...
    if parts[:1] != ["repro"]:
        return None
    package_parts = parts[:-1]     # the module's own package path
    if level > len(package_parts):
        return None
    base = package_parts[:len(package_parts) - (level - 1)]
    if module:
        base = base + module.split(".")
    return ".".join(base)


def type_checking_nodes(tree: ast.AST) -> set[int]:
    """ids of statements inside ``if TYPE_CHECKING:`` bodies."""
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = ""
        if isinstance(test, ast.Name):
            name = test.id
        elif isinstance(test, ast.Attribute):
            name = test.attr
        if name == "TYPE_CHECKING":
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    exempt.add(id(sub))
    return exempt


def imported_packages(tree: ast.AST, rel_path: str
                      ) -> Iterator[tuple[str, ast.stmt]]:
    """Every ``repro`` package imported by a module, with the import
    statement that does it.  ``TYPE_CHECKING``-only imports excluded."""
    exempt = type_checking_nodes(tree)
    for node in ast.walk(tree):
        if id(node) in exempt:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                package = _module_package(alias.name)
                if package is not None:
                    yield package, node
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                module = _resolve_relative(rel_path, node.level, node.module)
            else:
                module = node.module
            package = _module_package(module)
            if package is not None:
                yield package, node
            elif node.level == 0 and node.module == "repro":
                # ``from repro import kafka`` names packages in aliases
                for alias in node.names:
                    yield alias.name.split(".")[0], node


def build_import_graph(sources: Iterable[tuple[str, ast.AST]]
                       ) -> dict[str, dict[str, int]]:
    """Whole-repo import graph: package -> imported package -> count.

    ``sources`` yields ``(rel_path, parsed tree)`` pairs; self-imports
    are kept (they are always legal) so the graph is complete.
    """
    graph: dict[str, dict[str, int]] = {}
    for rel_path, tree in sources:
        src_pkg = package_of(rel_path)
        if src_pkg is None:
            continue
        row = graph.setdefault(src_pkg, {})
        for dst_pkg, _ in imported_packages(tree, rel_path):
            row[dst_pkg] = row.get(dst_pkg, 0) + 1
    return graph


def contract_violations(graph: dict[str, dict[str, int]]
                        ) -> list[tuple[str, str, int]]:
    """(importer, imported, count) edges the contract does not allow."""
    bad: list[tuple[str, str, int]] = []
    for src_pkg, row in sorted(graph.items()):
        legal = allowed_imports(src_pkg)
        for dst_pkg, count in sorted(row.items()):
            if dst_pkg not in legal:
                bad.append((src_pkg, dst_pkg, count))
    return bad
