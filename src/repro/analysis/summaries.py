"""Bottom-up per-function effect summaries over the call graph.

Each function in the :class:`~repro.analysis.callgraph.Project` gets a
:class:`Summary` computed callees-first (SCC condensation order, with
a fixpoint iteration inside recursive components):

* **may-raise** — exception type names that can escape the function:
  its own ``raise`` sites plus every callee's may-raise set, minus
  whatever the enclosing ``try`` handlers at each site catch.  Catch
  tests run against the *merged* hierarchy: scanned classes resolve
  through their recorded bases, builtin exceptions through the real
  ``issubclass``, so ``except LookupError`` catches a ``KeyError``
  raised three frames down and ``except ReproError`` catches every
  scanned subclass.
* **blocks** — which blocking primitives the function transitively
  reaches: ``rpc`` (``SimNetwork.invoke``/``send`` and their
  attribute-named wrappers), ``sleep``, ``fsync``.
* **yield-points** — the statement-level sites at which the function
  may *yield* to the cooperative scheduler: direct blocking primitives
  plus every call/ref site whose callee transitively blocks.  In the
  simulation every such site is a linearization point — arbitrary
  other events interleave while the primitive runs — so the atomicity
  rules treat the yield-point set as "where shared state may change
  under you".
* **writes-self** — which ``self``-rooted attribute paths the function
  stores to (``self.x = …``, ``self.x[k] = …``, ``self.a.b = …``),
  propagated through bare ``self.method()`` calls only: a collaborator
  call (``self.store.put(...)``) does not count as writing *this*
  object's state.  Augmented assigns are excluded (counter bumps are
  not coupled-state transitions), as are stores inside ``except``
  handlers (compensation, not the happy path).
* **drops-deadline** — assuming the function *receives* a deadline
  (a ``deadline``/``budget`` parameter, or one it constructs), does
  that budget flow into every transitive RPC?  Flow is tracked as a
  taint set: the deadline names themselves plus every local assigned
  from an expression that reads a tainted name (``timeout =
  deadline.clamp(t)`` taints ``timeout``).  An RPC-reaching call that
  reads no tainted name is a *drop*; the witness chain runs from that
  call down to a concrete RPC site.

Every set carries one deterministic witness chain of
:class:`~repro.analysis.core.Frame`\\ s so rules can report *entry
point → offending call* without re-deriving paths.

Precision notes, honest edition: handler matching is
position-insensitive (a ``try`` catches for its whole body, including
statements before the handler could bind), bare ``raise`` re-raises
the handler's static catch set, implicit raises (``d[k]`` →
``KeyError``) are invisible — only explicit ``raise`` sites seed the
analysis — and functions passed by reference count as called at the
passing site.  Within an SCC the fixpoint only *grows* sets, so
recursion converges; witness chains are first-written-wins, which the
deterministic visit order makes reproducible.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.callgraph import CallGraph, CallSite, FunctionInfo, Project
from repro.analysis.core import Frame

#: Effects the blocks analysis tracks, keyed by CallSite.kind.
BLOCKING_KINDS = ("rpc", "sleep", "fsync")


@dataclass(frozen=True)
class YieldPoint:
    """One site in a function at which the cooperative scheduler may
    run arbitrary other events before control returns."""

    line: int
    #: id() of the ``ast.Call`` node in this function's tree (stable
    #: for the lifetime of the parsed Project; not serializable)
    node_id: int
    #: sorted subset of BLOCKING_KINDS the site transitively reaches
    kinds: tuple[str, ...]
    #: display name of what is called at the site
    callee: str
    #: the blocking kind when the site *is* the primitive itself
    #: (``net.invoke``/``clock.sleep``/``wal.fsync``); None when the
    #: yield is inherited through a call edge
    direct: str | None
    #: witness: this site -> ... -> concrete blocking primitive
    chain: tuple[Frame, ...]


@dataclass
class Summary:
    """The interprocedural facts one function exports to its callers."""

    qualname: str
    #: exception type name -> witness chain down to the raise site
    raises: dict[str, tuple[Frame, ...]] = field(default_factory=dict)
    #: effect name ("rpc"/"sleep"/"fsync") -> witness chain to the site
    blocks: dict[str, tuple[Frame, ...]] = field(default_factory=dict)
    accepts_deadline: bool = False
    #: witness chains, one per call site where the received deadline
    #: stops bounding a transitive RPC (empty: every RPC is bounded,
    #: or there are none)
    drops_deadline: tuple[tuple[Frame, ...], ...] = ()
    #: every site where this function may yield to the scheduler,
    #: sorted by (line, callee) for deterministic reporting
    yield_points: tuple[YieldPoint, ...] = ()
    #: self-rooted attribute path ("scn", "proxy.ramp_percent") ->
    #: witness chain down to the store site
    writes_self: dict[str, tuple[Frame, ...]] = field(default_factory=dict)


class Hierarchy:
    """Subtype tests across scanned classes and builtin exceptions."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: scanned-class qualname -> (scanned base qualnames,
        #: unresolved base names assumed builtin)
        self._bases: dict[str, tuple[list[str], list[str]]] = {}
        for qual, cls in graph.classes.items():
            builtin_bases: list[str] = []
            resolved = set(cls.base_names)
            for base in cls.node.bases:
                name = base.id if isinstance(base, ast.Name) else \
                    base.attr if isinstance(base, ast.Attribute) else ""
                if name and not any(r.endswith("." + name) or r == name
                                    for r in resolved):
                    builtin_bases.append(name)
            self._bases[qual] = (cls.base_names, builtin_bases)

    @staticmethod
    def _builtin(name: str) -> type | None:
        obj = getattr(builtins, name, None)
        return obj if isinstance(obj, type) else None

    def is_subtype(self, sub: str, sup: str) -> bool:
        """May an exception of (scanned qualname or builtin name)
        ``sub`` be caught by ``except sup``?"""
        if sub == sup:
            return True
        if sub in self._bases:
            seen: set[str] = set()
            stack = [sub]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                if current == sup or current.rsplit(".", 1)[-1] == sup:
                    return True
                scanned, builtin_names = self._bases.get(current, ([], []))
                stack.extend(scanned)
                for name in builtin_names:
                    if self._builtin_subtype(name, sup):
                        return True
            return False
        return self._builtin_subtype(sub, sup)

    def _builtin_subtype(self, sub: str, sup: str) -> bool:
        sub_type = self._builtin(sub)
        sup_type = self._builtin(sup.rsplit(".", 1)[-1])
        if sub_type is None or sup_type is None:
            return False
        try:
            return issubclass(sub_type, sup_type)
        except TypeError:
            return False

    def caught_by(self, raised: str,
                  handler_stack: tuple[frozenset[str], ...]) -> bool:
        for specs in handler_stack:
            for spec in specs:
                if spec == "*" or self.is_subtype(raised, spec):
                    return True
        return False


# -- per-function site extraction --------------------------------------------


def self_param_name(fn: FunctionInfo) -> str | None:
    """The receiver parameter name of a method, None for functions."""
    if fn.cls is None:
        return None
    args = fn.node.args
    positional = [*args.posonlyargs, *args.args]
    if not positional:
        return None
    return positional[0].arg


def self_store_path(target: ast.AST, self_name: str) -> str | None:
    """The dotted attribute path a store target writes under ``self``
    (``self.a.b[k] = v`` -> ``"a.b"``), or None for non-self targets."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == self_name and parts:
        return ".".join(reversed(parts))
    return None


def _store_targets(node: ast.AST) -> Iterator[ast.AST]:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from target.elts
            else:
                yield target
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        yield node.target


@dataclass(frozen=True)
class _StoreSite:
    path: str
    line: int
    in_except: bool


@dataclass(frozen=True)
class _RaiseSite:
    names: tuple[str, ...]
    line: int
    handlers: tuple[frozenset[str], ...]


class _SiteCollector:
    """One pass over a function body recording, for every ``raise`` and
    every call node, the stack of enclosing handler catch-sets."""

    def __init__(self, fn: FunctionInfo):
        self.fn = fn
        self.imports = fn.module.ctx.imports
        self.raises: list[_RaiseSite] = []
        #: id(call node) -> handler stack
        self.call_handlers: dict[int, tuple[frozenset[str], ...]] = {}
        #: direct self.<path> stores (augmented assigns excluded)
        self.stores: list[_StoreSite] = []
        self._self_name = self_param_name(fn)
        self._walk(list(ast.iter_child_nodes(fn.node)), (), None)

    def _spec_names(self, handler: ast.ExceptHandler) -> frozenset[str]:
        if handler.type is None:
            return frozenset({"*"})          # bare except catches all
        nodes = handler.type.elts \
            if isinstance(handler.type, ast.Tuple) else [handler.type]
        names: set[str] = set()
        for node in nodes:
            if isinstance(node, ast.Name):
                names.add(self._resolve(node.id))
            elif isinstance(node, ast.Attribute):
                dotted = self.imports.resolve_call(node)
                names.add(dotted or node.attr)
        return frozenset(names) if names else frozenset({"*"})

    def _resolve(self, name: str) -> str:
        dotted = self.imports.names.get(name)
        return dotted or name

    def _raised_names(self, node: ast.Raise,
                      handler: tuple[frozenset[str], str | None] | None
                      ) -> tuple[str, ...]:
        handler_types = handler[0] if handler else None
        handler_var = handler[1] if handler else None
        exc = node.exc
        if exc is None:
            # bare re-raise: the handler's static catch set escapes
            return tuple(sorted(handler_types or ()))
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            if handler_var is not None and exc.id == handler_var:
                # ``raise e`` inside ``except X as e`` re-raises X
                return tuple(sorted(handler_types or ()))
            return (self._resolve(exc.id),)
        if isinstance(exc, ast.Attribute):
            dotted = self.imports.resolve_call(exc)
            return (dotted or exc.attr,)
        return ()

    def _walk(self, nodes: list[ast.AST],
              stack: tuple[frozenset[str], ...],
              handler: tuple[frozenset[str], str | None] | None) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue                      # separate graph nodes
            if isinstance(node, ast.Raise):
                names = tuple(n for n in
                              self._raised_names(node, handler) if n)
                if names:
                    self.raises.append(
                        _RaiseSite(names, node.lineno, stack))
                # walk the constructor args too (calls may raise)
                self._walk(list(ast.iter_child_nodes(node)), stack, handler)
                continue
            if isinstance(node, ast.Try) or \
                    node.__class__.__name__ == "TryStar":
                specs = tuple(self._spec_names(h) for h in node.handlers)
                merged: frozenset[str] = frozenset().union(*specs) \
                    if specs else frozenset()
                self._walk(list(node.body), stack + ((merged,)
                           if merged else ()), handler)
                for except_clause, spec in zip(node.handlers, specs):
                    self._walk(list(except_clause.body), stack,
                               (spec, except_clause.name))
                self._walk(list(node.orelse), stack, handler)
                self._walk(list(node.finalbody), stack, handler)
                continue
            if isinstance(node, ast.Call):
                self.call_handlers[id(node)] = stack
            if self._self_name is not None and \
                    isinstance(node, (ast.Assign, ast.AnnAssign)):
                for target in _store_targets(node):
                    path = self_store_path(target, self._self_name)
                    if path is not None:
                        self.stores.append(_StoreSite(
                            path, node.lineno, handler is not None))
            self._walk(list(ast.iter_child_nodes(node)), stack, handler)


# -- deadline taint ----------------------------------------------------------


def _deadline_sources(fn: FunctionInfo) -> set[str]:
    """Names through which this function holds a request budget."""
    names = set(fn.deadline_params())
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            func = node.value.func
            labels: set[str] = set()
            if isinstance(func, ast.Name):
                labels.add(func.id)             # Deadline(...)
            elif isinstance(func, ast.Attribute):
                labels.add(func.attr)           # resilience.Deadline(...)
                if isinstance(func.value, ast.Name):
                    labels.add(func.value.id)   # Deadline.after(...)
            if "Deadline" in labels:
                names.add(node.targets[0].id)
    return names


def _taint_closure(fn: FunctionInfo, sources: set[str]) -> set[str]:
    """Locals reachable from the deadline by assignment dataflow
    (flow-insensitive: one pass per growth round)."""
    tainted = set(sources)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            if target in tainted:
                continue
            if _reads_any(node.value, tainted):
                tainted.add(target)
                changed = True
    return tainted


def _reads_any(expr: ast.AST, names: set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in names:
            return True
    return False


# -- the bottom-up computation -----------------------------------------------


def _call_node_index(fn: FunctionInfo) -> dict[int, ast.Call]:
    index: dict[int, ast.Call] = {}
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            index[id(node)] = node
        stack.extend(ast.iter_child_nodes(node))
    return index


def _frame(fn: FunctionInfo, line: int, callee: str) -> Frame:
    return Frame(path=fn.rel_path, line=line,
                 caller=fn.qualname, callee=callee)


def _summarize_once(fn: FunctionInfo, graph: CallGraph,
                    summaries: dict[str, Summary],
                    hierarchy: Hierarchy) -> Summary:
    """One round of the transfer function; callee summaries default to
    empty inside an unconverged SCC."""
    out = Summary(qualname=fn.qualname,
                  accepts_deadline=bool(fn.deadline_params()))
    collector = _SiteCollector(fn)
    calls = _call_node_index(fn)

    # own raise sites
    for site in collector.raises:
        for name in site.names:
            if hierarchy.caught_by(name, site.handlers):
                continue
            out.raises.setdefault(
                name, (_frame(fn, site.line, f"raise {_short(name)}"),))

    sites = graph.callees(fn.qualname)
    self_name = self_param_name(fn)

    # own shared-state stores (except-handler stores are compensation)
    for store in collector.stores:
        if store.in_except:
            continue
        out.writes_self.setdefault(
            store.path,
            (_frame(fn, store.line, f"write self.{store.path}"),))

    # blocking effects, yield points, propagated raises and writes
    yields: list[YieldPoint] = []
    for site in sites:
        if site.kind in BLOCKING_KINDS:
            out.blocks.setdefault(
                site.kind, (_frame(fn, site.line, site.callee),))
            yields.append(YieldPoint(
                line=site.line, node_id=site.node_id,
                kinds=(site.kind,), callee=site.callee, direct=site.kind,
                chain=(_frame(fn, site.line, site.callee),)))
            continue
        callee = summaries.get(site.callee)
        if callee is None:
            continue
        handler_stack = collector.call_handlers.get(site.node_id, ())
        for name, chain in callee.raises.items():
            if name in out.raises:
                continue
            if hierarchy.caught_by(name, handler_stack):
                continue
            out.raises[name] = \
                (_frame(fn, site.line, site.callee),) + chain
        for effect, chain in callee.blocks.items():
            if effect not in out.blocks:
                out.blocks[effect] = \
                    (_frame(fn, site.line, site.callee),) + chain
        if callee.blocks:
            kinds = tuple(sorted(callee.blocks))
            yields.append(YieldPoint(
                line=site.line, node_id=site.node_id,
                kinds=kinds, callee=site.callee, direct=None,
                chain=(_frame(fn, site.line, site.callee),)
                + callee.blocks[kinds[0]]))
        if callee.writes_self and self_name is not None \
                and _is_bare_self_call(calls.get(site.node_id), self_name):
            for path, chain in callee.writes_self.items():
                out.writes_self.setdefault(
                    path, (_frame(fn, site.line, site.callee),) + chain)
    out.yield_points = tuple(sorted(
        yields, key=lambda y: (y.line, y.callee, y.kinds)))

    # deadline threading, assuming this function holds a budget
    deadline_names = _deadline_sources(fn)
    if deadline_names:
        tainted = _taint_closure(fn, deadline_names)
        reads_anywhere = _reads_any(fn.node, set(deadline_names))
        drops: list[tuple[Frame, ...]] = []
        flagged_lines: set[int] = set()
        for site in sites:
            node = calls.get(site.node_id)
            bounded = node is not None and _reads_any(node, tainted)
            if bounded or site.line in flagged_lines:
                continue
            if site.kind == "rpc":
                # a direct RPC that never sees the budget is the intra
                # deadline-dropped rule's territory when the deadline
                # is wholly unread; interprocedurally we flag it only
                # when the function *does* use the deadline elsewhere
                # but not at this hop
                if reads_anywhere:
                    flagged_lines.add(site.line)
                    drops.append((_frame(fn, site.line, site.callee),))
                continue
            if site.kind not in ("call", "ref"):
                continue
            callee = summaries.get(site.callee)
            if callee is None or "rpc" not in callee.blocks:
                continue
            flagged_lines.add(site.line)
            drops.append((_frame(fn, site.line, site.callee),)
                         + callee.blocks["rpc"])
        out.drops_deadline = tuple(drops)
    return out


def _is_bare_self_call(node: ast.Call | None, self_name: str) -> bool:
    """True for ``self.method(...)`` — the only call shape through
    which writes-self facts propagate to the caller's own state."""
    return (node is not None
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == self_name)


def _short(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def compute_summaries(project: Project) -> dict[str, Summary]:
    """Summaries for every function, callees-first with SCC fixpoints."""
    graph = project.graph
    hierarchy = Hierarchy(graph)
    summaries: dict[str, Summary] = {}
    for component in graph.sccs():
        if len(component) == 1 and not _self_recursive(graph, component[0]):
            fn = graph.functions.get(component[0])
            if fn is not None:
                summaries[fn.qualname] = _summarize_once(
                    fn, graph, summaries, hierarchy)
            continue
        # recursive component: iterate to fixpoint (sets only grow)
        for qual in component:
            summaries[qual] = Summary(qualname=qual)
        changed = True
        while changed:
            changed = False
            for qual in component:
                fn = graph.functions.get(qual)
                if fn is None:
                    continue
                new = _summarize_once(fn, graph, summaries, hierarchy)
                old = summaries[qual]
                if set(new.raises) != set(old.raises) \
                        or set(new.blocks) != set(old.blocks) \
                        or len(new.drops_deadline) != len(old.drops_deadline) \
                        or len(new.yield_points) != len(old.yield_points) \
                        or set(new.writes_self) != set(old.writes_self):
                    changed = True
                summaries[qual] = new
    return summaries


def _self_recursive(graph: CallGraph, qualname: str) -> bool:
    return any(site.callee == qualname
               for site in graph.callees(qualname)
               if site.kind in ("call", "ref"))


def iter_public_boundary(project: Project) -> Iterator[FunctionInfo]:
    """The *public API boundary*: functions a user of a subsystem can
    reach from its package namespace.

    A symbol is part of the boundary when a package ``__init__``
    re-exports it (``from repro.x.y import Z``): exported module-level
    functions directly, and every public method of an exported class
    (plus inherited public methods of scanned bases).  Private modules
    can raise what they like internally; these functions are where the
    :mod:`repro.common.errors` taxonomy is the contract.
    """
    graph = project.graph
    exported: set[str] = set()
    for ctx in project.contexts.values():
        if not ctx.rel_path.endswith("__init__.py"):
            continue
        for name, dotted in ctx.imports.names.items():
            exported.add(dotted)
    seen: set[str] = set()
    for dotted in sorted(exported):
        if dotted in graph.functions:
            info = graph.functions[dotted]
            if info.is_public and info.qualname not in seen:
                seen.add(info.qualname)
                yield info
        if dotted in graph.classes:
            for qual in graph.mro(dotted):
                for method in graph.classes[qual].methods.values():
                    if method.is_public and method.qualname not in seen:
                        seen.add(method.qualname)
                        yield method
