"""Declarative typestate checking over the CFG: API protocols as data.

The ordering contracts this repo lives by are two-event protocols on
one object: *after* event A (the obligation), event B (the discharge)
must happen *before* the scope ends or a forbidden event fires.
Instances:

* ``WriteAheadLog``: ``append* → fsync`` before the function returns
  (the return is what lets the caller ack) and before any
  ack/watermark-advance event;
* ``Disk`` file handles: ``write/truncate → fsync`` with the same
  obligations — handles are recognized *flow-wise*, as locals bound
  from ``<disk>.open(...)``;
* ``CircuitBreaker``: an admitted ``allow()`` must reach
  ``record_success`` or ``record_failure`` on every path that returns
  normally — an admitted call whose outcome is never recorded starves
  the breaker's sliding window and freezes its state.

A :class:`ProtocolSpec` declares the protocol; :func:`check_protocol`
enforces it by path search: from each obligation site, walk every CFG
path; a path that reaches the normal exit (or a forbidden event)
without passing a discharge *on the same receiver* is a violation.
Paths that leave via an uncaught exception are excused — an exception
propagating out of the function means the caller never gets an ack to
mis-trust.  This is exactly where the PR 3 line-based heuristic fell
short in both directions: an ``fsync`` lexically later but on a
*different branch* satisfied it (missed cross-branch bug), and an
``fsync`` lexically earlier but on *every path* (loop headers) tripped
it (false positive).

Gated obligations (``gate=True``) model boolean-admission APIs: when
the gating call sits in an ``if``/``while`` test, the obligation opens
only on the branch edge where the call returned True (negations are
folded, so ``if not breaker.allow(): return`` obligates the
fall-through edge).  A gating call whose result the checker cannot
track (stored in a variable, passed along) conservatively obligates
both continuations.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.flow import (
    CFG,
    BasicBlock,
    build_cfg,
    calls_in,
    definitions,
    iter_function_cfgs,
    receiver_name,
)


@dataclass(frozen=True)
class ProtocolSpec:
    """One two-phase object protocol.

    ``receiver`` matches receiver *names* to track (``self._slop_wal``
    tracks as ``_slop_wal``); ``derive_open_from`` additionally tracks
    locals bound from ``<matching receiver>.open(...)`` — the def-use
    link that lets ``with disk.open(p, "wb") as f`` put ``f`` under the
    same contract.  ``method_events`` maps method-name regexes to event
    names; the first match wins, so put specific patterns first.
    """

    name: str
    receiver: re.Pattern
    method_events: tuple[tuple[re.Pattern, str], ...]
    obligation: str
    discharge: frozenset[str]
    exit_message: str
    derive_open_from: re.Pattern | None = None
    #: attribute/subscript assignment targets matching this pattern are
    #: forbidden while an obligation is open (watermark advances)
    forbidden_writes: re.Pattern | None = None
    forbidden_write_message: str = ""
    #: method-call events forbidden while an obligation is open (acks)
    forbidden_events: frozenset[str] = field(default_factory=frozenset)
    forbidden_event_message: str = ""
    #: the obligation opens on the admitted branch edge of a gating
    #: call instead of at the call element itself
    gate: bool = False

    def classify(self, method: str) -> str | None:
        for pattern, event in self.method_events:
            if pattern.search(method):
                return event
        return None


@dataclass(frozen=True)
class ProtocolViolation:
    """One broken protocol path, ready to wrap into a lint Finding."""

    node: ast.AST          # anchor: obligation site or forbidden event
    message: str
    spec: ProtocolSpec


# -- event extraction --------------------------------------------------------


def _attr_target_text(target: ast.expr) -> str:
    """The attribute name written by an assignment target, seeing
    through subscripts (``self.partition_scn[p]`` -> ``partition_scn``);
    empty for plain local names."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _assignment_targets(element: ast.AST) -> list[ast.expr]:
    if isinstance(element, ast.Assign):
        out: list[ast.expr] = []
        for target in element.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                out.extend(target.elts)
            else:
                out.append(target)
        return out
    if isinstance(element, (ast.AugAssign, ast.AnnAssign)):
        return [element.target]
    return []


def _tracked_names(cfg: CFG, spec: ProtocolSpec) -> set[str]:
    """Receiver names under this spec's contract in one function."""
    tracked: set[str] = set()
    for _, _, element in cfg.elements():
        for call in calls_in(element):
            if not isinstance(call.func, ast.Attribute):
                continue
            recv = receiver_name(call.func)
            if recv and spec.receiver.search(recv) \
                    and spec.classify(call.func.attr) is not None:
                tracked.add(recv)
            # locals bound from <disk>.open(...) join the tracked set
            if spec.derive_open_from is not None \
                    and call.func.attr == "open" \
                    and recv and spec.derive_open_from.search(recv):
                for name in definitions(element):
                    tracked.add(name)
    return tracked


def _element_events(element: ast.AST, spec: ProtocolSpec,
                    tracked: set[str]) -> list[tuple[str, str, ast.AST]]:
    """(receiver, event, node) triples this element emits, in source
    order.  Forbidden-write events use the pseudo-receiver ``*`` —
    they fire regardless of which tracked object is mid-protocol."""
    events: list[tuple[str, str, ast.AST]] = []
    for call in calls_in(element):
        method = None
        if isinstance(call.func, ast.Attribute):
            method = call.func.attr
            recv = receiver_name(call.func)
        elif isinstance(call.func, ast.Name):
            method = call.func.id
            recv = None
        if method is None:
            continue
        event = spec.classify(method)
        if event is None:
            continue
        if recv is not None and recv in tracked:
            events.append((recv, event, call))
        elif event in spec.forbidden_events:
            # acks fire on whatever object sends them (self, a client,
            # a bare helper); forbidden events match on any receiver
            events.append(("*", event, call))
    if spec.forbidden_writes is not None:
        for target in _assignment_targets(element):
            attr = _attr_target_text(target)
            if attr and spec.forbidden_writes.search(attr):
                events.append(("*", "forbidden-write", element))
    # calls inside an element run before the assignment binds, so sort
    # is unnecessary: calls_in yields call nodes, assignment fires last
    return events


# -- gated obligations -------------------------------------------------------


def _gated_edge_kind(test: ast.expr, call: ast.Call) -> str | None:
    """Which branch edge means "the gating call returned True"?

    Folds ``not`` nesting: ``if allow():`` -> ``true`` edge, ``if not
    allow():`` -> ``false`` edge.  Returns None when the call is not
    part of this test.
    """
    def search(node: ast.expr, parity: int) -> int | None:
        if node is call:
            return parity
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return search(node.operand, parity ^ 1)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                found = search(value, parity)
                if found is not None:
                    return found
        return None

    parity = search(test, 0)
    if parity is None:
        return None
    return "false" if parity else "true"


# -- the path search ---------------------------------------------------------


def _search_from(cfg: CFG, spec: ProtocolSpec, recv: str,
                 events_at: dict[tuple[int, int], list[tuple[str, str, ast.AST]]],
                 start: tuple[BasicBlock, int],
                 obligation_node: ast.AST) -> Iterator[ProtocolViolation]:
    """Walk every path from just-after the obligation site; yield a
    violation for each way the obligation can escape undischarged."""
    reported_exit = False
    reported_nodes: set[int] = set()
    # (block, starting element index); full-block revisits are pruned
    stack: list[tuple[BasicBlock, int]] = [start]
    seen_blocks: set[int] = set()
    seen_exc: set[int] = set()
    while stack:
        block, index = stack.pop()
        # an exception may fire between any two elements of this block:
        # the obligation stays open into the handlers
        if block.bid not in seen_exc:
            seen_exc.add(block.bid)
            for edge in block.out_edges:
                if edge.kind == "exc" and edge.dst is not cfg.raise_exit:
                    if edge.dst.bid not in seen_blocks:
                        seen_blocks.add(edge.dst.bid)
                        stack.append((edge.dst, 0))
        discharged = False
        for i in range(index, len(block.elements)):
            for event_recv, event, node in events_at.get((block.bid, i), ()):
                if event_recv == recv and event in spec.discharge:
                    discharged = True
                    break
                if event == "forbidden-write" or event in spec.forbidden_events:
                    if id(node) not in reported_nodes:
                        reported_nodes.add(id(node))
                        message = (spec.forbidden_write_message
                                   if event == "forbidden-write"
                                   else spec.forbidden_event_message)
                        yield ProtocolViolation(node, message.format(recv=recv),
                                                spec)
            if discharged:
                break
        if discharged:
            continue
        for edge in block.out_edges:
            if edge.kind == "exc":
                continue   # handled above; raise_exit is excused
            if edge.dst is cfg.exit:
                if not reported_exit:
                    reported_exit = True
                    yield ProtocolViolation(
                        obligation_node, spec.exit_message.format(recv=recv),
                        spec)
            elif edge.dst.bid not in seen_blocks:
                seen_blocks.add(edge.dst.bid)
                stack.append((edge.dst, 0))


def check_cfg(cfg: CFG, spec: ProtocolSpec) -> Iterator[ProtocolViolation]:
    """All protocol violations of one spec in one function."""
    tracked = _tracked_names(cfg, spec)
    if not tracked:
        return
    events_at: dict[tuple[int, int], list[tuple[str, str, ast.AST]]] = {}
    for block, index, element in cfg.elements():
        events = _element_events(element, spec, tracked)
        if events:
            events_at[(block.bid, index)] = events

    for block, index, element in cfg.elements():
        for recv, event, node in events_at.get((block.bid, index), ()):
            if event != spec.obligation:
                continue
            if spec.gate:
                yield from _check_gated(cfg, spec, recv, events_at,
                                        block, index, node)
            else:
                yield from _search_from(cfg, spec, recv, events_at,
                                        (block, index + 1), node)


def _check_gated(cfg: CFG, spec: ProtocolSpec, recv: str,
                 events_at: dict, block: BasicBlock, index: int,
                 call: ast.AST) -> Iterator[ProtocolViolation]:
    """Open a gated obligation on the admitted branch edge(s)."""
    element = block.elements[index]
    admitted_kind = None
    if isinstance(element, ast.expr):   # a branch-test pseudo-element
        admitted_kind = _gated_edge_kind(element, call)
    if admitted_kind is not None:
        for edge in block.out_edges:
            if edge.kind == admitted_kind:
                yield from _search_from(cfg, spec, recv, events_at,
                                        (edge.dst, 0), call)
    else:
        # result not directly branched on: conservatively obligate the
        # fall-through — both branches if the element was a test
        yield from _search_from(cfg, spec, recv, events_at,
                                (block, index + 1), call)


def check_protocol(tree: ast.AST, spec: ProtocolSpec
                   ) -> Iterator[ProtocolViolation]:
    """Check one spec over every function of a parsed module."""
    for cfg in iter_function_cfgs(tree):
        yield from check_cfg(cfg, spec)


__all__ = [
    "ProtocolSpec",
    "ProtocolViolation",
    "build_cfg",
    "check_cfg",
    "check_protocol",
]
