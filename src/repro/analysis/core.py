"""The repro-lint engine: findings, file contexts, the rule registry,
pragma suppression, and the analyzer that drives them.

The repo's behavioural fidelity rests on a determinism contract —
every component takes an injected :class:`~repro.common.clock.Clock`
and a seeded :class:`random.Random`, all inter-node traffic flows
through :class:`~repro.simnet.SimNetwork`, and failure handling goes
through :mod:`repro.common.resilience`.  That contract used to be
enforced only by convention; this package enforces it with AST-based
static analysis, the same move DBLog makes for CDC consistency
invariants: machine-checkable instead of tribal knowledge.

Vocabulary:

* a :class:`Rule` inspects one parsed module and yields
  :class:`Finding`\\ s; rules self-register via :func:`register`;
* a :class:`FileContext` bundles the parse tree, source lines, import
  aliases, and per-line pragma suppressions for one file;
* the :class:`Analyzer` walks files in sorted order (the lint run is
  itself deterministic), applies suppressions, and counts everything
  through a :class:`~repro.common.metrics.MetricsRegistry`;
* a committed baseline (see :mod:`repro.analysis.baseline`)
  grandfathers known findings so the CI gate only trips on *new*
  violations.

Suppression is per statement span: ``# repro-lint: disable=rule-a``
anywhere on the lines a finding's node covers (first line through
``end_lineno``) silences those rules for it — so the pragma on the
closing line of a multi-line call still counts; ``disable=all``
silences every rule there.
"""

from __future__ import annotations

import ast
import hashlib
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.common.errors import ConfigurationError
from repro.common.metrics import MetricsRegistry

_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")

#: Transport/availability error names from ``repro.common.errors`` that
#: several rules treat as "the network failed" signals.
TRANSPORT_ERROR_NAMES = frozenset({
    "NodeUnavailableError",
    "TransientNetworkError",
    "RequestTimeoutError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "OverloadError",
    "ServerOverloadedError",
    "BackpressureError",
})

#: Attribute names that mark a call as a simulated-network operation
#: (``SimNetwork.invoke`` / ``SimNetwork.send`` and their wrappers).
NETWORK_CALL_ATTRS = frozenset({"invoke", "send"})


@dataclass(frozen=True)
class Frame:
    """One hop of an interprocedural finding's call chain.

    ``caller`` performed a call on ``line`` of ``path`` that reaches
    ``callee`` (a function qualname, or a primitive like ``<invoke>``
    / the raised exception name at the chain's end)."""

    path: str
    line: int
    caller: str
    callee: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.caller} -> {self.callee}"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Interprocedural rules attach the ``chain`` of call frames from the
    entry point down to the offending call; per-line rules leave it
    empty.  Both reporters render it, and a pragma on any frame's line
    suppresses the finding (see :meth:`Analyzer._project_findings`).
    """

    rule: str
    path: str          # posix-style path relative to the scan root
    line: int
    col: int
    message: str
    snippet: str = ""  # the stripped source line, for fingerprinting
    end_line: int = 0  # last line of the anchoring node (0 = same line)
    chain: tuple[Frame, ...] = ()

    @property
    def last_line(self) -> int:
        return max(self.line, self.end_line)

    def fingerprint(self) -> str:
        """Location-drift-tolerant identity used by the baseline.

        Hashes the rule, path, and source-line *text* (not the line
        number), so unrelated edits above a grandfathered finding do
        not un-baseline it.  Identical findings on identical lines are
        disambiguated by the baseline's per-fingerprint counts.
        """
        digest = hashlib.sha1(
            f"{self.rule}\x00{self.path}\x00{self.snippet}".encode()
        ).hexdigest()
        return digest[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class ImportMap:
    """Resolved import aliases for one module.

    Lets rules ask "what dotted name does this call really target?"
    so ``from time import sleep as pause`` still resolves to
    ``time.sleep``.
    """

    def __init__(self, tree: ast.AST):
        self.modules: dict[str, str] = {}   # local alias -> module dotted name
        self.names: dict[str, str] = {}     # local name -> module.attr
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.modules[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted target of a call's ``func`` expression, or None.

        ``Name`` nodes resolve through ``from``-imports; ``Attribute``
        chains resolve their base through plain imports.  Calls on
        local variables (``rng.random()``) resolve to None — the
        linter cannot know their type and stays silent rather than
        guessing.
        """
        if isinstance(func, ast.Name):
            return self.names.get(func.id)
        if isinstance(func, ast.Attribute):
            parts = [func.attr]
            node: ast.expr = func.value
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            base = self.modules.get(node.id)
            if base is None:
                # a from-imported name used as an attribute base, e.g.
                # ``from datetime import datetime; datetime.now()``
                base = self.names.get(node.id)
            if base is None:
                return None
            return ".".join([base, *reversed(parts)])
        return None


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``.parent`` backlink (rules use this
    to ask e.g. "is this set iteration already wrapped in sorted()?")."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    imports: ImportMap = None  # type: ignore[assignment]
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, rel_path: str,
              path: Path | None = None) -> "FileContext":
        tree = ast.parse(source, filename=rel_path)
        attach_parents(tree)
        ctx = cls(path=path or Path(rel_path), rel_path=rel_path,
                  source=source, tree=tree, lines=source.splitlines())
        ctx.imports = ImportMap(tree)
        for lineno, text in enumerate(ctx.lines, start=1):
            match = _PRAGMA.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                ctx.suppressions[lineno] = {r for r in rules if r}
        return ctx

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, rule: str, lineno: int, end_lineno: int = 0) -> bool:
        """Is ``rule`` disabled anywhere on lines lineno..end_lineno?

        Multi-line statements anchor a finding on their first line but
        a trailing pragma naturally lands on the last, so the whole
        node span counts.
        """
        last = max(lineno, end_lineno)
        for pragma_line, active in self.suppressions.items():
            if lineno <= pragma_line <= last \
                    and (rule in active or "all" in active):
                return True
        return False


class Rule:
    """Base class: subclass, set the class attributes, implement
    :meth:`check`, and decorate with :func:`register`."""

    name: str = ""
    summary: str = ""
    rationale: str = ""
    #: posix path suffixes exempt from this rule (e.g. the one module
    #: allowed to touch the wall clock).
    exempt_suffixes: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def exempt(self, ctx: FileContext) -> bool:
        return any(ctx.rel_path.endswith(suffix)
                   for suffix in self.exempt_suffixes)

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                chain: tuple[Frame, ...] = ()) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end = getattr(node, "end_lineno", None) or lineno
        return Finding(rule=self.name, path=ctx.rel_path, line=lineno,
                       col=col, message=message,
                       snippet=ctx.line_text(lineno), end_line=end,
                       chain=chain)


class ProjectRule(Rule):
    """A rule that sees the whole scanned project at once.

    Per-file rules get one :class:`FileContext`; subclasses of this
    get the :class:`~repro.analysis.callgraph.Project` — parsed files,
    call graph, and effect summaries (built once per run and shared) —
    and yield findings whose :attr:`Finding.chain` spells out the call
    path that convicts them.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ConfigurationError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, sorted by name (the report
    order is part of the determinism story)."""
    import repro.analysis.rules  # noqa: F401  (self-registration)
    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]


def rule_names() -> list[str]:
    import repro.analysis.rules  # noqa: F401
    return sorted(_REGISTRY)


@dataclass
class LintReport:
    """The outcome of one analyzer run, before baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)
    suppressed: int = 0


class Analyzer:
    """Runs a rule set over files/directories and aggregates findings.

    ``root`` anchors the relative paths used in reports and baseline
    fingerprints (defaults to the current directory), so a baseline
    written from the repo root matches runs from anywhere.

    ``jobs`` > 1 fans the per-file parse/scan out across a process
    pool; the interprocedural pass (the :class:`ProjectRule`\\ s) always
    runs in the parent over the full parse, because the call graph
    needs every file at once.  Output is byte-identical either way —
    results are collected in input order.
    """

    def __init__(self, rules: Iterable[Rule] | None = None,
                 root: Path | str | None = None,
                 metrics: MetricsRegistry | None = None,
                 jobs: int | None = None):
        self.rules = list(rules) if rules is not None else all_rules()
        self.root = Path(root) if root is not None else Path.cwd()
        self.metrics = metrics or MetricsRegistry()
        self.jobs = jobs if jobs and jobs > 1 else 1
        #: per-rule wall seconds and finding counts, accumulated across
        #: the run (the --stats report)
        self.rule_seconds: dict[str, float] = {r.name: 0.0 for r in self.rules}
        self.rule_findings: dict[str, int] = {r.name: 0 for r in self.rules}

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def iter_files(paths: Iterable[Path | str]) -> Iterator[Path]:
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                yield from sorted(path.rglob("*.py"))
            elif path.suffix == ".py":
                yield path

    def check_source(self, source: str, rel_path: str) -> list[Finding]:
        """Analyze one source string (the unit-test entry point) —
        per-file rules plus the project rules over a one-file project."""
        ctx = FileContext.parse(source, rel_path)
        findings = self._check_context(ctx)
        findings.extend(self._project_findings([ctx]))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def _check_context(self, ctx: FileContext) -> list[Finding]:
        kept: list[Finding] = []
        for rule in self.rules:
            if isinstance(rule, ProjectRule) or rule.exempt(ctx):
                continue
            # timing the linter itself is diagnostics, not simulated
            # behaviour, so the real clock is fine here
            started = time.perf_counter()  # repro-lint: disable=wall-clock
            for finding in rule.check(ctx):
                if ctx.suppressed(finding.rule, finding.line,
                                  finding.end_line):
                    self.metrics.counter("lint.suppressed").increment()
                    continue
                self.metrics.counter(
                    f"lint.findings.{finding.rule}").increment()
                self.rule_findings[rule.name] += 1
                kept.append(finding)
            elapsed = time.perf_counter() - started  # repro-lint: disable=wall-clock
            self.rule_seconds[rule.name] += elapsed
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return kept

    def run(self, paths: Iterable[Path | str]) -> LintReport:
        report = LintReport()
        files = list(self.iter_files(paths))
        parallel = self._scan_parallel(files) if self.jobs > 1 else None
        contexts: list[FileContext] = []
        for path in files:
            report.files_scanned += 1
            self.metrics.counter("lint.files").increment()
            source = path.read_text(encoding="utf-8")
            rel = self._rel(path)
            try:
                ctx = FileContext.parse(source, rel, path=path)
            except SyntaxError as exc:
                self.metrics.counter("lint.parse_errors").increment()
                report.parse_errors.append(f"{rel}: {exc.msg} (line {exc.lineno})")
                continue
            contexts.append(ctx)
            if parallel is None:
                report.findings.extend(self._check_context(ctx))
        if parallel is not None:
            report.findings.extend(parallel)
        report.findings.extend(self._project_findings(contexts))
        report.suppressed = self.metrics.counter("lint.suppressed").value
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

    def _scan_parallel(self, files: list[Path]) -> list[Finding] | None:
        """Per-file rules across a process pool; None falls back to the
        serial path (pool unavailable in restricted environments)."""
        from concurrent.futures import ProcessPoolExecutor
        payload = [(str(path), str(self.root),
                    frozenset(r.name for r in self.rules))
                   for path in files]
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                chunk = max(1, len(files) // (self.jobs * 4))
                results = list(pool.map(_scan_file_worker, payload,
                                        chunksize=chunk))
        except (OSError, ImportError):
            return None
        findings: list[Finding] = []
        for file_findings, suppressed, seconds, counts in results:
            findings.extend(file_findings)
            self.metrics.counter("lint.suppressed").increment(suppressed)
            for name, value in seconds.items():
                self.rule_seconds[name] = \
                    self.rule_seconds.get(name, 0.0) + value
            for name, value in counts.items():
                self.rule_findings[name] = \
                    self.rule_findings.get(name, 0) + value
                self.metrics.counter(f"lint.findings.{name}").increment(value)
        return findings

    def _project_findings(self, contexts: list[FileContext]) -> list[Finding]:
        """Run the interprocedural rules once over the whole parse.

        Suppression honours the pragma *at any frame of the chain*: a
        ``# repro-lint: disable=<rule>`` on the entry point, on an
        intermediate call, or on the offending line all silence the
        finding — whichever frame the justification reads best at.
        """
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]
        if not project_rules or not contexts:
            return []
        from repro.analysis.callgraph import Project   # lazy: import cycle
        project = Project(contexts)
        by_path = {ctx.rel_path: ctx for ctx in contexts}
        kept: list[Finding] = []
        for rule in project_rules:
            started = time.perf_counter()  # repro-lint: disable=wall-clock
            for finding in rule.check_project(project):
                if self._chain_suppressed(finding, by_path):
                    self.metrics.counter("lint.suppressed").increment()
                    continue
                self.metrics.counter(
                    f"lint.findings.{finding.rule}").increment()
                self.rule_findings[rule.name] += 1
                kept.append(finding)
            elapsed = time.perf_counter() - started  # repro-lint: disable=wall-clock
            self.rule_seconds[rule.name] += elapsed
        return kept

    @staticmethod
    def _chain_suppressed(finding: Finding,
                          by_path: dict[str, FileContext]) -> bool:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.suppressed(finding.rule, finding.line,
                                              finding.end_line):
            return True
        for frame in finding.chain:
            frame_ctx = by_path.get(frame.path)
            if frame_ctx is not None and \
                    frame_ctx.suppressed(finding.rule, frame.line):
                return True
        return False


def _scan_file_worker(args: tuple[str, str, frozenset[str]]
                      ) -> tuple[list[Finding], int,
                                 dict[str, float], dict[str, int]]:
    """Process-pool unit: parse one file and run the per-file rules.

    Parse errors return empty-handed — the parent's own parse of the
    same file reports them exactly once.
    """
    path_str, root_str, rule_names = args
    rules = [rule for rule in all_rules()
             if rule.name in rule_names and not isinstance(rule, ProjectRule)]
    analyzer = Analyzer(rules=rules, root=root_str)
    path = Path(path_str)
    try:
        ctx = FileContext.parse(path.read_text(encoding="utf-8"),
                                analyzer._rel(path), path=path)
    except SyntaxError:
        return [], 0, {}, {}
    findings = analyzer._check_context(ctx)
    suppressed = analyzer.metrics.counter("lint.suppressed").value
    return (findings, suppressed,
            {name: s for name, s in analyzer.rule_seconds.items() if s},
            {name: c for name, c in analyzer.rule_findings.items() if c})
