"""The repro-lint engine: findings, file contexts, the rule registry,
pragma suppression, and the analyzer that drives them.

The repo's behavioural fidelity rests on a determinism contract —
every component takes an injected :class:`~repro.common.clock.Clock`
and a seeded :class:`random.Random`, all inter-node traffic flows
through :class:`~repro.simnet.SimNetwork`, and failure handling goes
through :mod:`repro.common.resilience`.  That contract used to be
enforced only by convention; this package enforces it with AST-based
static analysis, the same move DBLog makes for CDC consistency
invariants: machine-checkable instead of tribal knowledge.

Vocabulary:

* a :class:`Rule` inspects one parsed module and yields
  :class:`Finding`\\ s; rules self-register via :func:`register`;
* a :class:`FileContext` bundles the parse tree, source lines, import
  aliases, and per-line pragma suppressions for one file;
* the :class:`Analyzer` walks files in sorted order (the lint run is
  itself deterministic), applies suppressions, and counts everything
  through a :class:`~repro.common.metrics.MetricsRegistry`;
* a committed baseline (see :mod:`repro.analysis.baseline`)
  grandfathers known findings so the CI gate only trips on *new*
  violations.

Suppression is per statement span: ``# repro-lint: disable=rule-a``
anywhere on the lines a finding's node covers (first line through
``end_lineno``) silences those rules for it — so the pragma on the
closing line of a multi-line call still counts; ``disable=all``
silences every rule there.
"""

from __future__ import annotations

import ast
import hashlib
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.common.metrics import MetricsRegistry

_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")

#: Transport/availability error names from ``repro.common.errors`` that
#: several rules treat as "the network failed" signals.
TRANSPORT_ERROR_NAMES = frozenset({
    "NodeUnavailableError",
    "TransientNetworkError",
    "RequestTimeoutError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "OverloadError",
    "ServerOverloadedError",
    "BackpressureError",
})

#: Attribute names that mark a call as a simulated-network operation
#: (``SimNetwork.invoke`` / ``SimNetwork.send`` and their wrappers).
NETWORK_CALL_ATTRS = frozenset({"invoke", "send"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # posix-style path relative to the scan root
    line: int
    col: int
    message: str
    snippet: str = ""  # the stripped source line, for fingerprinting
    end_line: int = 0  # last line of the anchoring node (0 = same line)

    @property
    def last_line(self) -> int:
        return max(self.line, self.end_line)

    def fingerprint(self) -> str:
        """Location-drift-tolerant identity used by the baseline.

        Hashes the rule, path, and source-line *text* (not the line
        number), so unrelated edits above a grandfathered finding do
        not un-baseline it.  Identical findings on identical lines are
        disambiguated by the baseline's per-fingerprint counts.
        """
        digest = hashlib.sha1(
            f"{self.rule}\x00{self.path}\x00{self.snippet}".encode()
        ).hexdigest()
        return digest[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class ImportMap:
    """Resolved import aliases for one module.

    Lets rules ask "what dotted name does this call really target?"
    so ``from time import sleep as pause`` still resolves to
    ``time.sleep``.
    """

    def __init__(self, tree: ast.AST):
        self.modules: dict[str, str] = {}   # local alias -> module dotted name
        self.names: dict[str, str] = {}     # local name -> module.attr
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.modules[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve_call(self, func: ast.expr) -> str | None:
        """Dotted target of a call's ``func`` expression, or None.

        ``Name`` nodes resolve through ``from``-imports; ``Attribute``
        chains resolve their base through plain imports.  Calls on
        local variables (``rng.random()``) resolve to None — the
        linter cannot know their type and stays silent rather than
        guessing.
        """
        if isinstance(func, ast.Name):
            return self.names.get(func.id)
        if isinstance(func, ast.Attribute):
            parts = [func.attr]
            node: ast.expr = func.value
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            base = self.modules.get(node.id)
            if base is None:
                # a from-imported name used as an attribute base, e.g.
                # ``from datetime import datetime; datetime.now()``
                base = self.names.get(node.id)
            if base is None:
                return None
            return ".".join([base, *reversed(parts)])
        return None


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``.parent`` backlink (rules use this
    to ask e.g. "is this set iteration already wrapped in sorted()?")."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    imports: ImportMap = None  # type: ignore[assignment]
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, rel_path: str,
              path: Path | None = None) -> "FileContext":
        tree = ast.parse(source, filename=rel_path)
        attach_parents(tree)
        ctx = cls(path=path or Path(rel_path), rel_path=rel_path,
                  source=source, tree=tree, lines=source.splitlines())
        ctx.imports = ImportMap(tree)
        for lineno, text in enumerate(ctx.lines, start=1):
            match = _PRAGMA.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                ctx.suppressions[lineno] = {r for r in rules if r}
        return ctx

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, rule: str, lineno: int, end_lineno: int = 0) -> bool:
        """Is ``rule`` disabled anywhere on lines lineno..end_lineno?

        Multi-line statements anchor a finding on their first line but
        a trailing pragma naturally lands on the last, so the whole
        node span counts.
        """
        last = max(lineno, end_lineno)
        for pragma_line, active in self.suppressions.items():
            if lineno <= pragma_line <= last \
                    and (rule in active or "all" in active):
                return True
        return False


class Rule:
    """Base class: subclass, set the class attributes, implement
    :meth:`check`, and decorate with :func:`register`."""

    name: str = ""
    summary: str = ""
    rationale: str = ""
    #: posix path suffixes exempt from this rule (e.g. the one module
    #: allowed to touch the wall clock).
    exempt_suffixes: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def exempt(self, ctx: FileContext) -> bool:
        return any(ctx.rel_path.endswith(suffix)
                   for suffix in self.exempt_suffixes)

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        end = getattr(node, "end_lineno", None) or lineno
        return Finding(rule=self.name, path=ctx.rel_path, line=lineno,
                       col=col, message=message,
                       snippet=ctx.line_text(lineno), end_line=end)


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, sorted by name (the report
    order is part of the determinism story)."""
    import repro.analysis.rules  # noqa: F401  (self-registration)
    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]


def rule_names() -> list[str]:
    import repro.analysis.rules  # noqa: F401
    return sorted(_REGISTRY)


@dataclass
class LintReport:
    """The outcome of one analyzer run, before baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)
    suppressed: int = 0


class Analyzer:
    """Runs a rule set over files/directories and aggregates findings.

    ``root`` anchors the relative paths used in reports and baseline
    fingerprints (defaults to the current directory), so a baseline
    written from the repo root matches runs from anywhere.
    """

    def __init__(self, rules: Iterable[Rule] | None = None,
                 root: Path | str | None = None,
                 metrics: MetricsRegistry | None = None):
        self.rules = list(rules) if rules is not None else all_rules()
        self.root = Path(root) if root is not None else Path.cwd()
        self.metrics = metrics or MetricsRegistry()
        #: per-rule wall seconds and finding counts, accumulated across
        #: the run (the --stats report)
        self.rule_seconds: dict[str, float] = {r.name: 0.0 for r in self.rules}
        self.rule_findings: dict[str, int] = {r.name: 0 for r in self.rules}

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def iter_files(paths: Iterable[Path | str]) -> Iterator[Path]:
        for entry in paths:
            path = Path(entry)
            if path.is_dir():
                yield from sorted(path.rglob("*.py"))
            elif path.suffix == ".py":
                yield path

    def check_source(self, source: str, rel_path: str) -> list[Finding]:
        """Analyze one source string (the unit-test entry point)."""
        ctx = FileContext.parse(source, rel_path)
        return self._check_context(ctx)

    def _check_context(self, ctx: FileContext) -> list[Finding]:
        kept: list[Finding] = []
        for rule in self.rules:
            if rule.exempt(ctx):
                continue
            # timing the linter itself is diagnostics, not simulated
            # behaviour, so the real clock is fine here
            started = time.perf_counter()  # repro-lint: disable=wall-clock
            for finding in rule.check(ctx):
                if ctx.suppressed(finding.rule, finding.line,
                                  finding.end_line):
                    self.metrics.counter("lint.suppressed").increment()
                    continue
                self.metrics.counter(
                    f"lint.findings.{finding.rule}").increment()
                self.rule_findings[rule.name] += 1
                kept.append(finding)
            elapsed = time.perf_counter() - started  # repro-lint: disable=wall-clock
            self.rule_seconds[rule.name] += elapsed
        kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return kept

    def run(self, paths: Iterable[Path | str]) -> LintReport:
        report = LintReport()
        for path in self.iter_files(paths):
            report.files_scanned += 1
            self.metrics.counter("lint.files").increment()
            source = path.read_text(encoding="utf-8")
            rel = self._rel(path)
            try:
                ctx = FileContext.parse(source, rel, path=path)
            except SyntaxError as exc:
                self.metrics.counter("lint.parse_errors").increment()
                report.parse_errors.append(f"{rel}: {exc.msg} (line {exc.lineno})")
                continue
            report.findings.extend(self._check_context(ctx))
        report.suppressed = self.metrics.counter("lint.suppressed").value
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report
