"""repro-lint: AST-based determinism & resilience static analysis.

The reproduction's chaos tests and benchmarks are trustworthy only
while every component honours the determinism contract (injected
clocks, seeded RNGs, ordered iteration on fan-out paths) and the
resilience contract (transport failures handled through
:mod:`repro.common.resilience`, deadlines forwarded hop to hop).
This package checks both contracts statically; see
:mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.rules` for the rules.
"""

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import (
    Analyzer,
    FileContext,
    Finding,
    LintReport,
    Rule,
    all_rules,
    register,
    rule_names,
)

__all__ = [
    "Analyzer",
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "register",
    "rule_names",
]
