"""``unbounded-rpc``: a held deadline must bound every transitive RPC.

The intra-procedural ``deadline-dropped`` rule catches a function that
accepts a :class:`~repro.common.resilience.Deadline` and never reads
it.  This rule catches what that one structurally cannot: the function
reads its deadline conscientiously and then calls a helper that
performs network work *without the budget* — three frames down, the
request is back on default timeouts and the end-to-end bound the edge
promised is fiction.

Powered by the effect summaries: a function that receives (or
constructs) a deadline is an entry point of a bounded call chain; the
summary layer marks every call site in it where the budget stops
flowing — an RPC-reaching callee invoked without any deadline-tainted
argument, or a direct ``invoke``/``send`` that ignores the budget
while the function uses it elsewhere.  Each finding carries the full
witness chain (entry point → dropping call → … → concrete RPC site),
and a pragma on any frame suppresses it.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import Finding, ProjectRule, register


@register
class UnboundedRpcRule(ProjectRule):
    name = "unbounded-rpc"
    summary = ("a held Deadline stops bounding the call chain before a "
               "transitive RPC (dropped at a call edge)")
    rationale = ("End-to-end latency bounds only hold if every hop clamps "
                 "to the remaining budget; one call edge that forwards "
                 "work but not the deadline unbounds the whole request "
                 "invisibly to per-function review.")

    def check_project(self, project) -> Iterator[Finding]:
        summaries = project.summaries
        graph = project.graph
        for qualname in sorted(summaries):
            summary = summaries[qualname]
            if not summary.drops_deadline:
                continue
            fn = graph.functions.get(qualname)
            if fn is None:
                continue
            ctx = project.context_for(fn.rel_path)
            for chain in summary.drops_deadline:
                drop = chain[0]
                rpc = chain[-1]
                where = f"{rpc.path}:{rpc.line}" \
                    if len(chain) > 1 else "this call"
                yield Finding(
                    rule=self.name, path=drop.path, line=drop.line, col=0,
                    message=(f"{_short(qualname)}() holds a deadline but "
                             f"calls {_short(drop.callee)} without it; the "
                             f"chain reaches an unbounded RPC at {where} — "
                             "forward the deadline or clamp a timeout "
                             "from it"),
                    snippet=ctx.line_text(drop.line) if ctx else "",
                    end_line=drop.line, chain=chain)


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname
