"""``unseeded-random``: ban nondeterministic randomness sources.

Replica selection jitter, retry backoff, latency sampling, and
workload generation all draw randomness; the determinism contract
says every draw comes from a ``random.Random(seed)`` instance that a
test (or benchmark config) seeds.  Two violation shapes:

* calls on the *module-level* RNG (``random.random()``,
  ``random.choice(...)``, …) — that RNG is seeded from OS entropy at
  interpreter start, so results differ run to run;
* ``random.Random()`` constructed with no seed argument (same
  problem, one object removed), and ``random.SystemRandom()`` which
  is nondeterministic by design.

``import random`` itself is fine — constructing seeded instances is
exactly what the contract wants.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

MODULE_LEVEL_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "binomialvariate", "seed",
})


@register
class UnseededRandomRule(Rule):
    name = "unseeded-random"
    summary = ("module-level random.* call or unseeded random.Random(); "
               "use an explicitly seeded random.Random(seed)")
    rationale = ("The global RNG is seeded from OS entropy, so retry "
                 "jitter, replica choice, and latency samples change "
                 "between runs; every draw must come from an injected "
                 "seeded instance.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve_call(node.func)
            if target is None or not target.startswith("random."):
                continue
            tail = target[len("random."):]
            if tail in MODULE_LEVEL_FNS:
                yield self.finding(
                    ctx, node,
                    f"random.{tail}() uses the global OS-entropy-seeded "
                    "RNG; draw from an injected random.Random(seed)")
            elif tail == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "random.Random() without a seed is nondeterministic; "
                    "pass an explicit seed")
            elif tail == "SystemRandom":
                yield self.finding(
                    ctx, node,
                    "random.SystemRandom() is nondeterministic by design "
                    "and cannot be seeded; use random.Random(seed)")
