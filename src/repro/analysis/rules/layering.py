"""``layering-contract``: imports must follow the committed layer map.

The legal inter-package edges live in
:mod:`repro.analysis.architecture` with their paper justifications; an
import of a ``repro`` package outside the importing package's allowed
set is an architectural regression.  ``if TYPE_CHECKING:`` imports are
exempt (annotation-only, never executed).

Files outside a recognized package — tests, scripts, modules sitting
directly under ``repro/`` — are skipped: the contract governs the
package graph, not loose files.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.architecture import (
    allowed_imports,
    imported_packages,
    package_of,
)
from repro.analysis.core import FileContext, Finding, Rule, register


@register
class LayeringContractRule(Rule):
    name = "layering-contract"
    summary = "an import crosses a package boundary the layer map forbids"
    rationale = ("The dependency contract in repro/analysis/architecture.py "
                 "is the reviewed statement of the architecture; systems may "
                 "depend on shared substrate and their documented feeds, "
                 "never on each other's internals.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        package = package_of(ctx.rel_path)
        if package is None:
            return
        legal = allowed_imports(package)
        for imported, node in imported_packages(ctx.tree, ctx.rel_path):
            if imported not in legal:
                yield self.finding(
                    ctx, node,
                    f"package '{package}' imports 'repro.{imported}', "
                    f"which the layering contract does not allow "
                    f"(allowed: {', '.join(sorted(legal))}); if this "
                    f"dependency is intentional, add it to "
                    f"analysis/architecture.py with its justification")
