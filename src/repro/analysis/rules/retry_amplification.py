"""``retry-amplification``: one failure gets one retry budget.

Nested retrying contexts multiply load: an inner call that retries 3
times inside an outer loop that retries 3 times sends up to 9 requests
for one logical operation.  Under overload that multiplication is the
metastable-failure engine — the harder the system struggles, the more
traffic its clients generate, so the collapse outlives the spike that
started it.  The overload layer (``common/overload.py``) sheds load at
the front door precisely so that *one* bounded retry budget, owned by
one layer, is the only re-sending that happens.

A *retrying context* here is either a ``call_with_retries(...)`` call
(its function argument is the retried region) or a retry-shaped loop
(per ``retry-without-backoff``'s definition) that catches a transport
error and keeps looping.  The rule flags, inside such a context:

* another ``call_with_retries`` call;
* another retry loop that catches a transport error and continues;
* a call to — or, for ``call_with_retries`` arguments, a bare
  reference to — a same-file function/method that itself contains
  either: the one-file approximation of the cross-layer nesting this
  rule exists to catch.

The fix is to pick the layer that owns the retry (usually the
outermost one with the deadline budget) and make every inner layer
fail fast — or shed — instead of re-sending.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    TRANSPORT_ERROR_NAMES,
    FileContext,
    Finding,
    Rule,
    register,
)
from repro.analysis.rules.retry_backoff import (
    _callee_name,
    _handler_retries,
    _is_retry_loop,
)
from repro.analysis.rules.swallowed import _caught_names


def _is_retry_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and \
        _callee_name(node.func) == "call_with_retries"


def _is_retrying_loop(node: ast.AST) -> bool:
    """A loop that re-attempts after transport failures (paced or not —
    pacing fixes storms, not multiplication)."""
    if not isinstance(node, (ast.While, ast.For)) or not _is_retry_loop(node):
        return False
    for child in ast.walk(node):
        if isinstance(child, ast.Try):
            for handler in child.handlers:
                if _caught_names(handler) & TRANSPORT_ERROR_NAMES and \
                        _handler_retries(handler):
                    return True
    return False


def _retrying_functions(tree: ast.AST) -> set[str]:
    """Names of same-file functions whose body contains a retrying
    context (so calling them from inside one nests the budgets)."""
    names = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(node):
            if child is not node and \
                    (_is_retry_call(child) or _is_retrying_loop(child)):
                names.add(node.name)
                break
    return names


@register
class RetryAmplificationRule(Rule):
    name = "retry-amplification"
    summary = ("retrying context nested inside another retrying context; "
               "retry budgets multiply load under overload")
    rationale = ("An inner retry inside an outer retry turns one failure "
                 "into attempts^depth requests — the amplification that "
                 "makes overload metastable.  Exactly one layer owns the "
                 "retry; inner layers fail fast or shed.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        retrying_methods = _retrying_functions(ctx.tree)
        flagged: set[int] = set()
        for outer in ast.walk(ctx.tree):
            is_retry_call = _is_retry_call(outer)
            if is_retry_call:
                # the retried region is the call's arguments (the fn
                # plus any callbacks), not the call node itself
                region: list[ast.AST] = list(outer.args) + \
                    [kw.value for kw in outer.keywords]
            elif _is_retrying_loop(outer):
                region = list(outer.body) + list(outer.orelse)
            else:
                continue
            for root in region:
                for inner in ast.walk(root):
                    if id(inner) in flagged:
                        continue
                    if _is_retry_call(inner):
                        detail = "nested call_with_retries"
                    elif _is_retrying_loop(inner):
                        detail = "nested retry loop"
                    elif isinstance(inner, ast.Call) and \
                            _callee_name(inner.func) in retrying_methods:
                        detail = (f"call to {_callee_name(inner.func)}(), "
                                  "which retries internally")
                    elif is_retry_call and inner is root and \
                            isinstance(inner, ast.Name) and \
                            inner.id in retrying_methods:
                        # the retried callable itself retries: passing
                        # a retrying function to call_with_retries
                        detail = (f"{inner.id} (which retries internally) "
                                  "passed as the retried function")
                    else:
                        continue
                    flagged.add(id(inner))
                    yield self.finding(
                        ctx, inner,
                        f"{detail} inside a retrying context: budgets "
                        "multiply (attempts^depth requests per failure); "
                        "let exactly one layer own the retry and make "
                        "the other fail fast")
