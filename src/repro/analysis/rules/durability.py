"""``durability-unsynced-ack``: WAL/disk writes must reach an fsync.

DESIGN.md §9's contract is *acked ⇒ fsynced ⇒ recoverable*: a system
may only acknowledge a write after the bytes that make it recoverable
are forced to stable storage.  The repo encodes durable channels in
names — WAL handles end in ``wal`` (``_slop_wal``, ``_commit_wal``,
``_log_wal``) and raw device handles in ``disk`` — so an ``append`` or
``write`` on such a receiver that is never followed by an ``fsync`` in
the same function is a write whose caller can ack state the next crash
will erase.

The rule flags ``<receiver>.append(...)`` / ``<receiver>.write(...)``
where the receiver's simple name contains a ``wal`` or ``disk``
component and no call whose name mentions ``fsync`` (or is exactly
``sync``) appears at or after the write's line within the enclosing
function.  Nested functions are scanned independently, so an inner
closure cannot borrow its parent's fsync.

:mod:`repro.common.wal` and :mod:`repro.simnet.disk` are exempt: they
*implement* the durability boundary (``append`` is documented as
not-yet-durable there; the caller owns the fsync placement).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

_DURABLE_RECEIVER = re.compile(r"(^|_)(wal|disk)(_|$)", re.IGNORECASE)
_WRITE_METHODS = frozenset({"append", "write"})


def _receiver_name(func: ast.Attribute) -> str:
    """Simple name of the object a method is called on."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return ""


def _local_calls(fn: ast.AST) -> Iterator[ast.Call]:
    """Calls in ``fn``'s own body, not descending into nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class DurabilityUnsyncedAckRule(Rule):
    name = "durability-unsynced-ack"
    summary = ("WAL/disk write with no fsync later in the same function; "
               "callers can ack bytes a crash will erase")
    rationale = ("The durability contract (DESIGN.md §9) is acked ⇒ "
                 "fsynced ⇒ recoverable; a durable-channel write that "
                 "never reaches an fsync lets an acknowledgement cover "
                 "page-cache state that a kill silently drops.")
    exempt_suffixes = ("common/wal.py", "simnet/disk.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes: list[ast.Call] = []
            last_sync = -1
            for call in _local_calls(fn):
                if not isinstance(call.func, ast.Attribute):
                    continue
                method = call.func.attr
                if method in _WRITE_METHODS and \
                        _DURABLE_RECEIVER.search(_receiver_name(call.func)):
                    writes.append(call)
                elif "fsync" in method.lower() or method == "sync":
                    last_sync = max(last_sync, call.lineno)
            for call in writes:
                if call.lineno > last_sync:
                    yield self.finding(
                        ctx, call,
                        f"{_receiver_name(call.func)}.{call.func.attr} is "
                        "never followed by an fsync in this function; "
                        "force the bytes down before anything acks them "
                        "(acked ⇒ fsynced ⇒ recoverable)")
