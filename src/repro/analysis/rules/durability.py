"""``durability-unsynced-ack``: WAL/disk writes must reach an fsync on
every path that acks.

DESIGN.md §9's contract is *acked ⇒ fsynced ⇒ recoverable*: a system
may only acknowledge a write after the bytes that make it recoverable
are forced to stable storage.  The repo encodes durable channels in
names — WAL handles end in ``wal`` (``_slop_wal``, ``_commit_wal``,
``_log_wal``) and raw device handles in ``disk`` — and, flow-wise, in
provenance: a local bound from ``<disk>.open(...)`` is a durable file
handle whatever it is called.

The PR 3 version of this rule was a line heuristic ("an fsync at or
after the write's line"), blind to branching: a write whose fsync sat
on only *one* branch passed, and a loop whose fsync preceded the write
lexically but followed it on every path failed.  This version is
typestate checking on the CFG (:mod:`repro.analysis.protocol`): from
every ``append``/``write`` on a durable channel, **every** path must
hit an ``fsync`` on the same receiver before

* the function returns normally (the caller acks against the return),
* an ``ack``-named call fires, or
* a watermark advances (assignment to a ``*watermark``/``*scn``/
  ``applied_through`` attribute) — the durable-progress markers crash
  recovery trusts.

Paths that leave by an uncaught exception are excused: nothing gets
acked on them.  Nested functions are separate scopes, so an inner
closure still cannot borrow its parent's fsync.

:mod:`repro.common.wal`, :mod:`repro.common.storage`, and
:mod:`repro.simnet.disk` are exempt: they *implement* the durability
boundary (``append`` is documented as not-yet-durable there; the
caller owns the fsync placement).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register
from repro.analysis.protocol import ProtocolSpec, check_protocol

_DURABLE_RECEIVER = re.compile(r"(^|_)(wal|disk)(_|$)", re.IGNORECASE)

#: Named WAL/disk receivers: append/write opens the obligation.
WAL_SPEC = ProtocolSpec(
    name="wal",
    receiver=_DURABLE_RECEIVER,
    method_events=(
        (re.compile(r"^(append|write)$"), "write"),
        (re.compile(r"fsync|^sync$"), "sync"),
        (re.compile(r"(^|_)ack"), "ack"),
    ),
    obligation="write",
    discharge=frozenset({"sync"}),
    forbidden_events=frozenset({"ack"}),
    forbidden_writes=re.compile(r"watermark|(^|_)scn(_|$)|applied_through",
                                re.IGNORECASE),
    exit_message=(
        "{recv} is written on a path that returns without an fsync; "
        "the caller can ack bytes a crash will erase "
        "(acked ⇒ fsynced ⇒ recoverable)"),
    forbidden_event_message=(
        "ack fires while {recv} holds unsynced bytes; fsync before "
        "acknowledging (acked ⇒ fsynced ⇒ recoverable)"),
    forbidden_write_message=(
        "watermark advances while {recv} holds unsynced bytes; a crash "
        "now replays a watermark the log cannot back"),
)

#: File handles whose provenance is ``<disk>.open(...)``: same contract,
#: receiver recognized by dataflow instead of naming convention.
DISK_HANDLE_SPEC = ProtocolSpec(
    name="disk-handle",
    receiver=re.compile(r"$^"),   # nothing matches by name alone
    derive_open_from=_DURABLE_RECEIVER,
    method_events=(
        (re.compile(r"^(write|truncate|writelines)$"), "write"),
        (re.compile(r"fsync|^sync$"), "sync"),
        (re.compile(r"(^|_)ack"), "ack"),
    ),
    obligation="write",
    discharge=frozenset({"sync"}),
    forbidden_events=frozenset({"ack"}),
    forbidden_writes=re.compile(r"watermark|(^|_)scn(_|$)|applied_through",
                                re.IGNORECASE),
    exit_message=(
        "{recv} (opened from a disk) is written on a path that returns "
        "without an fsync; the caller can ack bytes a crash will erase"),
    forbidden_event_message=(
        "ack fires while {recv} holds unsynced bytes; fsync before "
        "acknowledging"),
    forbidden_write_message=(
        "watermark advances while {recv} holds unsynced bytes; a crash "
        "now replays a watermark the log cannot back"),
)


@register
class DurabilityUnsyncedAckRule(Rule):
    name = "durability-unsynced-ack"
    summary = ("a WAL/disk write escapes to a return, ack, or watermark "
               "advance without an fsync on some path")
    rationale = ("The durability contract (DESIGN.md §9) is acked ⇒ "
                 "fsynced ⇒ recoverable; checked flow-sensitively, so a "
                 "branch that skips the fsync is caught even when "
                 "another branch syncs.")
    exempt_suffixes = ("common/wal.py", "common/storage.py",
                       "simnet/disk.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for spec in (WAL_SPEC, DISK_HANDLE_SPEC):
            for violation in check_protocol(ctx.tree, spec):
                yield self.finding(ctx, violation.node, violation.message)
