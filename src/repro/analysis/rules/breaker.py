"""``breaker-unrecorded-outcome``: every admitted ``allow()`` must be
recorded.

A :class:`~repro.common.resilience.CircuitBreaker` learns only from
``record_success``/``record_failure``.  A call path that passes
``allow()`` and then returns without recording either outcome starves
the breaker's window: a half-open probe that never reports keeps the
breaker open forever, and silent successes never close it.

This is a *gated* protocol (:mod:`repro.analysis.protocol`): the
obligation opens only on the branch where ``allow()`` returned True
(``if not breaker.allow(): return`` obligates the fall-through, not
the rejected return), and is discharged by a ``record_*`` or
``reset`` on the same breaker.  Paths that leave by an uncaught
exception are excused — the checker cannot know which handler a
dynamic exception selects — but paths *through* handlers are still
searched, which is why the canonical shape is
``except: record_failure(); raise``.

:mod:`repro.common.resilience` itself is exempt: it implements the
breaker, so its internal transitions are not protocol clients.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register
from repro.analysis.protocol import ProtocolSpec, check_protocol

BREAKER_SPEC = ProtocolSpec(
    name="circuit-breaker",
    receiver=re.compile(r"breaker", re.IGNORECASE),
    method_events=(
        (re.compile(r"^allow$"), "allow"),
        (re.compile(r"^(record_success|record_failure|reset)$"), "record"),
    ),
    obligation="allow",
    discharge=frozenset({"record"}),
    exit_message=(
        "{recv}.allow() admitted a call here, but some path returns "
        "without record_success/record_failure; unrecorded outcomes "
        "freeze the breaker's state machine"),
    gate=True,
)


@register
class BreakerUnrecordedOutcomeRule(Rule):
    name = "breaker-unrecorded-outcome"
    summary = ("a circuit breaker admits a call on a path that never "
               "records success or failure")
    rationale = ("Breakers only transition on recorded outcomes; an "
                 "admitted-but-unrecorded call leaves a half-open "
                 "breaker open forever and hides successes that should "
                 "close it.")
    exempt_suffixes = ("common/resilience.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for violation in check_protocol(ctx.tree, BREAKER_SPEC):
            yield self.finding(ctx, violation.node, violation.message)
