"""``set-iteration``: flag iteration-order leaks from sets.

Python sets iterate in hash order, which varies with insertion
history and (for strings) the per-process hash seed.  When the
iteration result feeds replica selection, message fan-out, or
serialization, that leak makes two runs of the "same" scenario take
different network schedules — precisely the nondeterminism the
SimClock/SimNetwork substrate exists to prevent.  Voldemort's
preference lists, Kafka's ISR, and Helix's instance sets are all
conceptually sets; the contract is that they are *materialized* in a
defined order (``sorted(...)`` or an explicit preference list) before
anything order-sensitive consumes them.

Flagged shapes, within one scope:

* ``for x in s`` / ``[f(x) for x in s]`` where ``s`` is a set
  literal, a ``set()``/``frozenset()`` call, a set comprehension, a
  union/intersection of those, or a local name bound only to such
  expressions;
* ``list(s)`` / ``tuple(s)`` of the same — an unordered snapshot.

Not flagged: membership tests, ``sorted(s)``, ``len(s)``, and
iteration wrapped in ``sorted(...)`` — those are the fixes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

_SET_CALLS = frozenset({"set", "frozenset"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _walk_scope(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function scopes
    (each scope is analyzed on its own with its own name bindings)."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _ScopeInfo:
    """Which local names are (only ever) bound to set expressions."""

    def __init__(self, body: list[ast.stmt]):
        bound_set: set[str] = set()
        bound_other: set[str] = set()
        for stmt in body:
            for node in _walk_scope([stmt]):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_set_expr(node.value, frozenset()):
                        bound_set.add(target.id)
                    else:
                        bound_other.add(target.id)
        self.set_names = frozenset(bound_set - bound_other)


def _is_set_expr(node: ast.expr, set_names: frozenset[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _SET_CALLS:
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(node.left, set_names) or \
            _is_set_expr(node.right, set_names)
    return False


def _inside_sorted(node: ast.AST) -> bool:
    parent = getattr(node, "parent", None)
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted")


@register
class SetIterationRule(Rule):
    name = "set-iteration"
    summary = ("iterating a set leaks hash order into the schedule; "
               "materialize with sorted(...) first")
    rationale = ("Set iteration order depends on insertion history and "
                 "the per-process hash seed; on fan-out or serialization "
                 "paths that makes replays diverge.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for _scope, body in _scopes(ctx.tree):
            info = _ScopeInfo(body)
            yield from self._check_scope(ctx, body, info)

    def _check_scope(self, ctx: FileContext, body: list[ast.stmt],
                     info: _ScopeInfo) -> Iterator[Finding]:
        for node in _walk_scope(body):
            if isinstance(node, ast.For) and \
                    _is_set_expr(node.iter, info.set_names):
                yield self.finding(
                    ctx, node.iter,
                    "for-loop over a set: iteration order is hash order; "
                    "iterate sorted(...) or an explicit preference list")
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, info.set_names) and \
                            not _inside_sorted(node):
                        yield self.finding(
                            ctx, gen.iter,
                            "list comprehension over a set captures hash "
                            "order; wrap the comprehension in sorted() or "
                            "iterate sorted(...)")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("list", "tuple") and \
                    len(node.args) == 1 and not node.keywords and \
                    _is_set_expr(node.args[0], info.set_names) and \
                    not _inside_sorted(node):
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() of a set snapshots hash order; "
                    "use sorted(...) for a defined order")
