"""The repro-lint rule set.

Importing this package registers every rule with the global registry
in :mod:`repro.analysis.core`.  Each module holds one rule, named
after the contract it enforces:

* :mod:`.wallclock` — ``wall-clock``: no direct wall-clock reads or
  sleeps outside ``common/clock.py``;
* :mod:`.randomness` — ``unseeded-random``: no module-level
  ``random.*`` calls or unseeded ``random.Random()``;
* :mod:`.ordering` — ``set-iteration``: no iteration-order-sensitive
  use of sets on fan-out/serialization paths;
* :mod:`.swallowed` — ``swallowed-transport-error``: no silently
  discarded transport failures;
* :mod:`.retry_backoff` — ``retry-without-backoff``: retry loops must
  back off (or use ``call_with_retries``);
* :mod:`.deadline` — ``deadline-dropped``: a function that accepts a
  ``Deadline`` must consult it before network work;
* :mod:`.durability` — ``durability-unsynced-ack``: WAL/disk writes
  must be followed by an fsync in the same function (acked ⇒ fsynced
  ⇒ recoverable).
"""

from repro.analysis.rules import (  # noqa: F401
    deadline,
    durability,
    ordering,
    randomness,
    retry_backoff,
    swallowed,
    wallclock,
)
