"""The repro-lint rule set.

Importing this package registers every rule with the global registry
in :mod:`repro.analysis.core`.  Each module holds one rule, named
after the contract it enforces:

* :mod:`.wallclock` — ``wall-clock``: no direct wall-clock reads or
  sleeps outside ``common/clock.py``;
* :mod:`.randomness` — ``unseeded-random``: no module-level
  ``random.*`` calls or unseeded ``random.Random()``;
* :mod:`.ordering` — ``set-iteration``: no iteration-order-sensitive
  use of sets on fan-out/serialization paths;
* :mod:`.swallowed` — ``swallowed-transport-error``: no silently
  discarded transport failures;
* :mod:`.retry_backoff` — ``retry-without-backoff``: retry loops must
  back off (or use ``call_with_retries``);
* :mod:`.retry_amplification` — ``retry-amplification``: no retrying
  context nested inside another (budgets multiply under overload);
* :mod:`.deadline` — ``deadline-dropped``: a function that accepts a
  ``Deadline`` must consult it before network work;
* :mod:`.durability` — ``durability-unsynced-ack``: every path from a
  WAL/disk write to a return, ack, or watermark advance passes an
  fsync (flow-sensitive typestate; acked ⇒ fsynced ⇒ recoverable);
* :mod:`.breaker` — ``breaker-unrecorded-outcome``: an admitted
  ``CircuitBreaker.allow()`` reaches ``record_success`` or
  ``record_failure`` on every normal path;
* :mod:`.staleread` — ``stale-read-across-rpc``: no branching on
  shared state read before a network call without a re-read;
* :mod:`.layering` — ``layering-contract``: imports follow the
  committed layer map in :mod:`repro.analysis.architecture`;
* :mod:`.unbounded_rpc` — ``unbounded-rpc``: a held deadline bounds
  every transitive RPC (interprocedural, call-chain findings);
* :mod:`.escaped_error` — ``escaped-internal-error``: only taxonomy
  errors escape the package-exported public API (interprocedural);
* :mod:`.atomicity` — ``atomicity-violation``,
  ``non-atomic-multi-write``, ``yield-in-atomic-section``: multi-step
  shared-state updates must not straddle a transitive yield point
  (RPC/sleep/fsync anywhere down the call chain) without
  revalidation, a journal record, or an ``@atomic_section`` proof.

The four flow rules run on the control-flow graphs built by
:mod:`repro.analysis.flow` (via :mod:`repro.analysis.protocol` for
the typestate pair) rather than on per-line syntax; the last two are
:class:`~repro.analysis.core.ProjectRule`\\ s consuming the repo-wide
call graph (:mod:`repro.analysis.callgraph`) and effect summaries
(:mod:`repro.analysis.summaries`).
"""

from repro.analysis.rules import (  # noqa: F401
    atomicity,
    breaker,
    deadline,
    durability,
    escaped_error,
    layering,
    ordering,
    randomness,
    retry_amplification,
    retry_backoff,
    staleread,
    swallowed,
    unbounded_rpc,
    wallclock,
)
