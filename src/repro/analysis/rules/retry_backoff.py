"""``retry-without-backoff``: retry loops must pace themselves.

The paper's systems survive "frequent transient and short-term
failures" by retrying — but a retry loop with no backoff hammers the
failing node, synchronizes clients into retry storms, and (on the
SimClock) never lets time advance far enough for breakers to go
half-open or failure detectors to probe.  PR 1 centralized the
discipline in :func:`repro.common.resilience.call_with_retries` and
:class:`RetryPolicy`; this rule keeps ad-hoc loops from creeping back.

A loop is considered a *retry loop* when it is a ``while`` loop, a
``for`` over ``range(...)``, or a ``for`` whose target is named like
``attempt``/``retry``/``round``/``tries``, AND it catches a transport
error from ``repro.common.errors`` without re-raising or exiting the
loop (i.e. the failure leads to another attempt).  Such a loop must
contain a pacing call: ``call_with_retries``, a ``RetryPolicy``
backoff, or a ``clock.sleep`` — matched by callee name containing
``sleep``/``backoff`` or equal to ``call_with_retries``.

Fan-out loops (``for node in replicas``) that catch per-node failures
are not retry loops and are not flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    TRANSPORT_ERROR_NAMES,
    FileContext,
    Finding,
    Rule,
    register,
)
from repro.analysis.rules.swallowed import _caught_names

_RETRY_TARGET = re.compile(r"attempt|retry|retries|round|tries", re.IGNORECASE)


def _is_retry_loop(node: ast.While | ast.For) -> bool:
    if isinstance(node, ast.While):
        return True
    if isinstance(node.iter, ast.Call) and \
            isinstance(node.iter.func, ast.Name) and \
            node.iter.func.id == "range":
        return True
    return isinstance(node.target, ast.Name) and \
        bool(_RETRY_TARGET.search(node.target.id))


def _callee_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _has_pacing_call(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = _callee_name(child.func).lower()
            if "sleep" in name or "backoff" in name or \
                    name == "call_with_retries":
                return True
    return False


def _handler_retries(handler: ast.ExceptHandler) -> bool:
    """The handler leads to another loop iteration: it neither
    re-raises nor exits the loop."""
    for stmt in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(stmt, (ast.Raise, ast.Return, ast.Break)):
            return False
    return True


@register
class RetryWithoutBackoffRule(Rule):
    name = "retry-without-backoff"
    summary = ("retry loop around a transport failure with no backoff; "
               "use call_with_retries or RetryPolicy.backoff + clock.sleep")
    rationale = ("Unpaced retries hammer failing nodes, synchronize into "
                 "retry storms, and starve SimClock-driven recovery "
                 "(breaker half-open probes never become due).")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            if not _is_retry_loop(node):
                continue
            if _has_pacing_call(node):
                continue
            for child in ast.walk(node):
                if not isinstance(child, ast.Try):
                    continue
                for handler in child.handlers:
                    caught = _caught_names(handler) & TRANSPORT_ERROR_NAMES
                    if caught and _handler_retries(handler):
                        yield self.finding(
                            ctx, node,
                            f"loop retries after {'/'.join(sorted(caught))} "
                            "with no backoff; route through "
                            "resilience.call_with_retries or sleep a "
                            "RetryPolicy.backoff delay between attempts")
                        break
                else:
                    continue
                break
