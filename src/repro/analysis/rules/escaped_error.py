"""``escaped-internal-error``: public APIs speak the error taxonomy.

:mod:`repro.common.errors` is the failure vocabulary every subsystem
shares — callers catch :class:`ReproError` subtypes, failure-injection
tests assert on them, and the resilience layer's retry/shed decisions
key off them.  A raw ``KeyError`` or ``ValueError`` leaking out of a
public API instead is an implementation detail escaping the contract:
the caller either misses it (and crashes) or starts catching builtin
exceptions (and masks real programming errors).

The rule walks the may-raise summaries of the *public API boundary* —
functions re-exported by a package ``__init__`` plus public methods of
re-exported classes — and flags every internal exception type that can
propagate out, with the witness chain from the boundary function down
to the ``raise`` site.  Internal means: an explicitly raised type that
is not a :class:`ReproError` subtype (scanned classes are checked
through their real bases, so :class:`KeyNotFoundError`, which is both
a ``KeyError`` and a ``ReproError``, passes) and not on the small
allowed list (``NotImplementedError`` for abstract methods,
``AssertionError`` for invariants).

Findings anchor at the raise site — that is where the fix lands (wrap
in the right taxonomy error) — deduplicated across the possibly many
boundary functions that reach it.
"""

from __future__ import annotations

import builtins
from typing import Iterator

from repro.analysis.core import Finding, ProjectRule, register

#: Exception types a public boundary may legitimately let escape.
ALLOWED_ESCAPES = frozenset({
    "NotImplementedError",   # abstract-method stubs
    "AssertionError",        # internal invariants; tests rely on them
    "StopIteration",         # iterator protocol
    "GeneratorExit",
    "KeyboardInterrupt",
    "SystemExit",
})


@register
class EscapedInternalErrorRule(ProjectRule):
    name = "escaped-internal-error"
    summary = ("a raw builtin exception can escape a package-exported "
               "public API instead of a ReproError from the taxonomy")
    rationale = ("Callers and failure-injection tests program against "
                 "repro.common.errors; an internal KeyError/ValueError "
                 "escaping the boundary bypasses retry/shed policy and "
                 "turns an expected failure into a crash.")

    def check_project(self, project) -> Iterator[Finding]:
        from repro.analysis.summaries import Hierarchy, iter_public_boundary
        summaries = project.summaries
        hierarchy = Hierarchy(project.graph)
        reported: set[tuple[str, int, str]] = set()
        for fn in iter_public_boundary(project):
            summary = summaries.get(fn.qualname)
            if summary is None:
                continue
            for raised in sorted(summary.raises):
                if not self._is_internal(raised, hierarchy):
                    continue
                chain = summary.raises[raised]
                site = chain[-1]
                key = (site.path, site.line, _short(raised))
                if key in reported:
                    continue
                reported.add(key)
                ctx = project.context_for(site.path)
                entry = f"{fn.rel_path}:{fn.node.lineno}"
                yield Finding(
                    rule=self.name, path=site.path, line=site.line, col=0,
                    message=(f"{_short(raised)} raised here escapes the "
                             f"public API {_entry(fn.qualname)}() "
                             f"({entry}); wrap it in the matching "
                             "repro.common.errors type at the boundary "
                             "it crosses"),
                    snippet=ctx.line_text(site.line) if ctx else "",
                    end_line=site.line, chain=chain)

    @staticmethod
    def _is_internal(raised: str, hierarchy) -> bool:
        short = _short(raised)
        if short in ALLOWED_ESCAPES:
            return False
        if hierarchy.is_subtype(raised, "ReproError"):
            return False
        if raised in hierarchy._bases:
            # a scanned class outside the taxonomy: internal iff it is
            # exception-shaped at all
            return hierarchy.is_subtype(raised, "Exception")
        builtin = getattr(builtins, short, None)
        return isinstance(builtin, type) \
            and issubclass(builtin, Exception)


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def _entry(qualname: str) -> str:
    """``repro.pkg.mod.Server.get`` -> ``Server.get`` (module-level
    functions shorten to the bare name)."""
    parts = qualname.split(".")
    if len(parts) >= 2 and parts[-2][:1].isupper():
        return ".".join(parts[-2:])
    return parts[-1]
