"""``deadline-dropped``: accepted deadlines must be honoured.

A :class:`~repro.common.resilience.Deadline` is an end-to-end budget
created at the request edge; its value comes from every hop clamping
its own timeout to what remains.  A function that *accepts* a
deadline but performs network work without consulting it silently
converts "this request has 50 ms left" into "this request has the
default timeout" — the budget stops shrinking, tail latencies stop
being bounded, and the deadline tests above that hop pass while the
hop below ignores them.

Flagged: a function with a parameter named ``deadline`` (or annotated
``Deadline``) whose body makes simulated-network calls
(``.invoke``/``.send``) or delegates to ``call_with_retries`` but
never *reads* the deadline parameter — no ``deadline.clamp(...)``, no
``deadline.check()``, no forwarding it to a callee.

Functions that merely accept the parameter for interface conformance
and do no network work are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    NETWORK_CALL_ATTRS,
    FileContext,
    Finding,
    Rule,
    register,
)


def _deadline_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    params = []
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "deadline":
            params.append(arg.arg)
        elif arg.annotation is not None and \
                "Deadline" in ast.dump(arg.annotation):
            params.append(arg.arg)
    return params


def _does_network_work(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in NETWORK_CALL_ATTRS:
            return True
        if isinstance(node.func, ast.Name) and \
                node.func.id == "call_with_retries":
            return True
    return False


def _reads_name(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                name: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == name and \
                isinstance(node.ctx, ast.Load):
            return True
        # forwarded as a keyword: fn(..., deadline=deadline) is covered
        # by the Load above; deadline=None re-binding is not a read
    return False


@register
class DeadlineDroppedRule(Rule):
    name = "deadline-dropped"
    summary = ("function accepts a Deadline but performs network calls "
               "without consulting or forwarding it")
    rationale = ("Deadline budgets only bound tail latency if every hop "
                 "clamps its timeout to the remaining budget; one hop "
                 "that drops the deadline unbounds the whole request.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _deadline_params(node)
            if not params:
                continue
            if not _does_network_work(node):
                continue
            for param in params:
                if not _reads_name(node, param):
                    yield self.finding(
                        ctx, node,
                        f"{node.name}() accepts {param!r} but never reads "
                        "it before its network calls; clamp per-hop "
                        "timeouts with deadline.clamp(...) and forward it "
                        "downstream")
