"""``swallowed-transport-error``: no silently discarded network failures.

The resilience layer's whole point is that transport failures are
*observable*: they feed failure detectors, circuit breakers, and
metrics, and they drive failover decisions (relay → bootstrap, ISR
re-election, Helix promotion).  An ``except NodeUnavailableError:
pass`` deletes that signal — the chaos tests keep passing while a
replica silently receives nothing, which is exactly the class of bug
DBLog-style consistency auditing exists to catch.

Flagged: an ``except`` handler whose body is nothing but ``pass``
(or ``...``), when either

* the caught types include a transport error from
  ``repro.common.errors`` (``NodeUnavailableError`` and subclasses,
  ``CircuitOpenError``, ``DeadlineExceededError``, …), or
* the handler is bare / catches ``Exception`` and the guarded block
  performs a simulated-network call (``.invoke(...)``/``.send(...)``).

The fix is to record the outcome — a metrics counter, a failure-
detector mark, a hint for handoff — or, where best-effort really is
the design (read repair), to say so with a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    NETWORK_CALL_ATTRS,
    TRANSPORT_ERROR_NAMES,
    FileContext,
    Finding,
    Rule,
    register,
)


def _caught_names(handler: ast.ExceptHandler) -> set[str]:
    """Bare except reports as {"<bare>"}; names are last attributes."""
    if handler.type is None:
        return {"<bare>"}
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    names: set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant) and \
                stmt.value.value is Ellipsis:
            continue
        return False
    return True


def _has_network_call(stmts: list[ast.stmt]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in NETWORK_CALL_ATTRS:
                return True
    return False


@register
class SwallowedTransportErrorRule(Rule):
    name = "swallowed-transport-error"
    summary = ("transport failure caught and discarded with a bare pass; "
               "record it (metrics/detector) or justify with a pragma")
    rationale = ("Failure detectors, breakers, and failover decisions all "
                 "run on observed transport errors; a pass-only handler "
                 "deletes the signal and hides partial delivery.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not _swallows(handler):
                    continue
                caught = _caught_names(handler)
                transport = caught & TRANSPORT_ERROR_NAMES
                if transport:
                    yield self.finding(
                        ctx, handler,
                        f"{'/'.join(sorted(transport))} swallowed with a "
                        "pass-only handler; record the failure (metrics, "
                        "failure detector, hint) so resilience machinery "
                        "sees it")
                elif (caught & {"<bare>", "Exception", "BaseException"}) \
                        and _has_network_call(node.body):
                    yield self.finding(
                        ctx, handler,
                        "broad except around a network call swallows "
                        "transport failures; catch the specific error and "
                        "record the outcome")
