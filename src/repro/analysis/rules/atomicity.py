"""Interprocedural atomicity rules over the yield-point summaries.

The cooperative simulation has exactly three ways to lose the CPU:
a simulated RPC, a ``sleep``, or a WAL ``fsync``.  Every such site is
a *yield point* — arbitrary other events run before control returns —
so any multi-step update that straddles one is a race, whether the
yield is in the function's own body or three call frames down.  The
effect-summary layer (:mod:`repro.analysis.summaries`) computes the
transitive yield-point set per function; the three rules here turn it
into convictions:

* ``atomicity-violation`` — the interprocedural generalization of
  ``stale-read-across-rpc``: a local read from mutable ``self`` state
  crosses a *transitive* yield (a call edge that blocks somewhere
  below, or a direct ``sleep``/``fsync``) and then drives a branch or
  a shared-state write, with no revalidating re-read of the attribute
  after the yield.  Direct ``net.invoke`` crossings stay with the
  intra-procedural rule; this one starts where that one's visibility
  ends.
* ``non-atomic-multi-write`` — two coupled shared-state writes
  separated by a yield with no journal/WAL record between them: the
  torn-state window the crash tests probe dynamically, as a static
  conviction.  Augmented assigns (counter bumps) and stores in
  ``except`` handlers (compensation) are not writes; a bare
  ``self.method()`` whose summary writes state *is*.
* ``yield-in-atomic-section`` — discharges the ``@atomic_section``
  decorator and ``# repro-atomic`` region markers: a marked function
  or region must contain no transitive yield point at all.

All three walk the CFG path-sensitively where it matters (a
revalidation on one branch clears only that branch) and attach the
summary layer's witness chain, so a conviction reads *read → yield
via f → g → primitive → stale use* without re-derivation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.callgraph import CallGraph, FunctionInfo, Project
from repro.analysis.core import Finding, Frame, ProjectRule, register
from repro.analysis.flow import (
    CFG,
    build_cfg,
    calls_in,
    definitions,
    uses,
)
from repro.analysis.summaries import (
    Summary,
    YieldPoint,
    _is_bare_self_call,
    _store_targets,
    self_param_name,
    self_store_path,
)

#: Dotted-path components that mark a call as a journaling/WAL record
#: (the durability act that makes a multi-write pair recoverable).
_JOURNAL = re.compile(r"journal|wal", re.IGNORECASE)

_ATOMIC_LINE = re.compile(r"#\s*repro-atomic\s*(?::\s*(begin|end))?\s*$")

_SKIP_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def _frame(fn: FunctionInfo, line: int, callee: str) -> Frame:
    return Frame(path=fn.rel_path, line=line,
                 caller=fn.qualname, callee=callee)


def _construction_only(graph: CallGraph) -> frozenset[str]:
    """Functions reachable *only* from constructors, directly or through
    other construction-only functions — recovery/rebuild helpers that run
    before the node joins the schedule, so their yield points cannot
    interleave with live traffic.  A function with no known callers is
    public surface and stays in scope; call cycles conservatively stay
    in scope too (the fixpoint below never admits them)."""
    callers: dict[str, set[str]] = {}
    for caller in graph.functions:
        for site in graph.callees(caller):
            if site.kind in ("call", "ref"):
                callers.setdefault(site.callee, set()).add(caller)
    constructors = {qual for qual, fn in graph.functions.items()
                    if fn.name in _SKIP_METHODS}
    only: set[str] = set()
    changed = True
    while changed:
        changed = False
        for qual, srcs in callers.items():
            if qual in only or qual in constructors:
                continue
            if srcs and all(s in constructors or s in only for s in srcs):
                only.add(qual)
                changed = True
    return frozenset(only)


def _methods(project: Project) -> Iterator[tuple[FunctionInfo, Summary]]:
    """Methods with their summaries, deterministic order; constructors
    and construction-only helpers excluded (single-threaded setup
    cannot race)."""
    graph = project.graph
    summaries = project.summaries
    setup_only = _construction_only(graph)
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.cls is None or fn.name in _SKIP_METHODS \
                or qualname in setup_only:
            continue
        summary = summaries.get(qualname)
        if summary is not None:
            yield fn, summary


def _mutated_attrs(graph: CallGraph, cls_qual: str) -> set[str]:
    """Top-level self attributes any method (in the MRO) stores outside
    ``__init__`` — the state that can actually change under a yield."""
    attrs: set[str] = set()
    for qual in graph.mro(cls_qual):
        info = graph.classes.get(qual)
        if info is None:
            continue
        for name, method in info.methods.items():
            if name in _SKIP_METHODS:
                continue
            self_name = self_param_name(method)
            if self_name is None:
                continue
            for node in ast.walk(method.node):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    for target in _store_targets(node):
                        path = self_store_path(target, self_name)
                        if path is not None:
                            attrs.add(path.split(".")[0])
                elif isinstance(node, ast.AugAssign):
                    path = self_store_path(node.target, self_name)
                    if path is not None:
                        attrs.add(path.split(".")[0])
    return attrs


def _self_attr_loads(node: ast.AST, self_name: str) -> set[str]:
    """Top-level attribute names loaded from ``self`` in an expression
    (receiver loads like ``self.x.get(k)`` count; ``self.m(...)`` — the
    method lookup itself — does not)."""
    call_funcs = {id(n.func) for n in ast.walk(node)
                  if isinstance(n, ast.Call)}
    out: set[str] = set()
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and id(sub) not in call_funcs
                and isinstance(sub.value, ast.Name)
                and sub.value.id == self_name):
            out.add(sub.attr)
    return out


def _self_load_paths(node: ast.AST, self_name: str) -> set[str]:
    """Full dotted self paths loaded in an expression, excluding loads
    that only exist as the base of a store target."""
    call_funcs = {id(n.func) for n in ast.walk(node)
                  if isinstance(n, ast.Call)}
    out: set[str] = set()
    for sub in ast.walk(node):
        if not (isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and id(sub) not in call_funcs):
            continue
        parts = [sub.attr]
        base = sub.value
        while isinstance(base, ast.Attribute):
            parts.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name) and base.id == self_name:
            out.add(".".join(reversed(parts)))
    return out


def _reval_loads(element: ast.AST, self_name: str) -> set[str]:
    """Attribute loads that count as a revalidating re-read.  For store
    statements only the right-hand side counts — the Load-ctx base of a
    subscript target (``self.x`` inside ``self.x[k] = v``) is part of
    the write, not a re-read.  An augmented assign additionally re-reads
    its own target (``self.x -= n`` is a read-modify-write)."""
    if isinstance(element, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = element.value
        out = _self_attr_loads(value, self_name) if value is not None \
            else set()
        if isinstance(element, ast.AugAssign):
            path = self_store_path(element.target, self_name)
            if path is not None:
                out = out | {path.split(".")[0]}
        return out
    return _self_attr_loads(element, self_name)


def _reval_load_paths(element: ast.AST, self_name: str) -> set[str]:
    """Dotted-path variant of :func:`_reval_loads`."""
    if isinstance(element, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        value = element.value
        out = _self_load_paths(value, self_name) if value is not None \
            else set()
        if isinstance(element, ast.AugAssign):
            path = self_store_path(element.target, self_name)
            if path is not None:
                out = out | {path}
        return out
    return _self_load_paths(element, self_name)


def _except_lines(fn_node: ast.AST) -> set[int]:
    """Line numbers of statements inside ``except`` handler bodies."""
    lines: set[int] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.ExceptHandler):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if hasattr(sub, "lineno"):
                        lines.add(sub.lineno)
    return lines


def _journal_call(call: ast.Call) -> bool:
    node: ast.AST = call.func
    while isinstance(node, ast.Attribute):
        if _JOURNAL.search(node.attr):
            return True
        node = node.value
    return isinstance(node, ast.Name) and bool(_JOURNAL.search(node.id))


def _durability_record(element: ast.AST,
                       yields: dict[int, YieldPoint]) -> bool:
    """True when the element makes a durability record that covers the
    preceding write: a call whose dotted path names a journal/WAL, a
    direct ``.fsync()``, or a yield point whose witness chain passes a
    journal-named frame (journaling through a helper)."""
    for call in calls_in(element):
        if _journal_call(call):
            return True
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "fsync":
            return True
        point = yields.get(id(call))
        if point is not None and (
                point.direct == "fsync"
                or any(_JOURNAL.search(frame.callee)
                       for frame in point.chain)):
            return True
    return False


def _finding_for(rule: ProjectRule, project: Project, fn: FunctionInfo,
                 line: int, message: str,
                 chain: tuple[Frame, ...]) -> Finding:
    ctx = project.context_for(fn.rel_path)
    return Finding(
        rule=rule.name, path=fn.rel_path, line=line, col=0,
        message=message,
        snippet=ctx.line_text(line) if ctx else "",
        end_line=line, chain=chain)


# -- atomicity-violation -----------------------------------------------------


@register
class AtomicityViolationRule(ProjectRule):
    name = "atomicity-violation"
    summary = ("shared self-state read before a transitive yield point "
               "drives a branch or write after it, without revalidation")
    rationale = ("Any callee that blocks — an RPC, a sleep, a WAL fsync, "
                 "however many frames down — is a yield point at which "
                 "peers mutate shared state; acting on a pre-yield read "
                 "afterwards is check-then-act across the scheduler. "
                 "Re-read the attribute after the yield returns.")

    def check_project(self, project: Project) -> Iterator[Finding]:
        for fn, summary in _methods(project):
            yields = {y.node_id: y for y in summary.yield_points
                      if y.direct != "rpc"}
            if not yields:
                continue
            self_name = self_param_name(fn)
            if self_name is None:
                continue
            mutable = _mutated_attrs(project.graph, fn.cls.qualname)
            if not mutable:
                continue
            cfg = build_cfg(fn.node)
            seen_lines: set[int] = set()
            for use in _stale_uses(cfg, yields, mutable, self_name):
                var, attr, point, element = use
                seen_lines.add(element.lineno)
                primitive = point.chain[-1]
                yield _finding_for(
                    self, project, fn, element.lineno,
                    f"'{var}' was read from self.{attr} before the yield "
                    f"point on line {point.line} "
                    f"({_short(point.callee)} blocks on "
                    f"{'/'.join(point.kinds)} at "
                    f"{primitive.path}:{primitive.line}) but is "
                    f"{'written back' if _is_write(element) else 'branched on'}"
                    f" after it without revalidation; re-read "
                    f"self.{attr} once control returns — any event may "
                    f"have changed it during the yield",
                    (_frame(fn, element.lineno,
                            f"stale use of '{var}'"),) + point.chain)
            for path, point, element in _toctou_stores(
                    cfg, yields, mutable, self_name):
                if element.lineno in seen_lines:
                    continue        # already convicted via a stale local
                primitive = point.chain[-1]
                yield _finding_for(
                    self, project, fn, element.lineno,
                    f"self.{path} is read before the yield point on line "
                    f"{point.line} ({_short(point.callee)} blocks on "
                    f"{'/'.join(point.kinds)} at "
                    f"{primitive.path}:{primitive.line}) and written back "
                    f"on line {element.lineno} without re-reading it; "
                    f"any event may have advanced self.{path} during the "
                    f"yield — re-check it before the store",
                    (_frame(fn, element.lineno,
                            f"unrevalidated store to self.{path}"),)
                    + point.chain)


def _is_write(element: ast.AST) -> bool:
    return isinstance(element, (ast.Assign, ast.AnnAssign, ast.AugAssign))


def _stale_uses(cfg: CFG, yields: dict[int, YieldPoint], mutable: set[str],
                self_name: str
                ) -> Iterator[tuple[str, str, YieldPoint, ast.AST]]:
    elements = list(cfg.elements())
    for block, index, element in elements:
        for var, attr in _tracked_defs(element, mutable, self_name, yields):
            yield from _walk(cfg, block, index + 1, var, attr,
                             yields, self_name)


def _tracked_defs(element: ast.AST, mutable: set[str], self_name: str,
                  yields: dict[int, YieldPoint]
                  ) -> list[tuple[str, str]]:
    """``(local, attr)`` pairs bound from mutable shared state.  An
    element that itself yields is a post-yield (re)read, not a stale
    source."""
    if not isinstance(element, (ast.Assign, ast.AnnAssign)):
        return []
    value = element.value
    if value is None:
        return []
    if any(id(call) in yields for call in calls_in(element)):
        return []
    attrs = _self_attr_loads(value, self_name) & mutable
    if not attrs:
        return []
    attr = sorted(attrs)[0]
    return [(name, attr) for name in definitions(element)]


def _walk(cfg: CFG, block, index: int, var: str, attr: str,
          yields: dict[int, YieldPoint], self_name: str
          ) -> Iterator[tuple[str, str, YieldPoint, ast.AST]]:
    """DFS from just-after a tracked def.  ``crossed`` carries the
    first yield point on the path; a re-read of ``self.<attr>`` after
    the yield revalidates and kills the path, as does any rebinding of
    the local."""
    reported: set[int] = set()
    stack = [(block, index, None)]
    visited: set[tuple[int, bool]] = set()
    while stack:
        blk, start, crossed = stack.pop()
        killed = False
        for i in range(start, len(blk.elements)):
            element = blk.elements[i]
            if crossed is not None:
                if attr in _reval_loads(element, self_name):
                    killed = True       # revalidated: tracking ends
                    break
                stale = (isinstance(element, ast.expr)
                         or (_is_write(element)
                             and _writes_self_state(element, self_name)))
                if stale and var in uses(element) \
                        and id(element) not in reported:
                    reported.add(id(element))
                    yield (var, attr, crossed, element)
            if var in definitions(element):
                killed = True
                break
            if crossed is None:
                for call in calls_in(element):
                    point = yields.get(id(call))
                    if point is not None:
                        crossed = point
                        break
        if killed:
            continue
        for edge in blk.out_edges:
            if edge.dst is cfg.exit or edge.dst is cfg.raise_exit:
                continue
            key = (edge.dst.bid, crossed is not None)
            if key not in visited:
                visited.add(key)
                stack.append((edge.dst, 0, crossed))


def _writes_self_state(element: ast.AST, self_name: str) -> bool:
    if isinstance(element, ast.AugAssign):
        return self_store_path(element.target, self_name) is not None
    return any(self_store_path(t, self_name) is not None
               for t in _store_targets(element))


def _toctou_stores(cfg: CFG, yields: dict[int, YieldPoint],
                   mutable: set[str], self_name: str
                   ) -> Iterator[tuple[str, YieldPoint, ast.AST]]:
    """Check-then-act without a local: a dotted self path is loaded,
    control crosses a yield, and the same path is stored with no
    re-read in between.  A store whose right-hand side re-reads the
    path revalidates itself and clears."""
    reported: set[tuple[str, int]] = set()
    for block, index, element in cfg.elements():
        if any(id(call) in yields for call in calls_in(element)):
            continue        # the read rides the yield itself
        paths = {p for p in _reval_load_paths(element, self_name)
                 if p.split(".")[0] in mutable}
        for path in sorted(paths):
            yield from _walk_path(cfg, block, index + 1, path,
                                  yields, mutable, self_name, reported)


def _stores_to_path(element: ast.AST, path: str, self_name: str) -> bool:
    if isinstance(element, ast.AugAssign):
        return self_store_path(element.target, self_name) == path
    if isinstance(element, (ast.Assign, ast.AnnAssign)):
        return any(self_store_path(t, self_name) == path
                   for t in _store_targets(element))
    return False


def _walk_path(cfg: CFG, block, index: int, path: str,
               yields: dict[int, YieldPoint], mutable: set[str],
               self_name: str, reported: set[tuple[str, int]]
               ) -> Iterator[tuple[str, YieldPoint, ast.AST]]:
    stack = [(block, index, None)]
    visited: set[tuple[int, bool]] = set()
    while stack:
        blk, start, crossed = stack.pop()
        killed = False
        for i in range(start, len(blk.elements)):
            element = blk.elements[i]
            if crossed is not None:
                if path in _reval_load_paths(element, self_name):
                    killed = True       # revalidated
                    break
                if _stores_to_path(element, path, self_name):
                    fresh = {p.split(".")[0]
                             for p in _reval_load_paths(element, self_name)}
                    if isinstance(element, (ast.Assign, ast.AnnAssign)) \
                            and not fresh & mutable:
                        # a store recomputed from post-yield mutable
                        # state is fresh, not a stale write-back
                        key = (path, element.lineno)
                        if key not in reported:
                            reported.add(key)
                            yield path, crossed, element
                    killed = True       # aug-assign re-reads; plain
                    break               # store supersedes the read
            else:
                if _stores_to_path(element, path, self_name):
                    killed = True       # superseded before any yield
                    break
                for call in calls_in(element):
                    point = yields.get(id(call))
                    if point is not None:
                        crossed = point
                        break
        if killed:
            continue
        for edge in blk.out_edges:
            if edge.dst is cfg.exit or edge.dst is cfg.raise_exit:
                continue
            key2 = (edge.dst.bid, crossed is not None)
            if key2 not in visited:
                visited.add(key2)
                stack.append((edge.dst, 0, crossed))


# -- non-atomic-multi-write --------------------------------------------------


@register
class NonAtomicMultiWriteRule(ProjectRule):
    name = "non-atomic-multi-write"
    summary = ("two coupled shared-state writes separated by a yield "
               "point with no journal/WAL record between them")
    rationale = ("A crash or interleaving during the yield observes the "
                 "first write without the second — exactly the torn "
                 "state the crash suites probe; journal the pair before "
                 "yielding, or reorder so both writes share one "
                 "atomic section.")

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.graph
        summaries = project.summaries
        for fn, summary in _methods(project):
            if not summary.yield_points:
                continue
            self_name = self_param_name(fn)
            if self_name is None:
                continue
            yields = {y.node_id: y for y in summary.yield_points}
            call_nodes = {id(node): node for node in ast.walk(fn.node)
                          if isinstance(node, ast.Call)}
            writer_calls: dict[int, tuple[str, tuple[Frame, ...]]] = {}
            for site in graph.callees(fn.qualname):
                if site.kind != "call":
                    continue
                callee = summaries.get(site.callee)
                if callee is None or not callee.writes_self:
                    continue
                # only bare self.method() calls write *this* object's
                # state; self.metrics.counter(...) mutates the registry,
                # not the instance under scrutiny
                if not _is_bare_self_call(call_nodes.get(site.node_id),
                                          self_name):
                    continue
                path = sorted(callee.writes_self)[0]
                writer_calls[site.node_id] = (
                    path, (_frame(fn, site.line, site.callee),)
                    + callee.writes_self[path])
            in_except = _except_lines(fn.node)
            cfg = build_cfg(fn.node)
            for pair in _torn_pairs(cfg, self_name, yields,
                                    writer_calls, in_except):
                first, second, point = pair
                yield _finding_for(
                    self, project, fn, second[1],
                    f"self.{first[0]} is written on line {first[1]} and "
                    f"self.{second[0]} on line {second[1]}, with a yield "
                    f"point between (line {point.line}, "
                    f"{_short(point.callee)} blocks on "
                    f"{'/'.join(point.kinds)}) and no journal/WAL record "
                    f"in between; a crash or interleave during the yield "
                    f"observes the first write without the second — "
                    f"journal the pair before yielding or keep both "
                    f"writes on one side of it",
                    (Frame(path=fn.rel_path, line=first[1],
                           caller=fn.qualname,
                           callee=f"write self.{first[0]}"),)
                    + point.chain
                    + (Frame(path=fn.rel_path, line=second[1],
                             caller=fn.qualname,
                             callee=f"write self.{second[0]}"),))


def _element_writes(element: ast.AST, self_name: str,
                    writer_calls: dict[int, tuple[str, tuple[Frame, ...]]],
                    in_except: set[int]) -> list[tuple[str, int]]:
    """Shared-state writes an element performs: direct non-augmented
    stores plus bare self-calls whose summary writes state."""
    if getattr(element, "lineno", 0) in in_except:
        return []
    out: list[tuple[str, int]] = []
    if isinstance(element, (ast.Assign, ast.AnnAssign)):
        for target in _store_targets(element):
            path = self_store_path(target, self_name)
            if path is not None:
                out.append((path, element.lineno))
    for call in calls_in(element):
        if id(call) in writer_calls:
            out.append((writer_calls[id(call)][0], call.lineno))
    return out


def _torn_pairs(cfg: CFG, self_name: str,
                yields: dict[int, YieldPoint],
                writer_calls: dict[int, tuple[str, tuple[Frame, ...]]],
                in_except: set[int]
                ) -> Iterator[tuple[tuple[str, int], tuple[str, int],
                                    YieldPoint]]:
    """DFS per first-write element: convict when the *next* write on a
    path sits across a yield with no journal call in between."""
    reported: set[tuple[int, int]] = set()
    for block, index, element in cfg.elements():
        writes = _element_writes(element, self_name, writer_calls,
                                 in_except)
        if not writes:
            continue
        first = writes[-1]
        stack = [(block, index + 1, None)]
        visited: set[tuple[int, bool]] = set()
        while stack:
            blk, start, crossed = stack.pop()
            killed = False
            for i in range(start, len(blk.elements)):
                current = blk.elements[i]
                # classify W → J → Y: a writer that also journals is
                # still a write; a journaling yield is a record, not
                # an exposure window
                later = _element_writes(current, self_name, writer_calls,
                                        in_except)
                if later:
                    second = later[0]
                    key = (first[1], second[1])
                    if crossed is not None and second[0] != first[0] \
                            and key not in reported:
                        reported.add(key)
                        yield first, second, crossed
                    killed = True       # adjacency: restart at next write
                    break
                if _durability_record(current, yields):
                    killed = True       # journaled: pair is recoverable
                    break
                if crossed is None:
                    for call in calls_in(current):
                        point = yields.get(id(call))
                        if point is not None \
                                and id(call) not in writer_calls:
                            crossed = point
                            break
            if killed:
                continue
            for edge in blk.out_edges:
                if edge.dst is cfg.exit or edge.dst is cfg.raise_exit:
                    continue
                key2 = (edge.dst.bid, crossed is not None)
                if key2 not in visited:
                    visited.add(key2)
                    stack.append((edge.dst, 0, crossed))


# -- yield-in-atomic-section -------------------------------------------------


@register
class YieldInAtomicSectionRule(ProjectRule):
    name = "yield-in-atomic-section"
    summary = ("code declared atomic (@atomic_section or # repro-atomic) "
               "contains a transitive yield point")
    rationale = ("An atomic-section declaration is a proof obligation: "
                 "between yield points the cooperative scheduler cannot "
                 "interleave, so marked code relies on having none. A "
                 "blocking call anywhere below the marked statements "
                 "silently voids the invariant.")

    def check_project(self, project: Project) -> Iterator[Finding]:
        regions = {rel_path: _atomic_regions(ctx.source)
                   for rel_path, ctx in sorted(project.contexts.items())}
        setup_only = _construction_only(project.graph)
        for qualname in sorted(project.summaries):
            summary = project.summaries[qualname]
            if not summary.yield_points:
                continue
            fn = project.graph.functions.get(qualname)
            if fn is None or qualname in setup_only:
                continue
            if _declared_atomic(fn.node):
                point = summary.yield_points[0]
                primitive = point.chain[-1]
                yield _finding_for(
                    self, project, fn, point.line,
                    f"{_short(qualname)}() is declared @atomic_section "
                    f"but yields here: {_short(point.callee)} blocks on "
                    f"{'/'.join(point.kinds)} at "
                    f"{primitive.path}:{primitive.line}; hoist the "
                    f"blocking call out of the atomic section or drop "
                    f"the declaration",
                    point.chain)
                continue
            spans = regions.get(fn.rel_path, [])
            if not spans:
                continue
            for point in summary.yield_points:
                if any(lo <= point.line <= hi for lo, hi in spans):
                    primitive = point.chain[-1]
                    yield _finding_for(
                        self, project, fn, point.line,
                        f"statement inside a # repro-atomic region "
                        f"yields: {_short(point.callee)} blocks on "
                        f"{'/'.join(point.kinds)} at "
                        f"{primitive.path}:{primitive.line}; an atomic "
                        f"region must not reach the scheduler",
                        point.chain)


def _declared_atomic(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", []):
        target = decorator.func \
            if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else ""
        if name == "atomic_section":
            return True
    return False


def _atomic_regions(source: str) -> list[tuple[int, int]]:
    """Inclusive line spans claimed atomic by ``# repro-atomic``
    markers.  A bare marker claims its own line; ``begin``/``end``
    bracket a region (an unclosed ``begin`` extends to end of file)."""
    spans: list[tuple[int, int]] = []
    open_begin: int | None = None
    total = 0
    for lineno, text in enumerate(source.splitlines(), start=1):
        total = lineno
        match = _ATOMIC_LINE.search(text)
        if not match:
            continue
        kind = match.group(1)
        if kind == "begin":
            if open_begin is None:
                open_begin = lineno
        elif kind == "end":
            if open_begin is not None:
                spans.append((open_begin, lineno))
                open_begin = None
        else:
            spans.append((lineno, lineno))
    if open_begin is not None:
        spans.append((open_begin, total))
    return spans
