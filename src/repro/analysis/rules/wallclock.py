"""``wall-clock``: ban direct wall-clock access outside the clock module.

Every time-dependent behaviour in the reproduction — failure-detector
windows, breaker reset timeouts, retention expiry, consumer lag — must
read time from an injected :class:`~repro.common.clock.Clock` so a
test's :class:`SimClock` controls it.  One stray ``time.time()`` makes
a chaos schedule depend on the host machine; one ``time.sleep()``
turns a deterministic discrete-event test into a real-time one.

``common/clock.py`` is the single allowed exception: it is the
boundary where :class:`WallClock` touches the real world.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.sleep",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@register
class WallClockRule(Rule):
    name = "wall-clock"
    summary = ("direct wall-clock call; take an injected Clock "
               "(repro.common.clock) instead")
    rationale = ("SimClock-driven tests are deterministic only while no "
                 "component reads real time; common/clock.py is the sole "
                 "sanctioned boundary.")
    exempt_suffixes = ("common/clock.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.imports.resolve_call(node.func)
            if target in BANNED_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{target}() reads the wall clock; inject a "
                    "repro.common.clock.Clock and use clock.now()/"
                    "clock.sleep() so SimClock controls time in tests")
