"""``stale-read-across-rpc``: don't branch on pre-RPC reads of shared
state.

The check-then-act races that plague distributed code have one local
shape: read a value out of shared state, make a blocking network call
(during which any peer may change that state), then *decide* based on
the value read before the call.  The classic Espresso/Databus instance
is a master checking its partition SCN, invoking a relay, then
advancing based on the stale SCN.

Detection is flow-based, on the CFG (:mod:`repro.analysis.flow`):

1. a local is **defined from shared state** — its right-hand side
   reads a ``self.<attr>`` (attribute load, subscript, ``.get(...)``),
2. a **network call** (``invoke``/``send`` on a ``net``-named
   receiver) lies on a path between that definition and
3. a **branch test** that uses the local, with no redefinition in
   between.

Redefinition anywhere on the path kills it — re-reading after the RPC
is exactly the fix.  Calls *returning* state (``v = self.net.invoke``)
do not open tracking: the element both crosses the network and
redefines, which is the re-read pattern, not the bug.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    NETWORK_CALL_ATTRS,
    FileContext,
    Finding,
    Rule,
    register,
)
from repro.analysis.flow import (
    CFG,
    calls_in,
    definitions,
    iter_function_cfgs,
    receiver_name,
    uses,
)

_NET_RECEIVER = re.compile(r"(^|_)net(work)?(_|$)", re.IGNORECASE)


def _network_call(element: ast.AST) -> ast.Call | None:
    """The first simulated-network call in an element, if any."""
    for call in calls_in(element):
        if not isinstance(call.func, ast.Attribute):
            continue
        if call.func.attr not in NETWORK_CALL_ATTRS:
            continue
        recv = receiver_name(call.func)
        if recv and _NET_RECEIVER.search(recv):
            return call
    return None


def _shared_state_defs(element: ast.AST) -> list[tuple[str, str]]:
    """``(local, self_attr)`` pairs this element binds from shared
    state: a simple-name assignment whose RHS loads ``self.<attr>``
    other than as the method of a call."""
    if not isinstance(element, (ast.Assign, ast.AnnAssign)):
        return []
    if _network_call(element) is not None:
        return []       # RPC-result binds are re-reads, not stale reads
    value = element.value
    if value is None:
        return []
    call_funcs = {id(n.func) for n in ast.walk(value)
                  if isinstance(n, ast.Call)}
    attr = None
    for node in ast.walk(value):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in call_funcs
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            attr = node.attr
            break
    if attr is None:
        return []
    return [(name, attr) for name in definitions(element)]


class _StaleUse:
    __slots__ = ("test", "var", "attr", "call_line")

    def __init__(self, test: ast.AST, var: str, attr: str, call_line: int):
        self.test = test
        self.var = var
        self.attr = attr
        self.call_line = call_line


def _find_stale_uses(cfg: CFG) -> Iterator[_StaleUse]:
    elements = list(cfg.elements())
    for block, index, element in elements:
        for var, attr in _shared_state_defs(element):
            yield from _walk(cfg, block, index + 1, var, attr)


def _walk(cfg: CFG, block, index: int, var: str, attr: str
          ) -> Iterator[_StaleUse]:
    """DFS from just-after a shared-state def; ``crossed`` carries the
    line of the first network call on the path, or 0 before one."""
    reported: set[int] = set()
    stack = [(block, index, 0)]
    visited: set[tuple[int, bool]] = set()
    while stack:
        blk, start, crossed = stack.pop()
        killed = False
        for i in range(start, len(blk.elements)):
            element = blk.elements[i]
            if crossed and isinstance(element, ast.expr) \
                    and var in uses(element):
                if id(element) not in reported:
                    reported.add(id(element))
                    yield _StaleUse(element, var, attr, crossed)
            if var in definitions(element):
                killed = True
                break
            if not crossed:
                call = _network_call(element)
                if call is not None:
                    crossed = call.lineno
        if killed:
            continue
        for edge in blk.out_edges:
            if edge.dst is cfg.exit or edge.dst is cfg.raise_exit:
                continue
            key = (edge.dst.bid, bool(crossed))
            if key not in visited:
                visited.add(key)
                stack.append((edge.dst, 0, crossed))


@register
class StaleReadAcrossRpcRule(Rule):
    name = "stale-read-across-rpc"
    summary = ("a value read from shared state before a network call "
               "drives a branch after it, without a re-read")
    rationale = ("A blocking RPC is a linearization point: any peer may "
                 "change shared state while it is in flight, so deciding "
                 "on a pre-call read is check-then-act across the "
                 "network; re-read after the call returns.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cfg in iter_function_cfgs(ctx.tree):
            for use in _find_stale_uses(cfg):
                yield self.finding(
                    ctx, use.test,
                    f"'{use.var}' was read from self.{use.attr} before "
                    f"the network call on line {use.call_line} but "
                    f"drives this branch after it; re-read the value "
                    f"once the call returns — a peer may have changed "
                    f"it in flight")
