"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Exit status is the CI contract: 0 when every finding is baselined or
suppressed, 1 when new findings (or parse errors) exist, 2 for usage
errors.  Typical invocations::

    python -m repro.analysis src/repro            # human report
    python -m repro.analysis src/repro --json     # machine report
    repro-lint src/repro --baseline               # gate against lint-baseline.json
    repro-lint src/repro --write-baseline         # grandfather current findings
    repro-lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import Analyzer, all_rules, rule_names
from repro.analysis.reporters import render_json, render_rule_list, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & resilience lint for the "
                    "LinkedIn-paper reproduction")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to scan "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    parser.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE_NAME,
                        default=None, metavar="PATH",
                        help="grandfather findings recorded in PATH "
                             f"(default: {DEFAULT_BASELINE_NAME})")
    parser.add_argument("--write-baseline", nargs="?",
                        const=DEFAULT_BASELINE_NAME, default=None,
                        metavar="PATH",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="skip a rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="directory report paths are relative to "
                             "(default: current directory)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    known = set(rule_names())
    for name in args.disable:
        if name not in known:
            print(f"repro-lint: unknown rule {name!r} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
    rules = [rule for rule in all_rules() if rule.name not in args.disable]

    if args.list_rules:
        print(render_rule_list(rules))
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    analyzer = Analyzer(rules=rules, root=args.root)
    report = analyzer.run(args.paths)

    if args.write_baseline is not None:
        Baseline.from_findings(report.findings).save(args.write_baseline)
        print(f"repro-lint: wrote {len(report.findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    baseline = Baseline()
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            baseline = Baseline.load(baseline_path)
        elif args.baseline != DEFAULT_BASELINE_NAME:
            print(f"repro-lint: baseline {args.baseline} not found",
                  file=sys.stderr)
            return 2
    new, grandfathered = baseline.split(report.findings)

    if args.json:
        print(render_json(report, new, grandfathered, analyzer.metrics))
    else:
        print(render_text(report, new, grandfathered, rules))
    return 1 if (new or report.parse_errors) else 0
