"""Command-line front end: ``python -m repro.analysis`` / ``repro-lint``.

Exit status is the CI contract: 0 when every finding is baselined or
suppressed, 1 when new findings (or parse errors) exist, 2 for usage
errors.  Typical invocations::

    python -m repro.analysis src/repro            # human report
    python -m repro.analysis src/repro --json     # machine report
    python -m repro.analysis src/repro --format=github  # CI annotations
    python -m repro.analysis src/repro --format=sarif   # SARIF 2.1.0 log
    python -m repro.analysis src/repro --jobs 4   # parallel per-file scan
    python -m repro.analysis src/repro --graph    # call graph as DOT
    python -m repro.analysis --rule layering-contract --stats
    repro-lint src/repro --baseline               # gate against lint-baseline.json
    repro-lint src/repro --write-baseline         # grandfather current findings
    repro-lint src/repro --update-baseline        # shrink allowances, add nothing
    repro-lint --list-rules

``--write-baseline`` records the current findings wholesale (adoption
time); ``--update-baseline`` is the ratchet for everyone after — it
only ever *shrinks* per-fingerprint allowances toward the current
count and drops fixed entries, so the debt curve is monotone down and
a regression can never be baselined by accident.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.cache import (
    DEFAULT_CACHE_DIR,
    LintCache,
    file_manifest,
    run_digest,
)
from repro.analysis.core import Analyzer, all_rules, rule_names
from repro.analysis.reporters import (
    render_github,
    render_json,
    render_rule_list,
    render_sarif,
    render_stats,
    render_text,
    stats_payload,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & resilience lint for the "
                    "LinkedIn-paper reproduction")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to scan "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report "
                             "(alias for --format=json)")
    parser.add_argument("--format",
                        choices=["text", "json", "github", "sarif"],
                        default=None,
                        help="report format; 'github' emits Actions "
                             "::error annotations for new findings, "
                             "'sarif' a SARIF 2.1.0 log with call "
                             "chains as relatedLocations")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run per-file rules across N worker "
                             "processes (default: 1)")
    parser.add_argument("--graph", nargs="?", const="dot", default=None,
                        choices=["dot", "json"], metavar="FORMAT",
                        help="dump the repo-wide call graph (dot or "
                             "json) instead of linting")
    parser.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE_NAME,
                        default=None, metavar="PATH",
                        help="grandfather findings recorded in PATH "
                             f"(default: {DEFAULT_BASELINE_NAME})")
    parser.add_argument("--write-baseline", nargs="?",
                        const=DEFAULT_BASELINE_NAME, default=None,
                        metavar="PATH",
                        help="record current findings as the new baseline "
                             "and exit 0")
    parser.add_argument("--update-baseline", nargs="?",
                        const=DEFAULT_BASELINE_NAME, default=None,
                        metavar="PATH",
                        help="shrink baseline allowances to the current "
                             "counts (drops fixed findings, never adds "
                             "new ones) and gate against the result")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="skip a rule (repeatable)")
    parser.add_argument("--rule", action="append", default=[],
                        metavar="RULE",
                        help="run only this rule (repeatable)")
    parser.add_argument("--stats", action="store_true",
                        help="report per-rule timing and finding counts")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and don't write the "
                             f"{DEFAULT_CACHE_DIR}/ findings cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="directory report paths are relative to "
                             "(default: current directory)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    known = set(rule_names())
    for name in [*args.disable, *args.rule]:
        if name not in known:
            print(f"repro-lint: unknown rule {name!r} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
    if args.write_baseline is not None and args.update_baseline is not None:
        print("repro-lint: --write-baseline and --update-baseline are "
              "mutually exclusive", file=sys.stderr)
        return 2
    rules = [rule for rule in all_rules() if rule.name not in args.disable]
    if args.rule:
        rules = [rule for rule in rules if rule.name in args.rule]

    if args.list_rules:
        print(render_rule_list(rules))
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    if args.json and args.format not in (None, "json"):
        print("repro-lint: --json conflicts with "
              f"--format={args.format}", file=sys.stderr)
        return 2
    output = args.format or ("json" if args.json else "text")

    analyzer = Analyzer(rules=rules, root=args.root, jobs=args.jobs)

    if args.graph is not None:
        print(_dump_graph(analyzer, args.paths, args.graph))
        return 0

    # replay the previous run when no scanned file changed; --stats
    # bypasses the cache because replays have no timings to report
    report = None
    cache = digest = None
    if not args.no_cache and not args.stats:
        cache = LintCache(Path(args.root or ".") / DEFAULT_CACHE_DIR)
        digest = run_digest(file_manifest(analyzer, args.paths),
                            [rule.name for rule in rules])
        report = cache.load(digest)
    if report is None:
        report = analyzer.run(args.paths)
        if cache is not None:
            cache.store(digest, report)

    if args.write_baseline is not None:
        Baseline.from_findings(report.findings).save(args.write_baseline)
        print(f"repro-lint: wrote {len(report.findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    baseline = Baseline()
    baseline_source = args.update_baseline or args.baseline
    if baseline_source is not None:
        baseline_path = Path(baseline_source)
        if baseline_path.exists():
            baseline = Baseline.load(baseline_path)
        elif baseline_source != DEFAULT_BASELINE_NAME:
            print(f"repro-lint: baseline {baseline_source} not found",
                  file=sys.stderr)
            return 2

    if args.update_baseline is not None:
        # the ratchet: shrink each allowance toward the current count,
        # drop entries that no longer occur, never add a new one
        current = Counter(f.fingerprint() for f in report.findings)
        shrunk = Baseline()
        for fp, allowed in baseline.allowances.items():
            kept = min(allowed, current.get(fp, 0))
            if kept > 0:
                shrunk.allowances[fp] = kept
                shrunk.locators[fp] = baseline.locators.get(fp, "")
        dropped = sum(baseline.allowances.values()) \
            - sum(shrunk.allowances.values())
        shrunk.save(args.update_baseline)
        print(f"repro-lint: baseline {args.update_baseline} ratcheted "
              f"down by {dropped} finding(s) to "
              f"{sum(shrunk.allowances.values())}")
        baseline = shrunk

    new, grandfathered = baseline.split(report.findings)

    stats = None
    if args.stats:
        stats = stats_payload(analyzer.rule_seconds, analyzer.rule_findings)
    if output == "json":
        print(render_json(report, new, grandfathered, analyzer.metrics,
                          stats=stats))
    elif output == "github":
        annotations = render_github(new, report.parse_errors)
        if annotations:
            print(annotations)
    elif output == "sarif":
        print(render_sarif(report, new, grandfathered, rules))
    else:
        print(render_text(report, new, grandfathered, rules))
        if args.stats:
            print(render_stats(analyzer.rule_seconds,
                               analyzer.rule_findings,
                               report.files_scanned))
    return 1 if (new or report.parse_errors) else 0


def _dump_graph(analyzer: Analyzer, paths: list[str], fmt: str) -> str:
    """Parse the given paths and render their call graph."""
    from repro.analysis.callgraph import Project
    from repro.analysis.core import FileContext
    contexts = []
    for path in analyzer.iter_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            contexts.append(FileContext.parse(
                source, analyzer._rel(path), path=path))
        except SyntaxError:
            continue
    graph = Project(contexts).graph
    return graph.to_dot() if fmt == "dot" else graph.to_json()
