"""Control-flow graphs and intraprocedural dataflow for repro-lint.

The per-line rules of PR 2 see one statement at a time; the protocol
rules (WAL/ack ordering, breaker outcome recording, stale reads across
an RPC) are *path* properties: an ``append`` is fine on the branch that
fsyncs and a bug on the branch that returns.  This module gives rules
the machinery to ask path questions:

* :func:`build_cfg` turns one ``FunctionDef`` into a :class:`CFG` of
  :class:`BasicBlock`\\ s.  Branch tests (``if``/``while`` conditions)
  are their own *elements* inside a block, and the outgoing edges are
  labelled ``true``/``false`` with the test node, so an analysis can be
  branch-sensitive for simple conditions;
* every block records the handler entries an exception raised inside
  it may jump to (:attr:`BasicBlock.exc_targets`), approximating "any
  statement in a ``try`` may raise to its handlers"; uncaught raises
  flow to a dedicated :attr:`CFG.raise_exit` block, kept separate from
  :attr:`CFG.exit` because exiting on an exception never *acks*
  anything — protocol obligations are excused there;
* :func:`definitions` / :func:`uses` extract the names a statement
  binds and reads, and :meth:`CFG.reaching_definitions` runs the
  classic forward may-analysis over them, yielding def-use chains.

Precision notes, honest edition: the CFG is statement-granular (an
exception edge leaves with the state holding at block *entry*, which
path searches over-approximate by also branching mid-block);
``while True`` gets no false edge (otherwise every infinite dispatch
loop would leak a phantom exit path); ``finally`` bodies are built
once on the merged normal+exceptional path rather than duplicated per
continuation.  All approximations widen the path set — rules built on
"does a bad path exist" may report a path the runtime cannot take, and
the pragma mechanism is the escape hatch — but they never hide one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: AST node types treated as a function scope of their own.
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Loop constructs whose headers re-test / re-bind on every iteration.
LOOP_NODES = (ast.While, ast.For, ast.AsyncFor)


@dataclass
class Edge:
    """One control transfer.  ``kind`` is ``normal``, ``true``/``false``
    (branch edges, ``test`` holds the condition node), or ``exc``
    (exception propagation into a handler or out of the function)."""

    dst: "BasicBlock"
    kind: str = "normal"
    test: ast.expr | None = None


class BasicBlock:
    """A straight-line run of elements with labelled out-edges.

    ``elements`` holds AST nodes in execution order: plain statements,
    plus pseudo-elements for branch tests (the bare ``ast.expr`` of an
    ``if``/``while``) and loop headers (the ``ast.For`` node itself,
    standing for "bind the next item").
    """

    __slots__ = ("bid", "elements", "out_edges", "in_edges", "exc_targets")

    def __init__(self, bid: int):
        self.bid = bid
        self.elements: list[ast.AST] = []
        self.out_edges: list[Edge] = []
        self.in_edges: list[Edge] = []
        self.exc_targets: list["BasicBlock"] = []

    def successors(self) -> Iterator["BasicBlock"]:
        for edge in self.out_edges:
            yield edge.dst

    def __repr__(self) -> str:  # debugging aid, not part of the API
        kinds = [f"{e.kind}->{e.dst.bid}" for e in self.out_edges]
        return f"<block {self.bid} [{len(self.elements)} el] {kinds}>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, fn: ast.AST):
        self.fn = fn
        self.blocks: list[BasicBlock] = []
        self.entry: BasicBlock = self._new_block()
        self.exit: BasicBlock = self._new_block()
        self.raise_exit: BasicBlock = self._new_block()

    def _new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def connect(self, src: BasicBlock, dst: BasicBlock, kind: str = "normal",
                test: ast.expr | None = None) -> None:
        edge = Edge(dst, kind, test)
        src.out_edges.append(edge)
        dst.in_edges.append(edge)

    # -- queries ----------------------------------------------------------

    def elements(self) -> Iterator[tuple[BasicBlock, int, ast.AST]]:
        """Every (block, index, element) in deterministic block order."""
        for block in self.blocks:
            for index, element in enumerate(block.elements):
                yield block, index, element

    def reaching_definitions(self) -> dict[tuple[int, int], dict[str, set[tuple[int, int]]]]:
        """Forward may-analysis: which definition sites of each local
        name can reach each element?

        Returns ``{(block id, element index): {name: {definition
        points}}}`` where a definition point is itself a ``(block id,
        element index)`` pair.  Rules use this to walk def-use chains
        (e.g. "this handle was bound from ``disk.open``").
        """
        in_states: dict[int, dict[str, frozenset]] = {self.entry.bid: {}}
        result: dict[tuple[int, int], dict[str, set[tuple[int, int]]]] = {}
        worklist = [self.entry]
        arg_defs = {name: frozenset({(-1, -1)})
                    for name in argument_names(self.fn)}
        in_states[self.entry.bid] = dict(arg_defs)
        while worklist:
            block = worklist.pop(0)
            state = dict(in_states.get(block.bid, {}))
            for index, element in enumerate(block.elements):
                result[(block.bid, index)] = {
                    name: set(defs) for name, defs in state.items()}
                for name in definitions(element):
                    state[name] = frozenset({(block.bid, index)})
            for edge in block.out_edges:
                target = edge.dst
                merged = dict(in_states.get(target.bid, {}))
                changed = target.bid not in in_states
                for name, defs in state.items():
                    combined = merged.get(name, frozenset()) | defs
                    if combined != merged.get(name):
                        merged[name] = combined
                        changed = True
                if changed:
                    in_states[target.bid] = merged
                    if target not in worklist:
                        worklist.append(target)
        return result

    def forward(self, init, transfer: Callable, merge: Callable,
                edge_transfer: Callable | None = None) -> dict[int, object]:
        """Generic forward worklist analysis.

        ``init`` is the entry state; ``transfer(state, element)`` maps a
        state across one element; ``merge(a, b)`` joins states at a
        confluence; ``edge_transfer(state, edge)``, if given, adjusts
        the state crossing a labelled edge (branch sensitivity).
        Exception edges conservatively carry the block's *entry* state
        merged with its exit state.  Returns block id -> in-state.
        """
        in_states: dict[int, object] = {self.entry.bid: init}
        worklist = [self.entry]
        while worklist:
            block = worklist.pop(0)
            entry_state = in_states[block.bid]
            state = entry_state
            for element in block.elements:
                state = transfer(state, element)
            for edge in block.out_edges:
                out = state
                if edge.kind == "exc":
                    out = merge(entry_state, state)
                if edge_transfer is not None:
                    out = edge_transfer(out, edge)
                target = edge.dst
                if target.bid in in_states:
                    joined = merge(in_states[target.bid], out)
                    if joined == in_states[target.bid]:
                        continue
                    in_states[target.bid] = joined
                else:
                    in_states[target.bid] = out
                if target not in worklist:
                    worklist.append(target)
        return in_states


# -- construction ------------------------------------------------------------


class _Builder:
    """Recursive-descent CFG construction with loop and handler stacks."""

    def __init__(self, fn: ast.AST):
        self.cfg = CFG(fn)
        self.current = self.cfg.entry
        # (continue target, break target) per enclosing loop
        self.loops: list[tuple[BasicBlock, BasicBlock]] = []
        # handler entries of enclosing try statements, innermost last;
        # an unmatched exception may also skip every handler, so blocks
        # always keep raise_exit as a target too
        self.handlers: list[list[BasicBlock]] = []

    # Every block inherits the handler context live at its creation.
    def _new_block(self) -> BasicBlock:
        block = self.cfg._new_block()
        for frame in self.handlers:
            block.exc_targets.extend(frame)
        block.exc_targets.append(self.cfg.raise_exit)
        return block

    def build(self) -> CFG:
        self.cfg.entry.exc_targets.append(self.cfg.raise_exit)
        self._body(self.cfg.fn.body)
        if self.current is not None:
            self.cfg.connect(self.current, self.cfg.exit)
        # materialize exception edges once per (block, target) pair
        for block in self.cfg.blocks:
            if block in (self.cfg.exit, self.cfg.raise_exit):
                continue
            seen: set[int] = set()
            for target in block.exc_targets:
                if target.bid not in seen:
                    seen.add(target.bid)
                    self.cfg.connect(block, target, kind="exc")
        return self.cfg

    def _body(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            if self.current is None:
                # dead code after return/raise/break: still build it so
                # rules can see its elements, but leave it unreachable
                self.current = self._new_block()
            self._statement(statement)

    def _append(self, node: ast.AST) -> None:
        self.current.elements.append(node)

    # -- statement dispatch ----------------------------------------------

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, (ast.While,)):
            self._while(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, ast.Try) or node.__class__.__name__ == "TryStar":
            self._try(node)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
        elif isinstance(node, ast.Return):
            self._append(node)
            self.cfg.connect(self.current, self.cfg.exit)
            self.current = None
        elif isinstance(node, ast.Raise):
            self._append(node)
            for target in self.current.exc_targets:
                self.cfg.connect(self.current, target, kind="exc")
            self.current = None
        elif isinstance(node, ast.Break):
            self._append(node)
            if self.loops:
                self.cfg.connect(self.current, self.loops[-1][1])
            self.current = None
        elif isinstance(node, ast.Continue):
            self._append(node)
            if self.loops:
                self.cfg.connect(self.current, self.loops[-1][0])
            self.current = None
        elif isinstance(node, ast.Match):
            self._match(node)
        else:
            # simple statements — including nested function/class
            # definitions, which are opaque single elements here (their
            # bodies get their own CFGs via iter_function_cfgs)
            self._append(node)

    def _if(self, node: ast.If) -> None:
        self._append(node.test)
        head = self.current
        then_block = self._new_block()
        self.cfg.connect(head, then_block, kind="true", test=node.test)
        self.current = then_block
        self._body(node.body)
        then_end = self.current
        join = self._new_block()
        if node.orelse:
            else_block = self._new_block()
            self.cfg.connect(head, else_block, kind="false", test=node.test)
            self.current = else_block
            self._body(node.orelse)
            if self.current is not None:
                self.cfg.connect(self.current, join)
        else:
            self.cfg.connect(head, join, kind="false", test=node.test)
        if then_end is not None:
            self.cfg.connect(then_end, join)
        self.current = join

    @staticmethod
    def _always_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    def _while(self, node: ast.While) -> None:
        head = self._new_block()
        self.cfg.connect(self.current, head)
        head.elements.append(node.test)
        after = self._new_block()
        body = self._new_block()
        self.cfg.connect(head, body, kind="true", test=node.test)
        infinite = self._always_true(node.test)
        self.loops.append((head, after))
        self.current = body
        self._body(node.body)
        if self.current is not None:
            self.cfg.connect(self.current, head)
        self.loops.pop()
        if not infinite:
            if node.orelse:
                orelse = self._new_block()
                self.cfg.connect(head, orelse, kind="false", test=node.test)
                self.current = orelse
                self._body(node.orelse)
                if self.current is not None:
                    self.cfg.connect(self.current, after)
            else:
                self.cfg.connect(head, after, kind="false", test=node.test)
        self.current = after

    def _for(self, node: ast.For | ast.AsyncFor) -> None:
        # evaluate the iterable once, then loop through the header,
        # which re-binds the target on every iteration
        head = self._new_block()
        self.cfg.connect(self.current, head)
        head.elements.append(node)   # the For node = "bind next item"
        after = self._new_block()
        body = self._new_block()
        self.cfg.connect(head, body, kind="true")
        self.loops.append((head, after))
        self.current = body
        self._body(node.body)
        if self.current is not None:
            self.cfg.connect(self.current, head)
        self.loops.pop()
        if node.orelse:
            orelse = self._new_block()
            self.cfg.connect(head, orelse, kind="false")
            self.current = orelse
            self._body(node.orelse)
            if self.current is not None:
                self.cfg.connect(self.current, after)
        else:
            self.cfg.connect(head, after, kind="false")
        self.current = after

    def _try(self, node) -> None:
        after = self._new_block()
        handler_entries = [self._new_block() for _ in node.handlers]
        # body blocks may jump to this try's handlers at any point
        self.handlers.append(handler_entries)
        body_entry = self._new_block()
        self.cfg.connect(self.current, body_entry)
        self.current = body_entry
        self._body(node.body)
        if node.orelse and self.current is not None:
            self._body(node.orelse)
        body_end = self.current
        self.handlers.pop()

        ends: list[BasicBlock] = []
        if body_end is not None:
            ends.append(body_end)
        for handler, entry in zip(node.handlers, handler_entries):
            entry.elements.append(handler)   # the except clause itself
            self.current = entry
            self._body(handler.body)
            if self.current is not None:
                ends.append(self.current)

        if node.finalbody:
            final = self._new_block()
            for end in ends:
                self.cfg.connect(end, final)
            self.current = final
            self._body(node.finalbody)
            if self.current is not None:
                self.cfg.connect(self.current, after)
        else:
            for end in ends:
                self.cfg.connect(end, after)
        self.current = after

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        self._append(node)   # the With node = evaluate+bind context items
        self._body(node.body)

    def _match(self, node: ast.Match) -> None:
        subject = self.current
        subject.elements.append(node.subject)
        after = self._new_block()
        for case in node.cases:
            case_block = self._new_block()
            self.cfg.connect(subject, case_block)
            self.current = case_block
            self._body(case.body)
            if self.current is not None:
                self.cfg.connect(self.current, after)
        self.cfg.connect(subject, after)   # no case may match
        self.current = after


def build_cfg(fn: ast.AST) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(fn).build()


def iter_function_cfgs(tree: ast.AST) -> Iterator[CFG]:
    """A CFG for every function in a module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield build_cfg(node)


# -- definitions and uses ----------------------------------------------------


def argument_names(fn: ast.AST) -> list[str]:
    if not isinstance(fn, FUNCTION_NODES):
        return []
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    # attribute / subscript targets mutate objects, not local names


def definitions(element: ast.AST) -> list[str]:
    """Local names this element binds."""
    names: list[str] = []
    if isinstance(element, ast.Assign):
        for target in element.targets:
            names.extend(_target_names(target))
    elif isinstance(element, (ast.AugAssign, ast.AnnAssign)):
        names.extend(_target_names(element.target))
    elif isinstance(element, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(element.target))
    elif isinstance(element, (ast.With, ast.AsyncWith)):
        for item in element.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(element, ast.ExceptHandler):
        if element.name:
            names.append(element.name)
    elif isinstance(element, FUNCTION_NODES + (ast.ClassDef,)):
        names.append(element.name)
    # walrus assignments can hide anywhere in an expression
    for node in ast.walk(element if not isinstance(element, FUNCTION_NODES)
                         else element.args):
        if isinstance(node, ast.NamedExpr):
            names.extend(_target_names(node.target))
    return names


def uses(element: ast.AST) -> set[str]:
    """Local names this element reads (loads)."""
    out: set[str] = set()
    if isinstance(element, FUNCTION_NODES + (ast.ClassDef,)):
        return out   # opaque: a nested scope's reads are not this scope's
    roots: list[ast.AST]
    if isinstance(element, (ast.For, ast.AsyncFor)):
        roots = [element.iter]
    elif isinstance(element, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in element.items]
    else:
        roots = [element]
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, FUNCTION_NODES + (ast.Lambda,)):
                break
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                out.add(node.id)
    return out


def calls_in(element: ast.AST) -> Iterator[ast.Call]:
    """Call nodes inside one element, not descending into nested defs.

    For ``For``/``With`` pseudo-elements only the header expressions
    (iterable / context items) are searched, since the body statements
    are separate elements of other blocks.
    """
    if isinstance(element, (ast.For, ast.AsyncFor)):
        roots: list[ast.AST] = [element.iter]
    elif isinstance(element, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in element.items]
    elif isinstance(element, FUNCTION_NODES + (ast.ClassDef,)):
        return
    else:
        roots = [element]
    for root in roots:
        stack: list[ast.AST] = [root]
        while stack:
            node = stack.pop()
            if isinstance(node, FUNCTION_NODES + (ast.Lambda,)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))


def receiver_name(func: ast.expr) -> str:
    """Simple name of the object a method is called on (``a.b.append``
    -> ``b``; ``wal.append`` -> ``wal``)."""
    if not isinstance(func, ast.Attribute):
        return ""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Subscript):
        inner = value.value
        if isinstance(inner, ast.Attribute):
            return inner.attr
        if isinstance(inner, ast.Name):
            return inner.id
    return ""
