"""Repo-wide call graph with lightweight receiver-type inference.

The flow rules of PR 4 see one function at a time; the contracts they
protect (deadline budgets, the error taxonomy) are *call-chain*
properties.  This module builds the interprocedural substrate those
contracts need:

* a :class:`Project` bundles every parsed :class:`FileContext` of one
  analyzer run and lazily derives the module/class/function index, the
  call graph, and the effect summaries (each computed once per run and
  shared by every consumer — rules, ``--graph``, tests);
* :class:`CallGraph` maps each function to its resolved call sites.
  Resolution is *type-informed but deliberately shallow*: enough to
  follow the idioms this repo actually uses, nothing speculative.

What resolves (the supported idioms):

* module-level functions, direct and through ``from``-import aliases
  (``from m import f as g; g()``);
* constructors (``RoutedStore(...)`` edges to ``RoutedStore.__init__``);
* ``self.method()`` through the enclosing class's MRO, plus edges to
  every override in scanned subclasses (static type may be a base);
* attribute receivers whose type was inferred from ``self.x =
  Collaborator(...)`` in any method, ``self.x: T`` / parameter
  annotations, or ``self.x = param`` where the parameter is annotated —
  chains like ``self.cluster.network.invoke`` resolve link by link;
* local variables bound from a constructor call or annotated parameter;
* functions passed by reference (the ``call_with_retries(fn, ...)``
  pattern the retry-amplification rule tracks): a bare ``Name`` or
  ``self.attr`` argument resolving to a known function adds a ``ref``
  edge, treated by the summary layer as a possible call.

Precision notes, honest edition: inference is flow-insensitive (the
last constructor assignment to a name wins), containers and dict
lookups are opaque, ``Optional[T]``/``T | None`` annotations strip to
``T``, and an unresolvable call simply produces no edge — the graph
under-approximates calls into dynamic dispatch it cannot see, so
summary-based rules may miss effects behind first-class function
tables, but every edge that *is* in the graph corresponds to a real
syntactic call site.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import FileContext

#: Parameter names the deadline-threading analysis treats as a budget.
DEADLINE_PARAM_NAMES = frozenset({"deadline", "budget"})


def module_dotted(rel_path: str) -> str:
    """``src/repro/voldemort/routing.py`` -> ``repro.voldemort.routing``."""
    path = rel_path
    if path.endswith(".py"):
        path = path[:-3]
    parts = [p for p in path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method in the scanned project."""

    qualname: str                  # repro.voldemort.routing.RoutedStore.get
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    rel_path: str
    module: "ModuleInfo"
    cls: "ClassInfo | None" = None
    #: qualname of the lexically enclosing function, for nested defs
    parent: str | None = None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def param_names(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in
                args.posonlyargs + args.args + args.kwonlyargs]

    def deadline_params(self) -> list[str]:
        """Parameters that carry a request budget into this function."""
        params = []
        args = self.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in DEADLINE_PARAM_NAMES:
                params.append(arg.arg)
            elif arg.annotation is not None and \
                    "Deadline" in ast.dump(arg.annotation):
                params.append(arg.arg)
        return params


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, and inferred attribute types."""

    qualname: str
    name: str
    node: ast.ClassDef
    rel_path: str
    module: "ModuleInfo"
    base_names: list[str] = field(default_factory=list)   # resolved qualnames
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> class qualname, from ``self.x = C(...)``,
    #: ``self.x: C``, and ``self.x = param`` with an annotated param
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One scanned file: its symbols and import aliases."""

    rel_path: str
    dotted: str
    ctx: FileContext
    classes: dict[str, ClassInfo] = field(default_factory=dict)    # local name
    functions: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call (or by-reference use) inside a function.

    ``kind`` is ``call`` for a direct invocation, ``ref`` for a
    function passed by reference (possible deferred call), and
    ``rpc``/``sleep``/``fsync`` for direct blocking primitives that
    have no project-level callee.
    """

    caller: str
    callee: str            # qualname, or the primitive name for effects
    line: int
    kind: str = "call"
    node_id: int = 0       # id() of the AST call node, for per-node queries


class _TypeEnv:
    """Expression -> class-qualname inference inside one function."""

    def __init__(self, graph: "CallGraph", fn: FunctionInfo):
        self.graph = graph
        self.fn = fn
        self.locals: dict[str, str] = {}
        module = fn.module
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            qual = graph._annotation_class(arg.annotation, module)
            if qual:
                self.locals[arg.arg] = qual
        # flow-insensitive constructor/alias bindings
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                qual = self.resolve_expr(stmt.value, binding=True)
                if qual:
                    self.locals[stmt.targets[0].id] = qual
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                qual = graph._annotation_class(stmt.annotation, module)
                if qual:
                    self.locals[stmt.target.id] = qual

    def resolve_expr(self, expr: ast.expr, binding: bool = False) -> str | None:
        """Class qualname of ``expr``'s value, or None."""
        graph, module = self.graph, self.fn.module
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self.fn.cls is not None:
                return self.fn.cls.qualname
            # bare class names are class objects, not instances; only
            # constructor *calls* below yield instances
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.resolve_expr(expr.value)
            if base is None:
                return None
            return graph._attr_type(base, expr.attr)
        if isinstance(expr, ast.Call):
            cls = graph._class_of_constructor(expr.func, module, self)
            if cls is not None:
                return cls.qualname
            return None
        if isinstance(expr, ast.Await):
            return self.resolve_expr(expr.value)
        return None


class CallGraph:
    """The resolved call graph of one :class:`Project`."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = {m.rel_path: m for m in modules}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: class qualname -> direct subclasses (for override edges)
        self.subclasses: dict[str, list[str]] = {}
        self.call_sites: dict[str, list[CallSite]] = {}
        self._index(modules)
        for module in modules:
            self._resolve_module(module)

    # -- indexing ---------------------------------------------------------

    def _index(self, modules: list[ModuleInfo]) -> None:
        for module in modules:
            for node in module.ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._index_class(module, node)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._index_function(module, node, cls=None, parent=None)
        # resolve base-class names now that every class is indexed
        for module in modules:
            for cls in module.classes.values():
                for base in cls.node.bases:
                    qual = self._base_qualname(base, module)
                    if qual:
                        cls.base_names.append(qual)
                        self.subclasses.setdefault(qual, []).append(
                            cls.qualname)
        for subs in self.subclasses.values():
            subs.sort()
        # attribute types need the full class index (constructor calls
        # may target classes from other modules)
        for module in modules:
            for cls in module.classes.values():
                self._infer_attr_types(cls)

    def _index_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.dotted}.{node.name}"
        cls = ClassInfo(qualname=qualname, name=node.name, node=node,
                        rel_path=module.rel_path, module=module)
        module.classes[node.name] = cls
        self.classes[qualname] = cls
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, child, cls=cls, parent=None)

    def _index_function(self, module: ModuleInfo,
                        node: ast.FunctionDef | ast.AsyncFunctionDef,
                        cls: ClassInfo | None, parent: str | None) -> None:
        if cls is not None:
            qualname = f"{cls.qualname}.{node.name}"
        elif parent is not None:
            qualname = f"{parent}.{node.name}"
        else:
            qualname = f"{module.dotted}.{node.name}"
        info = FunctionInfo(qualname=qualname, name=node.name, node=node,
                            rel_path=module.rel_path, module=module,
                            cls=cls, parent=parent)
        self.functions[qualname] = info
        if cls is not None:
            cls.methods[node.name] = info
        elif parent is None:
            module.functions[node.name] = info
        # nested defs become their own nodes, scoped by the enclosing
        # function's qualname; each recursion level indexes only its
        # *direct* nested defs (grandchildren belong to the child)
        for child in _direct_nested_defs(node):
            self._index_function(module, child, cls=None, parent=qualname)

    def _base_qualname(self, base: ast.expr, module: ModuleInfo) -> str | None:
        if isinstance(base, ast.Name):
            cls = self._lookup_class(base.id, module)
            return cls.qualname if cls else None
        if isinstance(base, ast.Attribute):
            dotted = module.ctx.imports.resolve_call(base)
            if dotted and dotted in self.classes:
                return dotted
        return None

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            env = _TypeEnv(self, method)
            for stmt in ast.walk(method.node):
                target = None
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                    if stmt.annotation is not None:
                        qual = self._annotation_class(stmt.annotation,
                                                      cls.module)
                        if qual and _is_self_attr(target):
                            cls.attr_types.setdefault(target.attr, qual)
                            continue
                    value = stmt.value
                if target is None or value is None \
                        or not _is_self_attr(target):
                    continue
                qual = env.resolve_expr(value, binding=True)
                if qual:
                    cls.attr_types.setdefault(target.attr, qual)

    # -- lookups ----------------------------------------------------------

    def _lookup_class(self, name: str, module: ModuleInfo) -> ClassInfo | None:
        if name in module.classes:
            return module.classes[name]
        dotted = module.ctx.imports.names.get(name)
        if dotted and dotted in self.classes:
            return self.classes[dotted]
        return None

    def _lookup_function(self, name: str,
                         module: ModuleInfo) -> FunctionInfo | None:
        if name in module.functions:
            return module.functions[name]
        dotted = module.ctx.imports.names.get(name)
        if dotted and dotted in self.functions:
            return self.functions[dotted]
        return None

    def _annotation_class(self, annotation: ast.expr,
                          module: ModuleInfo) -> str | None:
        """Class qualname named by an annotation, stripping Optional/
        union wrappers and string quoting."""
        node: ast.expr | None = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        while True:
            if isinstance(node, ast.Subscript):   # Optional[T] / list[T]
                base = node.value
                label = base.attr if isinstance(base, ast.Attribute) \
                    else getattr(base, "id", "")
                if label in ("Optional", "Union"):
                    inner = node.slice
                    if isinstance(inner, ast.Tuple) and inner.elts:
                        node = inner.elts[0]
                    else:
                        node = inner
                    continue
                return None                        # containers stay opaque
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
                left = node.left                   # T | None -> T
                if isinstance(left, ast.Constant) and left.value is None:
                    node = node.right
                else:
                    node = left
                continue
            break
        if isinstance(node, ast.Name):
            cls = self._lookup_class(node.id, module)
            return cls.qualname if cls else None
        if isinstance(node, ast.Attribute):
            dotted = module.ctx.imports.resolve_call(node)
            return dotted if dotted in self.classes else None
        return None

    def mro(self, qualname: str) -> list[str]:
        """DFS linearization of a class and its scanned bases."""
        out: list[str] = []
        stack = [qualname]
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            out.append(current)
            stack = self.classes[current].base_names + stack
        return out

    def _attr_type(self, class_qual: str, attr: str) -> str | None:
        for qual in self.mro(class_qual):
            found = self.classes[qual].attr_types.get(attr)
            if found:
                return found
        return None

    def resolve_method(self, class_qual: str, method: str,
                       with_overrides: bool = True) -> list[str]:
        """Method qualnames a ``recv.method()`` call may reach: the MRO
        match plus (static types being bases) every scanned override."""
        out: list[str] = []
        for qual in self.mro(class_qual):
            info = self.classes[qual].methods.get(method)
            if info is not None:
                out.append(info.qualname)
                break
        if with_overrides:
            stack = list(self.subclasses.get(class_qual, ()))
            seen: set[str] = set()
            while stack:
                sub = stack.pop(0)
                if sub in seen:
                    continue
                seen.add(sub)
                info = self.classes[sub].methods.get(method) \
                    if sub in self.classes else None
                if info is not None and info.qualname not in out:
                    out.append(info.qualname)
                stack.extend(self.subclasses.get(sub, ()))
        return out

    def _class_of_constructor(self, func: ast.expr, module: ModuleInfo,
                              env: "_TypeEnv") -> ClassInfo | None:
        if isinstance(func, ast.Name):
            return self._lookup_class(func.id, module)
        if isinstance(func, ast.Attribute):
            dotted = module.ctx.imports.resolve_call(func)
            if dotted and dotted in self.classes:
                return self.classes[dotted]
            # Deadline.after(...)-style alternate constructors: a
            # classmethod on a resolvable class returning an instance
            if isinstance(func.value, ast.Name):
                cls = self._lookup_class(func.value.id, module)
                if cls is not None and func.attr in cls.methods:
                    method = cls.methods[func.attr]
                    for deco in method.node.decorator_list:
                        if isinstance(deco, ast.Name) \
                                and deco.id == "classmethod":
                            return cls
        return None

    # -- call-site resolution ---------------------------------------------

    def _resolve_module(self, module: ModuleInfo) -> None:
        for info in self.functions.values():
            if info.module is module:
                self.call_sites[info.qualname] = \
                    sorted(self._resolve_function(info),
                           key=lambda s: (s.line, s.callee, s.kind))

    def _function_body_nodes(self, fn: FunctionInfo) -> Iterator[ast.AST]:
        """Nodes of this function's own body, excluding nested defs
        (they are separate graph nodes) but including lambdas (they run
        in this frame's dynamic extent)."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _resolve_function(self, fn: FunctionInfo) -> Iterator[CallSite]:
        env = _TypeEnv(self, fn)
        for node in self._function_body_nodes(fn):
            if not isinstance(node, ast.Call):
                continue
            line = getattr(node, "lineno", fn.node.lineno)
            yield from self._effect_sites(fn, node, line)
            for callee in self._callees_of(node.func, fn, env):
                yield CallSite(caller=fn.qualname, callee=callee,
                               line=line, kind="call", node_id=id(node))
            # functions passed by reference (callbacks, retried fns)
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                for callee in self._ref_targets(arg, fn, env):
                    yield CallSite(caller=fn.qualname, callee=callee,
                                   line=line, kind="ref", node_id=id(node))

    def _effect_sites(self, fn: FunctionInfo, node: ast.Call,
                      line: int) -> Iterator[CallSite]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in ("invoke", "send"):
            yield CallSite(fn.qualname, f"<{func.attr}>", line, kind="rpc",
                           node_id=id(node))
        elif func.attr == "sleep":
            yield CallSite(fn.qualname, "<sleep>", line, kind="sleep",
                           node_id=id(node))
        elif func.attr == "fsync":
            yield CallSite(fn.qualname, "<fsync>", line, kind="fsync",
                           node_id=id(node))

    def _callees_of(self, func: ast.expr, fn: FunctionInfo,
                    env: _TypeEnv) -> list[str]:
        module = fn.module
        if isinstance(func, ast.Name):
            # nested function of this frame first
            nested = f"{fn.qualname}.{func.id}"
            if nested in self.functions:
                return [nested]
            target = self._lookup_function(func.id, module)
            if target is not None:
                return [target.qualname]
            cls = self._lookup_class(func.id, module)
            if cls is not None:
                init = self.resolve_method(cls.qualname, "__init__",
                                           with_overrides=False)
                return init
            return []
        if isinstance(func, ast.Attribute):
            recv_type = env.resolve_expr(func.value)
            if recv_type is not None:
                return self.resolve_method(recv_type, func.attr)
            # ClassName.method(...) and module.func(...)
            dotted = module.ctx.imports.resolve_call(func)
            if dotted:
                if dotted in self.functions:
                    return [dotted]
                owner, _, method = dotted.rpartition(".")
                if owner in self.classes:
                    return self.resolve_method(owner, method)
            if isinstance(func.value, ast.Name):
                cls = self._lookup_class(func.value.id, module)
                if cls is not None:
                    return self.resolve_method(cls.qualname, func.attr,
                                               with_overrides=False)
        return []

    def _ref_targets(self, arg: ast.expr, fn: FunctionInfo,
                     env: _TypeEnv) -> list[str]:
        if isinstance(arg, ast.Name):
            nested = f"{fn.qualname}.{arg.id}"
            if nested in self.functions:
                return [nested]
            target = self._lookup_function(arg.id, fn.module)
            if target is not None:
                return [target.qualname]
            return []
        if isinstance(arg, ast.Attribute) and \
                isinstance(arg.value, ast.Name):
            recv_type = env.resolve_expr(arg.value)
            if recv_type is not None:
                return self.resolve_method(recv_type, arg.attr)
        return []

    # -- graph queries -----------------------------------------------------

    def callees(self, qualname: str) -> list[CallSite]:
        return self.call_sites.get(qualname, [])

    def sccs(self) -> list[list[str]]:
        """Strongly connected components in reverse topological order
        (callees before callers) — the summary computation order.
        Iterative Tarjan, deterministic by construction."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]

        def edges(fn: str) -> list[str]:
            seen: list[str] = []
            for site in self.call_sites.get(fn, ()):
                if site.kind in ("call", "ref") \
                        and site.callee in self.functions \
                        and site.callee not in seen:
                    seen.append(site.callee)
            return seen

        for root in sorted(self.functions):
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                targets = edges(node)
                while edge_index < len(targets):
                    target = targets[edge_index]
                    edge_index += 1
                    if target not in index:
                        work[-1] = (node, edge_index)
                        work.append((target, 0))
                        advanced = True
                        break
                    if target in on_stack:
                        low[node] = min(low[node], index[target])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    out.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return out

    # -- dumps -------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "functions": sorted(self.functions),
            "edges": [
                {"caller": caller, "callee": site.callee,
                 "line": site.line, "kind": site.kind}
                for caller in sorted(self.call_sites)
                for site in self.call_sites[caller]
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_dot(self) -> str:
        out = ["digraph callgraph {", "  rankdir=LR;"]
        for caller in sorted(self.call_sites):
            for site in self.call_sites[caller]:
                style = ' [style=dashed]' if site.kind == "ref" else \
                    ' [color=red]' if site.kind in ("rpc", "sleep", "fsync") \
                    else ""
                out.append(f'  "{caller}" -> "{site.callee}"{style};')
        out.append("}")
        return "\n".join(out)


def _is_self_attr(target: ast.expr) -> bool:
    return isinstance(target, ast.Attribute) \
        and isinstance(target.value, ast.Name) \
        and target.value.id == "self"


def _direct_nested_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Function definitions nested directly inside ``node``'s body
    (not those belonging to a deeper def)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child
            continue
        stack.extend(ast.iter_child_nodes(child))


class Project:
    """Every parsed file of one analyzer run, plus the derived (and
    per-run cached) interprocedural artifacts."""

    def __init__(self, contexts: list[FileContext]):
        self.contexts = {ctx.rel_path: ctx for ctx in contexts}
        self._graph: CallGraph | None = None
        self._summaries = None   # populated by repro.analysis.summaries

    @property
    def graph(self) -> CallGraph:
        if self._graph is None:
            modules = [
                ModuleInfo(rel_path=ctx.rel_path,
                           dotted=module_dotted(ctx.rel_path), ctx=ctx)
                for ctx in sorted(self.contexts.values(),
                                  key=lambda c: c.rel_path)
            ]
            self._graph = CallGraph(modules)
        return self._graph

    @property
    def summaries(self):
        if self._summaries is None:
            from repro.analysis.summaries import compute_summaries
            self._summaries = compute_summaries(self)
        return self._summaries

    def context_for(self, rel_path: str) -> FileContext | None:
        return self.contexts.get(rel_path)
