"""Human and JSON reporters for repro-lint runs.

Both reporters consume the same inputs — the :class:`LintReport`, the
baseline split, and the analyzer's metrics snapshot — so the CI gate,
the CLI, and any dashboard read one source of truth.  Output ordering
is fully deterministic (files, then lines) because the lint tool has
to pass its own determinism bar.
"""

from __future__ import annotations

import json
from itertools import groupby

from repro.analysis.core import Finding, LintReport, Rule
from repro.common.metrics import MetricsRegistry


def render_text(report: LintReport, new: list[Finding],
                grandfathered: list[Finding],
                rules: list[Rule] | None = None) -> str:
    """Grouped-by-file report, new findings first."""
    out: list[str] = []
    if new:
        out.append(f"{len(new)} new finding(s):")
        for path, group in groupby(new, key=lambda f: f.path):
            out.append(f"  {path}")
            for finding in group:
                out.append(f"    {finding.line}:{finding.col} "
                           f"[{finding.rule}] {finding.message}")
                for frame in finding.chain:
                    out.append(f"      via {frame.render()}")
    if grandfathered:
        out.append(f"{len(grandfathered)} baselined finding(s) "
                   "(grandfathered, not gating):")
        for finding in grandfathered:
            out.append(f"  {finding.render()}")
    for error in report.parse_errors:
        out.append(f"parse error: {error}")
    out.append(
        f"scanned {report.files_scanned} file(s): "
        f"{len(new)} new, {len(grandfathered)} baselined, "
        f"{report.suppressed} suppressed by pragma")
    if not new and not report.parse_errors:
        out.append("repro-lint: clean")
    return "\n".join(out)


def render_json(report: LintReport, new: list[Finding],
                grandfathered: list[Finding],
                metrics: MetricsRegistry,
                stats: dict | None = None) -> str:
    def encode(finding: Finding) -> dict:
        payload = {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "fingerprint": finding.fingerprint(),
        }
        if finding.chain:
            payload["chain"] = [
                {"path": frame.path, "line": frame.line,
                 "caller": frame.caller, "callee": frame.callee}
                for frame in finding.chain]
        return payload

    payload = {
        "files_scanned": report.files_scanned,
        "new": [encode(f) for f in new],
        "baselined": [encode(f) for f in grandfathered],
        "suppressed": report.suppressed,
        "parse_errors": report.parse_errors,
        "counters": {name: counter.value
                     for name, counter in sorted(metrics.counters.items())},
        "clean": not new and not report.parse_errors,
    }
    if stats is not None:
        payload["stats"] = stats
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(new: list[Finding],
                  parse_errors: list[str] | None = None) -> str:
    """GitHub Actions workflow-command annotations, one per finding.

    ``::error file=…,line=…`` lines surface inline on the PR diff; the
    call chain of an interprocedural finding rides in the message body
    (``%0A`` is the workflow-command newline escape).
    """
    out: list[str] = []
    for error in parse_errors or []:
        out.append(f"::error title=repro-lint parse error::{_escape(error)}")
    for finding in new:
        message = finding.message
        if finding.chain:
            message += "".join(f"\nvia {frame.render()}"
                               for frame in finding.chain)
        out.append(f"::error file={finding.path},line={finding.line},"
                   f"endLine={finding.last_line},"
                   f"title=repro-lint {finding.rule}::{_escape(message)}")
    return "\n".join(out)


def _escape(message: str) -> str:
    """Workflow-command data escaping per the GitHub Actions spec."""
    return (message.replace("%", "%25")
                   .replace("\r", "%0D")
                   .replace("\n", "%0A"))


#: SARIF 2.1.0 static-analysis interchange format.
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"
#: partialFingerprints key; bump when :meth:`Finding.fingerprint` changes.
SARIF_FINGERPRINT_KEY = "reproLint/v1"


def render_sarif(report: LintReport, new: list[Finding],
                 grandfathered: list[Finding],
                 rules: list[Rule]) -> str:
    """One SARIF 2.1.0 run: findings as results, chains as
    relatedLocations.

    Baselined findings are emitted with ``baselineState: unchanged``
    (``new`` for gating findings) so SARIF viewers can apply the same
    split the exit code does.  Each interprocedural call-chain frame
    becomes a relatedLocation, ordered entry point first, so a viewer
    can walk the path the scheduler takes to the yield point.  Parse
    errors ride in the invocation's toolExecutionNotifications.
    """
    rule_index = {rule.name: i for i, rule in
                  enumerate(sorted(rules, key=lambda r: r.name))}

    def location(path: str, line: int, col: int = 0,
                 end_line: int = 0, message: str | None = None) -> dict:
        region: dict = {"startLine": line}
        if col:
            region["startColumn"] = col + 1  # SARIF columns are 1-based
        if end_line > line:
            region["endLine"] = end_line
        out: dict = {"physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "SRCROOT"},
            "region": region,
        }}
        if message is not None:
            out["message"] = {"text": message}
        return out

    def result(finding: Finding, state: str) -> dict:
        payload: dict = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [location(finding.path, finding.line, finding.col,
                                   finding.last_line)],
            "partialFingerprints": {
                SARIF_FINGERPRINT_KEY: finding.fingerprint()},
            "baselineState": state,
        }
        if finding.rule in rule_index:
            payload["ruleIndex"] = rule_index[finding.rule]
        if finding.chain:
            payload["relatedLocations"] = [
                location(frame.path, frame.line,
                         message=f"{frame.caller} -> {frame.callee}")
                for frame in finding.chain]
        return payload

    driver: dict = {
        "name": "repro-lint",
        "rules": [
            {"id": rule.name,
             "shortDescription": {"text": rule.summary or rule.name},
             **({"fullDescription": {"text": rule.rationale}}
                if rule.rationale else {})}
            for rule in sorted(rules, key=lambda r: r.name)],
    }
    invocation: dict = {
        "executionSuccessful": True,
        "toolExecutionNotifications": [
            {"level": "error", "message": {"text": error}}
            for error in report.parse_errors],
    }
    run = {
        "tool": {"driver": driver},
        "invocations": [invocation],
        "results": ([result(f, "new") for f in new]
                    + [result(f, "unchanged") for f in grandfathered]),
    }
    payload = {"$schema": SARIF_SCHEMA, "version": SARIF_VERSION,
               "runs": [run]}
    return json.dumps(payload, indent=2, sort_keys=True)


def render_stats(rule_seconds: dict[str, float],
                 rule_findings: dict[str, int],
                 files_scanned: int) -> str:
    """Per-rule timing/finding table for ``--stats``."""
    out = [f"per-rule stats over {files_scanned} file(s):"]
    width = max((len(name) for name in rule_seconds), default=4)
    for name in sorted(rule_seconds):
        millis = rule_seconds[name] * 1000.0
        count = rule_findings.get(name, 0)
        out.append(f"  {name:<{width}}  {millis:8.1f} ms  "
                   f"{count} finding(s)")
    total = sum(rule_seconds.values()) * 1000.0
    out.append(f"  {'total':<{width}}  {total:8.1f} ms")
    return "\n".join(out)


def stats_payload(rule_seconds: dict[str, float],
                  rule_findings: dict[str, int]) -> dict:
    """The ``--stats`` section of the JSON report."""
    return {
        name: {"ms": round(rule_seconds[name] * 1000.0, 3),
               "findings": rule_findings.get(name, 0)}
        for name in sorted(rule_seconds)
    }


def render_rule_list(rules: list[Rule]) -> str:
    out = []
    for rule in rules:
        out.append(f"{rule.name}: {rule.summary}")
        if rule.rationale:
            out.append(f"    {rule.rationale}")
    return "\n".join(out)
