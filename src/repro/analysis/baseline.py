"""Committed-baseline support for repro-lint.

A baseline grandfathers existing findings so the CI gate only fails
on *new* violations: adopt the linter first, burn the debt down
afterwards.  The file maps finding fingerprints (rule + path + source
line text, see :meth:`Finding.fingerprint`) to occurrence counts —
counts, because two identical ``time.sleep(1)`` lines in one file
produce identical fingerprints, and fixing one of them should shrink
the allowance.

The format is deliberately diff-friendly JSON: sorted keys, one
human-readable locator string per entry so reviewers can see what a
baseline edit grandfathers.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class Baseline:
    """Fingerprint -> allowed count, plus locator strings for humans."""

    allowances: Counter = field(default_factory=Counter)
    locators: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            fp = finding.fingerprint()
            baseline.allowances[fp] += 1
            baseline.locators.setdefault(
                fp, f"{finding.path}: [{finding.rule}] {finding.snippet}")
        return baseline

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        baseline = cls()
        for fp, entry in data.get("findings", {}).items():
            baseline.allowances[fp] = int(entry["count"])
            baseline.locators[fp] = entry.get("where", "")
        return baseline

    def save(self, path: Path | str) -> None:
        data = {
            "comment": "repro-lint grandfathered findings; regenerate with "
                       "`python -m repro.analysis --write-baseline`",
            "findings": {
                fp: {"count": count, "where": self.locators.get(fp, "")}
                for fp, count in sorted(self.allowances.items())
                if count > 0
            },
        }
        Path(path).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                              encoding="utf-8")

    def split(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered).

        Findings are matched against the per-fingerprint allowance in
        report order; occurrences beyond the allowed count are new.
        """
        remaining = Counter(self.allowances)
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            fp = finding.fingerprint()
            if remaining[fp] > 0:
                remaining[fp] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        return new, grandfathered
