"""The Databus client library (§III.C).

"The Databus client library is the glue between the Relays and
Bootstrap servers and the business logic of the Databus consumers."

Responsibilities implemented here:

* progress tracking — a checkpoint SCN persisted by the client, only
  advanced at transaction-window boundaries (timeline consistency,
  at-least-once delivery);
* automatic switchover — when the relay has evicted the client's
  position it falls back to the bootstrap server (consolidated delta
  when the client has state, consistent snapshot when it does not) and
  then returns to the relay;
* failure switchover — relay polls run under the shared resilience
  layer (:mod:`repro.common.resilience`): transient relay failures are
  retried with backoff, repeated failure opens a circuit breaker, and
  while the relay is unreachable the client serves windows from the
  bootstrap server instead, resuming from its checkpoint with no
  missed SCNs once the relay recovers;
* retry logic — a consumer callback that raises is retried up to a
  bound, after which the window is aborted and re-delivered on the
  next poll;
* server-side filters are pushed down to both relay and bootstrap.

To exercise the failure paths deterministically the client can route
its relay/bootstrap calls through a :class:`~repro.simnet.SimNetwork`,
whose :class:`FailureInjector` provides crashes, partitions, and
transient error rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.clock import Clock, SimClock
from repro.common.errors import (
    ConfigurationError,
    NodeUnavailableError,
    SCNGoneError,
    ServerOverloadedError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.overload import PRIORITY_BULK, PRIORITY_LIVE
from repro.common.resilience import CircuitBreaker, RetryPolicy, call_with_retries
from repro.databus.bootstrap import BootstrapServer
from repro.databus.events import DatabusEvent, EventFilter
from repro.databus.relay import DEFAULT_BUFFER, Relay


class DatabusConsumer:
    """Callback interface for business logic.

    Subclass and override; any callback may raise to signal a transient
    processing failure (the library retries the window).
    """

    def on_start_window(self, scn: int) -> None:
        """A transaction window is about to be delivered."""

    def on_data_event(self, event: DatabusEvent) -> None:
        """One change event (within the current window)."""

    def on_end_window(self, scn: int) -> None:
        """The window completed; the library checkpoints after this."""

    def on_snapshot_row(self, event: DatabusEvent) -> None:
        """A row from a bootstrap consistent snapshot (defaults to
        treating it as a data event)."""
        self.on_data_event(event)


@dataclass
class ClientStats:
    windows_delivered: int = 0
    events_delivered: int = 0
    bootstraps: int = 0
    snapshot_bootstraps: int = 0
    delta_bootstraps: int = 0
    consumer_retries: int = 0
    windows_aborted: int = 0
    relay_failovers: int = 0    # polls served by bootstrap because the
    relay_reconnects: int = 0   # relay was down, and returns to it
    polls_shed: int = 0         # polls the relay refused under overload


class DatabusClient:
    """One subscription: a consumer, its checkpoint, and its sources."""

    def __init__(self, consumer: DatabusConsumer, relay: Relay,
                 bootstrap: BootstrapServer | None = None,
                 buffer_name: str = DEFAULT_BUFFER,
                 event_filter: EventFilter | None = None,
                 checkpoint: int = 0, max_retries: int = 3,
                 retry_policy: RetryPolicy | None = None,
                 clock: Clock | None = None,
                 network=None, client_name: str = "databus-client",
                 relay_name: str | None = None,
                 bootstrap_name: str | None = None,
                 breaker: CircuitBreaker | None = None,
                 retry_seed: int = 0,
                 bulk_lag_scns: int = 1000):
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if bulk_lag_scns < 1:
            raise ConfigurationError("bulk_lag_scns must be >= 1")
        self.consumer = consumer
        self.relay = relay
        self.bootstrap = bootstrap
        self.buffer_name = buffer_name
        self.event_filter = event_filter
        self.checkpoint = checkpoint
        self.has_state = checkpoint > 0
        self.max_retries = max_retries
        self.stats = ClientStats()
        # resilience wiring: poll retries, relay breaker, metrics.  With
        # a network attached, relay/bootstrap calls go through it and are
        # subject to its failure injection.
        self.network = network
        self.client_name = client_name
        self.relay_name = relay_name or relay.name
        self.bootstrap_name = bootstrap_name or (
            bootstrap.name if bootstrap is not None else None)
        if clock is not None:
            self.clock = clock
        elif network is not None:
            self.clock = network.clock
        else:
            self.clock = SimClock()
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self.metrics = MetricsRegistry()
        self.relay_breaker = breaker or CircuitBreaker(
            self.clock, name="relay", metrics=self.metrics)
        # overload etiquette: a consumer more than bulk_lag_scns behind
        # the relay head is catching up, not tailing, and declares its
        # polls bulk-class so an admission-controlled relay sheds them
        # before they can starve live tailing consumers
        self.bulk_lag_scns = bulk_lag_scns

    # -- transport ---------------------------------------------------------

    def _call(self, server_name: str, fn, *args):
        """Direct call, or a simulated network hop when one is wired."""
        if self.network is None:
            return fn(*args)
        result, _ = self.network.invoke(self.client_name, server_name,
                                        fn, *args)
        return result

    def _poll_priority(self) -> int:
        lag = self.relay.newest_scn(self.buffer_name) - self.checkpoint
        return PRIORITY_BULK if lag > self.bulk_lag_scns else PRIORITY_LIVE

    def _stream_from_relay(self, max_events: int) -> list[DatabusEvent]:
        priority = self._poll_priority()
        return call_with_retries(
            lambda: self._call(self.relay_name, self.relay.stream_from,
                               self.checkpoint, self.buffer_name,
                               self.event_filter, max_events, priority),
            clock=self.clock, policy=self.retry_policy, rng=self._retry_rng,
            retry_on=(NodeUnavailableError,), breaker=self.relay_breaker,
            metrics=self.metrics, name="relay.poll")

    # -- the poll loop -----------------------------------------------------

    def poll(self, max_events: int = 10_000) -> int:
        """Pull available events and deliver them; returns events delivered.

        Transparently bootstraps when the relay no longer retains the
        checkpoint position, and switches over to the bootstrap server
        while the relay itself is unreachable (retries exhausted or the
        relay breaker open).  The checkpoint only ever advances at
        window boundaries, so a poll interrupted by a failure at any
        point re-delivers from the same position — at-least-once, no
        gaps.
        """
        try:
            events = self._stream_from_relay(max_events)
            if self.relay_breaker.state == "closed" and \
                    self.stats.relay_failovers > self.stats.relay_reconnects:
                self.stats.relay_reconnects += 1
                self.metrics.counter("relay.reconnects").increment()
        except SCNGoneError:
            self._bootstrap()
            events = self._stream_from_relay(max_events)
        except ServerOverloadedError as exc:
            # the relay shed this poll.  Never retry in a tight loop —
            # that is the retry amplification the shed exists to stop.
            # A lagging consumer takes its catch-up to the bootstrap
            # server instead (that is what it is for); a tailing one
            # backs off for the server's Retry-After hint and polls
            # again later, checkpoint untouched.
            self.stats.polls_shed += 1
            self.metrics.counter("relay.polls_shed").increment()
            if self.bootstrap is not None and \
                    self._poll_priority() == PRIORITY_BULK:
                return self._poll_bootstrap()
            self.clock.sleep(exc.retry_after or 0.05)
            return 0
        except NodeUnavailableError:
            # the relay is down (or its breaker is open): serve this
            # poll from the bootstrap server so consumers keep moving
            if self.bootstrap is None:
                raise
            self.stats.relay_failovers += 1
            self.metrics.counter("relay.failovers").increment()
            return self._poll_bootstrap()
        return self._deliver_windows(events)

    def _deliver_windows(self, events: list[DatabusEvent]) -> int:
        delivered = 0
        window: list[DatabusEvent] = []
        for event in events:
            window.append(event)
            if event.end_of_window:
                if self._deliver_one_window(window):
                    delivered += len(window)
                    self.stats.windows_delivered += 1
                    self.stats.events_delivered += len(window)
                    self.checkpoint = event.scn
                    self.has_state = True
                else:
                    return delivered  # aborted; re-delivered next poll
                window = []
        return delivered

    def _deliver_one_window(self, window: list[DatabusEvent]) -> bool:
        """At-least-once delivery with bounded retries."""
        scn = window[0].scn
        for attempt in range(self.max_retries + 1):
            try:
                self.consumer.on_start_window(scn)
                for event in window:
                    self.consumer.on_data_event(event)
                self.consumer.on_end_window(scn)
                return True
            except Exception:
                self.stats.consumer_retries += 1
                if attempt == self.max_retries:
                    self.stats.windows_aborted += 1
                    return False
        return False

    # -- bootstrap switchover ------------------------------------------------

    def _bootstrap(self) -> None:
        if self.bootstrap is None:
            raise SCNGoneError(
                "relay evicted our position and no bootstrap server is "
                "configured")
        self.stats.bootstraps += 1
        if self.has_state:
            self._bootstrap_with_delta()
        else:
            self._bootstrap_with_snapshot()

    def _poll_bootstrap(self) -> int:
        """Serve one poll's worth of windows from the bootstrap server
        (the relay is unreachable).  Delta playback resumes exactly from
        the checkpoint, so no SCN is skipped."""
        self.stats.bootstraps += 1
        before = self.stats.events_delivered
        if self.has_state:
            self._bootstrap_with_delta()
        else:
            self._bootstrap_with_snapshot()
        return self.stats.events_delivered - before

    def _bootstrap_with_delta(self) -> None:
        """Consolidated delta: fast playback for lagging consumers."""
        self.stats.delta_bootstraps += 1
        events, high_watermark = self._call(
            self.bootstrap_name, self.bootstrap.consolidated_delta,
            self.checkpoint, self.event_filter)
        for event in events:
            self._deliver_single(event)
        self.checkpoint = max(self.checkpoint, high_watermark)

    def _bootstrap_with_snapshot(self) -> None:
        """Consistent snapshot: initialization for stateless consumers."""
        self.stats.snapshot_bootstraps += 1
        resume_scn = self.checkpoint
        for kind, item in self._call(self.bootstrap_name,
                                     self._snapshot_as_list):
            if kind == "row":
                self.consumer.on_snapshot_row(item)
                self.stats.events_delivered += 1
            elif kind == "replay":
                self._deliver_single(item)
            else:
                resume_scn = item
        self.checkpoint = max(self.checkpoint, resume_scn)
        self.has_state = True

    def _snapshot_as_list(self) -> list:
        # materialized so the whole snapshot counts as one simulated call
        return list(self.bootstrap.consistent_snapshot(self.event_filter))

    def _deliver_single(self, event: DatabusEvent) -> None:
        self.consumer.on_start_window(event.scn)
        self.consumer.on_data_event(event)
        self.consumer.on_end_window(event.scn)
        self.stats.windows_delivered += 1
        self.stats.events_delivered += 1
        self.checkpoint = max(self.checkpoint, event.scn)

    # -- bookkeeping wrapper over _deliver_windows ------------------------------

    def run_to_head(self, max_polls: int = 1000) -> int:
        """Poll until caught up with the relay; returns total delivered."""
        total = 0
        for _ in range(max_polls):
            delivered = self.poll()
            total += delivered
            if self.checkpoint >= self.relay.newest_scn(self.buffer_name):
                break
        return total
