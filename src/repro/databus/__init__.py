"""Databus: change data capture with timeline consistency (paper §III).

Components, matching Figure III.2:

* :mod:`repro.databus.events` — CDC events: commit SCN, source table,
  Avro-serialized payload, transaction-window boundaries, server-side
  filters;
* :mod:`repro.databus.relay` — the relay: captures changes from a
  source database, serializes them, and buffers them in an in-memory
  circular buffer indexed by SCN;
* :mod:`repro.databus.bootstrap` — the bootstrap server: log +
  snapshot storage serving *consolidated deltas* and *consistent
  snapshots* for long look-back queries;
* :mod:`repro.databus.client` — the client library: progress tracking,
  automatic relay/bootstrap switchover, retry logic, at-least-once
  delivery with window-boundary checkpoints.
"""

from repro.databus.events import (
    DatabusEvent,
    EventFilter,
    partition_filter,
    row_schema_for,
    source_filter,
    watermark_label,
)
from repro.databus.relay import EventBuffer, Relay, capture_from_binlog
from repro.databus.bootstrap import BootstrapServer
from repro.databus.client import DatabusClient, DatabusConsumer

__all__ = [
    "DatabusEvent",
    "EventFilter",
    "partition_filter",
    "row_schema_for",
    "source_filter",
    "watermark_label",
    "EventBuffer",
    "Relay",
    "capture_from_binlog",
    "BootstrapServer",
    "DatabusClient",
    "DatabusConsumer",
]
