"""Additional capture topologies (§III.C, §III.E).

The paper names two capture approaches — "triggers or consuming from
the database replication log" — and describes relays "connected
directly to the database, or to other relays to provide replicated
availability of the change stream".  :mod:`repro.databus.relay` ships
the log-tailing puller; this module adds:

* :class:`TriggerCapture` — push-mode capture: a commit hook on the
  source database forwards each transaction to the relay synchronously,
  the way trigger-based capture behaves (no polling, but the capture
  work runs inside the commit path);
* :class:`RelayChain` — a downstream relay that tails an upstream
  relay instead of a database, giving replicated availability of the
  stream without adding source connections.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.databus.events import DatabusEvent
from repro.databus.relay import DEFAULT_BUFFER, Relay
from repro.sqlstore.binlog import BinlogTransaction
from repro.sqlstore.database import SqlDatabase


class TriggerCapture:
    """Push-mode (trigger-style) capture from a database into a relay.

    Registers a binlog subscription so every commit lands in the relay
    before control returns to the committing transaction — which is
    also what makes triggers costlier for the source than log shipping:
    capture work happens on the database's time.
    """

    def __init__(self, database: SqlDatabase, relay: Relay,
                 buffer_name: str = DEFAULT_BUFFER):
        from repro.databus.events import row_schema_for
        self.database = database
        self.relay = relay
        self.buffer_name = buffer_name
        for table_name in database.table_names():
            if relay.schemas.latest(table_name) is None:
                relay.register_schema(
                    row_schema_for(database.table(table_name).schema))
        self.transactions_captured = 0
        self._listener = self._on_commit
        database.binlog.subscribe(self._listener)

    def _on_commit(self, txn: BinlogTransaction) -> None:
        self.relay.capture_transaction(txn, self.buffer_name)
        self.transactions_captured += 1

    def detach(self) -> None:
        """Drop the trigger (e.g. when switching to log capture)."""
        self.database.binlog.unsubscribe(self._listener)


class RelayChain:
    """A downstream relay fed from an upstream relay's buffer.

    The downstream serves the same windows under the same SCNs, so
    clients can switch between chain members freely; it isolates the
    upstream (and transitively the source database) from the
    downstream's consumer fan-out.
    """

    def __init__(self, upstream: Relay, downstream: Relay,
                 buffer_name: str = DEFAULT_BUFFER):
        if upstream is downstream:
            raise ConfigurationError("a relay cannot chain to itself")
        self.upstream = upstream
        self.downstream = downstream
        self.buffer_name = buffer_name
        # mirror schemas (all versions) so downstream clients can decode
        for name in upstream.schemas.names():
            latest = upstream.schemas.latest(name)
            for version in range(1, latest.version + 1):
                downstream.schemas.register_exact(
                    upstream.schemas.get(name, version))
        self.copied_through = downstream.newest_scn(buffer_name)
        self.windows_copied = 0

    def poll(self, max_events: int = 10_000) -> int:
        """Copy newly available windows downstream; returns events copied.

        Raises :class:`SCNGoneError` if the downstream fell so far
        behind that the upstream evicted its position — the chain must
        then be re-seeded (same rule as any other consumer).
        """
        events = self.upstream.stream_from(self.copied_through,
                                           self.buffer_name,
                                           max_events=max_events)
        if not events:
            return 0
        window: list[DatabusEvent] = []
        copied = 0
        for event in events:
            window.append(event)
            if event.end_of_window:
                self.downstream.buffer(self.buffer_name).append_window(window)
                self.copied_through = event.scn
                self.windows_copied += 1
                copied += len(window)
                window = []
        return copied
