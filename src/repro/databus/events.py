"""Databus CDC events and server-side filters.

"Each change is represented by a Databus CDC event which contains a
sequence number in the commit order of the source database, metadata,
and payload with the serialized change" (§III.C).  Payloads are
serialized with the Avro-style encoder so relays never need source-
schema-specific code; the schema version travels with the event.

Transaction boundaries are preserved with an ``end_of_window`` flag on
the last event of each transaction — consumers checkpoint only at
window boundaries, which is what gives Databus transactional timeline
consistency.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError, InvalidRequestError
from repro.common.serialization import Field, RecordSchema
from repro.sqlstore.binlog import BinlogTransaction, ChangeKind
from repro.sqlstore.table import TableSchema

_TYPE_MAP = {str: "string", int: "long", float: "double",
             bytes: "bytes", bool: "boolean"}


def row_schema_for(table_schema: TableSchema, version: int = 1) -> RecordSchema:
    """Derive an Avro-style record schema from a SQL table schema."""
    fields = []
    for column in table_schema.columns:
        avro_type = _TYPE_MAP.get(column.type, "bytes")
        if column.nullable:
            fields.append(Field(column.name, ["null", avro_type]))
        else:
            fields.append(Field(column.name, avro_type))
    return RecordSchema(table_schema.name, fields, version=version)


@dataclass(frozen=True)
class DatabusEvent:
    """One serialized change, addressable by commit SCN."""

    scn: int
    source: str                  # table / data-source name
    kind: ChangeKind
    key: tuple
    payload: bytes               # Avro-encoded row image (control: label)
    schema_version: int = 1
    end_of_window: bool = False  # last event of its transaction
    timestamp: float = 0.0

    @property
    def size_bytes(self) -> int:
        """Approximate wire size, used for buffer capacity accounting."""
        return len(self.payload) + 64

    @property
    def is_control(self) -> bool:
        """True for watermark/control events.  Control events carry no
        row image — their payload is the raw watermark label — and every
        server-side filter passes them through unchanged, because a
        consumer that misses a watermark cannot bracket a migration
        chunk against the live stream."""
        return self.kind is ChangeKind.WATERMARK

    def key_hash(self) -> int:
        material = repr((self.source, self.key)).encode()
        return int.from_bytes(hashlib.md5(material).digest()[:8], "big")


def watermark_label(event: DatabusEvent) -> str:
    """The label carried by a watermark/control event."""
    if not event.is_control:
        raise InvalidRequestError(f"not a control event: {event!r}")
    return event.payload.decode("utf-8")


EventFilter = Callable[[DatabusEvent], bool]


def source_filter(*sources: str) -> EventFilter:
    """Server-side filter: only events from the named sources.
    Control events always pass — they address the stream, not a source."""
    wanted = set(sources)

    def check(event: DatabusEvent) -> bool:
        return event.is_control or event.source in wanted

    return check


def partition_filter(num_partitions: int, partition: int) -> EventFilter:
    """Server-side filter for partitioned consumer groups (§III.B):
    each consumer instance takes the keys hashing to its bucket.
    Control events pass to every partition — a watermark brackets the
    whole stream, not one key's bucket."""
    if not 0 <= partition < num_partitions:
        raise ConfigurationError(f"partition {partition} out of range")

    def check(event: DatabusEvent) -> bool:
        return event.is_control or \
            event.key_hash() % num_partitions == partition

    return check


def and_filters(*filters: EventFilter) -> EventFilter:
    def check(event: DatabusEvent) -> bool:
        return all(f(event) for f in filters)
    return check


def events_from_transaction(txn: BinlogTransaction,
                            encode: Callable[[str, dict], tuple[bytes, int]],
                            ) -> list[DatabusEvent]:
    """Convert one binlog transaction into its event window.

    ``encode`` maps (table, row) to (payload bytes, schema version) —
    the relay supplies the Avro encoding against its registry.
    """
    events = []
    last = len(txn.changes) - 1
    for i, change in enumerate(txn.changes):
        if change.kind is ChangeKind.WATERMARK:
            # control events skip Avro entirely: the payload is the raw
            # label, version 0, and no schema needs registering
            payload, version = str(change.row["label"]).encode("utf-8"), 0
        else:
            payload, version = encode(change.table, change.row)
        events.append(DatabusEvent(
            scn=txn.scn,
            source=change.table,
            kind=change.kind,
            key=change.key,
            payload=payload,
            schema_version=version,
            end_of_window=(i == last),
            timestamp=txn.timestamp,
        ))
    return events
