"""Declarative data transformations (§III.E future work).

"Future work includes ... supporting declarative data transformations
and multi-tenancy."  A transformation is declared as a plain dict and
applied inside the client library, between the wire event and the
consumer callback:

    {
        "source": "member",                  # which table's events
        "where": ["industry", "==", "tech"], # row predicate
        "project": ["member_id", "headline"],# keep only these fields
        "rename": {"headline": "title"},     # output field names
        "compute": {"id_mod_10": ["member_id", "%", 10]},
    }

Supported predicate operators: ``==``, ``!=``, ``<``, ``<=``, ``>``,
``>=``, ``contains``.  Computed fields support ``+ - * / %`` on one
source field and a constant.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.serialization import decode_record
from repro.databus.client import DatabusConsumer
from repro.databus.events import DatabusEvent
from repro.databus.relay import Relay

_PREDICATE_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "contains": lambda value, needle: needle in value,
}
_ARITHMETIC_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}


@dataclass(frozen=True)
class DeclarativeTransform:
    """A validated, immutable transformation pipeline."""

    source: str | None = None
    where: tuple | None = None              # (field, op, constant)
    project: tuple[str, ...] | None = None
    rename: tuple[tuple[str, str], ...] = ()
    compute: tuple[tuple[str, tuple], ...] = ()  # (out, (field, op, const))

    @classmethod
    def from_spec(cls, spec: dict) -> "DeclarativeTransform":
        unknown = set(spec) - {"source", "where", "project", "rename",
                               "compute"}
        if unknown:
            raise ConfigurationError(f"unknown transform keys {sorted(unknown)}")
        where = None
        if "where" in spec:
            fieldname, op, constant = spec["where"]
            if op not in _PREDICATE_OPS:
                raise ConfigurationError(f"unknown predicate op {op!r}")
            where = (fieldname, op, constant)
        compute = []
        for out_field, expr in spec.get("compute", {}).items():
            fieldname, op, constant = expr
            if op not in _ARITHMETIC_OPS:
                raise ConfigurationError(f"unknown arithmetic op {op!r}")
            compute.append((out_field, (fieldname, op, constant)))
        return cls(
            source=spec.get("source"),
            where=where,
            project=tuple(spec["project"]) if "project" in spec else None,
            rename=tuple(sorted(spec.get("rename", {}).items())),
            compute=tuple(compute),
        )

    def apply_to_row(self, source: str, row: dict) -> dict | None:
        """Transform a decoded row; None means filtered out."""
        if self.source is not None and source != self.source:
            return None
        if self.where is not None:
            fieldname, op, constant = self.where
            value = row.get(fieldname)
            if value is None or not _PREDICATE_OPS[op](value, constant):
                return None
        out = dict(row)
        for out_field, (fieldname, op, constant) in self.compute:
            if fieldname not in out:
                raise ConfigurationError(
                    f"compute references missing field {fieldname!r}")
            out[out_field] = _ARITHMETIC_OPS[op](out[fieldname], constant)
        if self.project is not None:
            out = {k: v for k, v in out.items() if k in self.project
                   or k in {name for name, _ in self.compute}}
        for old_name, new_name in self.rename:
            if old_name in out:
                out[new_name] = out.pop(old_name)
        return out


@dataclass
class TransformedRow:
    """What a transforming subscription delivers."""

    scn: int
    source: str
    key: tuple
    row: dict


class TransformingConsumer(DatabusConsumer):
    """Client-library glue: decode, transform, deliver rows.

    Wraps a plain callback (``on_row``) so applications receive already
    transformed dicts instead of wire events.
    """

    def __init__(self, relay: Relay, transform: DeclarativeTransform,
                 on_row=None):
        self.relay = relay
        self.transform = transform
        self.rows: list[TransformedRow] = []
        self._on_row = on_row
        self.events_seen = 0
        self.rows_delivered = 0

    def on_data_event(self, event: DatabusEvent) -> None:
        self.events_seen += 1
        schema = self.relay.schemas.get(event.source, event.schema_version)
        row = decode_record(schema, event.payload)
        transformed = self.transform.apply_to_row(event.source, row)
        if transformed is None:
            return
        delivered = TransformedRow(event.scn, event.source, event.key,
                                   transformed)
        self.rows.append(delivered)
        self.rows_delivered += 1
        if self._on_row is not None:
            self._on_row(delivered)
