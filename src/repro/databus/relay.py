"""The Databus relay (§III.C).

"The Relay captures changes in the source database, serializes them to
a common binary format and buffers those. ... The serialized events are
stored in a circular in-memory buffer that is used to serve events to
the Databus clients."

The relay provides:

* very low default serving latency (an in-memory suffix scan);
* bounded buffering — old windows are evicted once capacity (bytes or
  events) is exceeded, after which lagging clients get
  :class:`SCNGoneError` and must bootstrap;
* an SCN index for "serve events from a given sequence number S";
* server-side filtering (source and partition filters);
* fan-out to hundreds of consumers with no additional load on the
  source database — consumers only ever touch the relay.

Espresso's usage shards the binlog "into separate event buffers, one
per partition" (§IV.B); :class:`Relay` therefore manages named
:class:`EventBuffer` instances.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.common.errors import ConfigurationError, SCNGoneError
from repro.common.overload import PRIORITY_LIVE, AdmissionController
from repro.common.serialization import RecordSchema, SchemaRegistry, encode_record
from repro.databus.events import DatabusEvent, EventFilter, events_from_transaction
from repro.sqlstore.binlog import BinlogTransaction
from repro.sqlstore.database import SqlDatabase

DEFAULT_BUFFER = "default"


class EventBuffer:
    """A circular in-memory buffer of complete transaction windows.

    Eviction is window-at-a-time so a window is never half-retained —
    partial transactions would break timeline consistency for readers.
    """

    def __init__(self, max_events: int = 100_000,
                 max_bytes: int = 64 * 1024 * 1024):
        if max_events <= 0 or max_bytes <= 0:
            raise ConfigurationError("buffer capacity must be positive")
        self.max_events = max_events
        self.max_bytes = max_bytes
        self._events: deque[DatabusEvent] = deque()
        self._bytes = 0
        self._evicted_through = 0   # highest SCN evicted
        self.events_appended = 0
        self.windows_appended = 0

    @property
    def oldest_scn(self) -> int | None:
        return self._events[0].scn if self._events else None

    @property
    def newest_scn(self) -> int | None:
        return self._events[-1].scn if self._events else None

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._events)

    def append_window(self, events: list[DatabusEvent]) -> None:
        """Append one transaction's events; evict old windows if full."""
        if not events:
            return
        scn = events[0].scn
        if any(e.scn != scn for e in events):
            raise ConfigurationError("a window must share one SCN")
        if not events[-1].end_of_window:
            raise ConfigurationError("window must end with end_of_window")
        newest = self.newest_scn
        if newest is not None and scn <= newest:
            raise ConfigurationError(
                f"windows must arrive in SCN order: {scn} after {newest}")
        for event in events:
            self._events.append(event)
            self._bytes += event.size_bytes
        self.events_appended += len(events)
        self.windows_appended += 1
        self._evict()

    def _evict(self) -> None:
        while (len(self._events) > self.max_events
               or self._bytes > self.max_bytes):
            victim_scn = self._events[0].scn
            while self._events and self._events[0].scn == victim_scn:
                evicted = self._events.popleft()
                self._bytes -= evicted.size_bytes
            self._evicted_through = victim_scn

    @property
    def evicted_through(self) -> int:
        """Highest SCN removed by honest capacity eviction.  Consumers
        behind this position get :class:`SCNGoneError` and bootstrap —
        eviction loses no data, it only moves where it is served from."""
        return self._evicted_through

    def contains_scn(self, scn: int) -> bool:
        """Whether the buffer still holds the window committed at
        ``scn`` — the blame engine's relay-stage interrogation."""
        return any(event.scn == scn for event in self._events)

    def drop_window(self, scn: int) -> int:
        """Silently remove the whole window committed at ``scn``.

        This is a *fault-injection hook* (see
        :class:`repro.audit.inject.ViolationInjector`), not an API a
        real relay has: unlike eviction it leaves ``_evicted_through``
        untouched, so a consumer polling past the gap gets no
        :class:`SCNGoneError` — its checkpoint skips the window without
        any error, exactly the silent-loss failure mode a consistency
        auditor exists to catch.  Returns the number of events removed.
        """
        removed = [event for event in self._events if event.scn == scn]
        if removed:
            self._events = deque(
                event for event in self._events if event.scn != scn)
            self._bytes -= sum(event.size_bytes for event in removed)
        return len(removed)

    def events_since(self, scn: int, event_filter: EventFilter | None = None,
                     max_events: int = 10_000) -> list[DatabusEvent]:
        """Events with SCN strictly greater than ``scn``.

        Only whole windows are returned (the last delivered event has
        ``end_of_window`` set).  Raises :class:`SCNGoneError` when the
        requested position has been evicted — the client must fall back
        to the bootstrap server.
        """
        if scn < self._evicted_through:
            raise SCNGoneError(
                f"SCN {scn} evicted; oldest retained window starts at "
                f"{self.oldest_scn}", oldest_retained=self.oldest_scn)
        out: list[DatabusEvent] = []
        delivered_through: int | None = None
        for event in self._events:
            if event.scn <= scn:
                continue
            if len(out) >= max_events and event.scn != delivered_through:
                break  # stop only at a window boundary
            if event_filter is None or event_filter(event):
                out.append(event)
            delivered_through = event.scn
        # trim a trailing partial window (can't happen with well-formed
        # buffers, but guard anyway)
        while out and not _window_complete(out):
            out.pop()
        return out


def _window_complete(events: list[DatabusEvent]) -> bool:
    return events[-1].end_of_window


class Relay:
    """A shared-nothing relay process managing named event buffers."""

    def __init__(self, name: str = "relay-1", max_events_per_buffer: int = 100_000,
                 max_bytes_per_buffer: int = 64 * 1024 * 1024,
                 admission: AdmissionController | None = None):
        self.name = name
        self._max_events = max_events_per_buffer
        self._max_bytes = max_bytes_per_buffer
        self._buffers: dict[str, EventBuffer] = {}
        self.schemas = SchemaRegistry()
        self.requests_served = 0
        # admission control over the serving path: near-head tailing
        # polls are live-class, catch-up polls declare themselves bulk
        # (see DatabusClient), so a herd of lagging consumers sheds
        # before it can starve the tailing ones
        self.admission = admission

    # -- buffers -----------------------------------------------------------

    def buffer(self, name: str = DEFAULT_BUFFER) -> EventBuffer:
        if name not in self._buffers:
            self._buffers[name] = EventBuffer(self._max_events, self._max_bytes)
        return self._buffers[name]

    def buffer_names(self) -> list[str]:
        return sorted(self._buffers)

    # -- capture ---------------------------------------------------------------

    def register_schema(self, schema: RecordSchema) -> int:
        return self.schemas.register(schema)

    def _encode(self, table: str, row: dict) -> tuple[bytes, int]:
        schema = self.schemas.latest(table)
        if schema is None:
            raise ConfigurationError(f"relay has no schema for source {table!r}")
        return encode_record(schema, row), schema.version

    def capture_transaction(self, txn: BinlogTransaction,
                            buffer_name: str = DEFAULT_BUFFER,
                            route: Callable[[DatabusEvent], str] | None = None
                            ) -> list[DatabusEvent]:
        """Serialize one binlog transaction into the relay.

        With ``route`` set, events are sharded into per-partition
        buffers (Espresso's layout); each shard still closes its own
        window so per-buffer timeline consistency holds.
        """
        events = events_from_transaction(txn, self._encode)
        if route is None:
            self.buffer(buffer_name).append_window(events)
            return events
        shards: dict[str, list[DatabusEvent]] = {}
        for event in events:
            shards.setdefault(route(event), []).append(event)
        for shard_name, shard_events in shards.items():
            closed = [
                DatabusEvent(e.scn, e.source, e.kind, e.key, e.payload,
                             e.schema_version,
                             end_of_window=(i == len(shard_events) - 1),
                             timestamp=e.timestamp)
                for i, e in enumerate(shard_events)
            ]
            self.buffer(shard_name).append_window(closed)
        return events

    # -- serving -------------------------------------------------------------------

    def stream_from(self, scn: int, buffer_name: str = DEFAULT_BUFFER,
                    event_filter: EventFilter | None = None,
                    max_events: int = 10_000,
                    priority: int = PRIORITY_LIVE) -> list[DatabusEvent]:
        if self.admission is not None:
            self.admission.admit(priority, what=f"stream {buffer_name}")
        self.requests_served += 1
        return self.buffer(buffer_name).events_since(scn, event_filter,
                                                     max_events)

    def drop_window(self, scn: int,
                    buffer_name: str = DEFAULT_BUFFER) -> int:
        """Fault-injection hook: silently drop one captured window (see
        :meth:`EventBuffer.drop_window`).  Returns events removed."""
        return self.buffer(buffer_name).drop_window(scn)

    def newest_scn(self, buffer_name: str = DEFAULT_BUFFER) -> int:
        existing = self._buffers.get(buffer_name)
        if existing is None or existing.newest_scn is None:
            return 0
        return existing.newest_scn


class capture_from_binlog:
    """A pull-mode capture adapter: tails a database binlog into a relay.

    "The Databus relay cluster ... pulls from a database, is stateless
    across restarts" (§III.D) — on (re)start it resumes from whatever
    the relay already holds.  Call :meth:`poll` to pull newly committed
    transactions; registration of table schemas happens lazily from the
    database's table definitions.
    """

    def __init__(self, database: SqlDatabase, relay: Relay,
                 buffer_name: str = DEFAULT_BUFFER,
                 route: Callable[[DatabusEvent], str] | None = None):
        from repro.databus.events import row_schema_for
        self.database = database
        self.relay = relay
        self.buffer_name = buffer_name
        self.route = route
        for table_name in database.table_names():
            if relay.schemas.latest(table_name) is None:
                relay.register_schema(
                    row_schema_for(database.table(table_name).schema))
        self.captured_through = relay.newest_scn(buffer_name)

    def poll(self, max_transactions: int = 1000) -> int:
        """Pull committed transactions; returns how many were captured."""
        captured = 0
        for txn in self.database.binlog.read_from(self.captured_through):
            if captured >= max_transactions:
                break
            self.relay.capture_transaction(txn, self.buffer_name, self.route)
            self.captured_through = txn.scn
            captured += 1
        return captured
