"""The Bootstrap server (§III.C, Figure III.3).

"The main task of the bootstrap server is to listen to the stream of
Databus events and provide long-term storage for them."  Two storages:

* **Log storage** — append-only; the *Log writer* adds every event the
  relay delivers.
* **Snapshot storage** — keyed by (source, key); the *Log applier*
  folds log rows so "only the last event for a given row/key is stored".

Two query types:

* **Consolidated delta since T** — only the last of multiple updates to
  the same row since T ("fast playback" of time);
* **Consistent snapshot at U** — a full state dump plus the SCN ``U``
  to resume from.  Because snapshot serving can take a long time while
  writes keep arriving, the server replays all changes committed since
  the snapshot phase started, restoring consistency exactly as the
  paper describes.

Given a :class:`~repro.simnet.disk.Disk`, both storages are durable:
every delivered event is framed into a log WAL and fsynced before the
delivery counts (DESIGN.md §9), and :meth:`BootstrapServer.checkpoint`
folds the snapshot plus its applied-SCN watermark into a snapshot file
(temp-write + atomic replace) and compacts the log down to the rows
beyond the watermark.  Recovery loads the checkpoint, then replays
only log rows with SCN strictly above the watermark — a restarted
bootstrap server never double-applies a window and never skips one.
"""

from __future__ import annotations

import ast
import struct
from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.common.wal import WriteAheadLog, frame, scan_frames
from repro.databus.events import DatabusEvent, EventFilter
from repro.simnet.disk import Disk
from repro.sqlstore.binlog import ChangeKind

_EVENT_META = struct.Struct("<QIBBd")  # scn, schema ver, kind, eow, timestamp
_U32 = struct.Struct("<I")
_WATERMARK = struct.Struct("<Q")
# order is the wire format: only append, never reorder
_KIND_LIST = (ChangeKind.INSERT, ChangeKind.UPDATE, ChangeKind.DELETE,
              ChangeKind.WATERMARK)
_KIND_CODES = {kind: code for code, kind in enumerate(_KIND_LIST)}


def _encode_event(event: DatabusEvent) -> bytes:
    source = event.source.encode()
    key = repr(event.key).encode()
    out = bytearray(_EVENT_META.pack(
        event.scn, event.schema_version, _KIND_CODES[event.kind],
        1 if event.end_of_window else 0, event.timestamp))
    for blob in (source, key, event.payload):
        out.extend(_U32.pack(len(blob)))
        out.extend(blob)
    return bytes(out)


def _decode_event(payload: bytes) -> DatabusEvent:
    scn, version, code, eow, timestamp = _EVENT_META.unpack_from(payload, 0)
    offset = _EVENT_META.size
    blobs = []
    for _ in range(3):
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        blobs.append(bytes(payload[offset:offset + length]))
        offset += length
    source, key_repr, body = blobs
    return DatabusEvent(scn, source.decode(), _KIND_LIST[code],
                        ast.literal_eval(key_repr.decode()), body,
                        schema_version=version, end_of_window=bool(eow),
                        timestamp=timestamp)


class BootstrapServer:
    """Log + snapshot storage with consolidated-delta and snapshot queries."""

    LOG_NAME = "bootstrap.wal"
    SNAPSHOT_NAME = "bootstrap.snapshot"

    def __init__(self, name: str = "bootstrap-1", disk: Disk | None = None):
        self.name = name
        self._log: list[DatabusEvent] = []          # Log storage
        self._snapshot: dict[tuple[str, tuple], DatabusEvent] = {}
        self._applied_through = 0                   # Log applier position
        self._log_index = 0                         # next log row to apply
        self.applied_events = 0
        self.recovered_events = 0
        self._disk = disk
        self._log_wal: WriteAheadLog | None = None
        if disk is not None:
            self._log_wal = WriteAheadLog(self.LOG_NAME, disk=disk)
            self._recover()

    # -- durability / recovery ---------------------------------------------------

    def _recover(self) -> None:
        """Checkpoint + log replay.  Rows at or below the checkpoint
        watermark are already folded into the snapshot, so the replay
        skips them (never double-applies); everything above is re-read
        from the log (never skips)."""
        if self._disk.exists(self.SNAPSHOT_NAME):
            with self._disk.open(self.SNAPSHOT_NAME, "rb") as f:
                frames, _ = scan_frames(f.read())
            payloads = [payload for _, payload in frames]
            (self._applied_through,) = _WATERMARK.unpack(payloads[0])
            for payload in payloads[1:]:
                event = _decode_event(payload)
                self._snapshot[(event.source, event.key)] = event
        watermark = self._applied_through
        for payload in self._log_wal.replay():
            event = _decode_event(payload)
            if event.scn <= watermark:
                continue  # folded into the checkpoint before the crash
            self._log.append(event)
        self.recovered_events = len(self._log)
        self.apply_log()

    def checkpoint(self) -> int:
        """Fold the snapshot + watermark into durable snapshot storage
        and compact the log to the rows beyond it; returns the number
        of log rows compacted away.  No-op without a disk."""
        if self._log_wal is None:
            return 0
        tmp = self.SNAPSHOT_NAME + ".tmp"
        with self._disk.open(tmp, "wb") as f:
            f.write(frame(_WATERMARK.pack(self._applied_through)))
            for key in sorted(self._snapshot, key=repr):
                f.write(frame(_encode_event(self._snapshot[key])))
            f.fsync()
        self._disk.replace(tmp, self.SNAPSHOT_NAME)
        keep = [e for e in self._log if e.scn > self._applied_through]
        compacted = self._log_wal.size_bytes
        self._log_wal.close()
        tmp_log = self.LOG_NAME + ".compact"
        new_wal = WriteAheadLog(tmp_log, disk=self._disk)
        for event in keep:
            new_wal.append(_encode_event(event))
        new_wal.fsync()
        new_wal.close()
        self._disk.replace(tmp_log, self.LOG_NAME)
        # safe: the old WAL is closed above, so a log-writer append that
        # interleaves with the compaction fsyncs raises before touching
        # self._log and the relay redelivers once the new WAL is open
        self._log_wal = WriteAheadLog(self.LOG_NAME, disk=self._disk)  # repro-lint: disable=atomicity-violation
        return compacted - self._log_wal.size_bytes

    # -- log writer ------------------------------------------------------------

    def on_events(self, events: list[DatabusEvent]) -> None:
        """Log writer: append relay events (whole windows, SCN order).

        With durable storage the whole batch is framed and fsynced
        before it lands in the in-memory log — the delivery is only
        acked against bytes that will survive a crash.
        """
        last = self._log[-1].scn if self._log else None
        for event in events:
            if last is not None and event.scn < last:
                raise ConfigurationError(
                    f"bootstrap received out-of-order SCN {event.scn}")
            last = event.scn
        if self._log_wal is not None:
            for event in events:
                self._log_wal.append(_encode_event(event))
            self._log_wal.fsync()
        self._log.extend(events)
        self.apply_log()

    # -- log applier --------------------------------------------------------------

    def apply_log(self) -> int:
        """Fold new log rows into snapshot storage; returns rows applied.

        Only complete windows are applied so the snapshot never holds a
        half-transaction.  Watermark/control events fold like rows but
        each under its own key — the watermark's (label, SCN) pair is
        globally unique — so compaction never merges two watermarks and
        both delta and replay queries pass them through unchanged: a
        lagging migration consumer served by the bootstrap still sees
        every chunk bracket.
        """
        last_closed = None
        for i in range(len(self._log) - 1, self._log_index - 1, -1):
            if self._log[i].end_of_window:
                last_closed = i
                break
        if last_closed is None:
            return 0
        applied = 0
        while self._log_index <= last_closed:
            event = self._log[self._log_index]
            self._snapshot[(event.source, event.key)] = event
            self._applied_through = max(self._applied_through, event.scn)
            self._log_index += 1
            applied += 1
            self.applied_events += 1
        return applied

    # -- queries -------------------------------------------------------------------

    @property
    def high_watermark(self) -> int:
        return self._applied_through

    @property
    def log_length(self) -> int:
        return len(self._log)

    @property
    def snapshot_rows(self) -> int:
        return len(self._snapshot)

    def consolidated_delta(self, since_scn: int,
                           event_filter: EventFilter | None = None
                           ) -> tuple[list[DatabusEvent], int]:
        """Last-update-per-row for every row changed after ``since_scn``.

        Returns (events sorted by SCN, high watermark to resume from).
        The caller replays far fewer events than a full log replay when
        updates are skewed toward hot rows.
        """
        out = [event for event in self._snapshot.values()
               if event.scn > since_scn
               and (event_filter is None or event_filter(event))]
        out.sort(key=lambda e: (e.scn, e.source, repr(e.key)))
        return out, self._applied_through

    def full_replay(self, since_scn: int,
                    event_filter: EventFilter | None = None
                    ) -> tuple[list[DatabusEvent], int]:
        """Every logged event after ``since_scn`` — the ablation baseline
        for the consolidated delta."""
        out = [event for event in self._log
               if event.scn > since_scn
               and (event_filter is None or event_filter(event))]
        return out, self._applied_through

    def consistent_snapshot(self, event_filter: EventFilter | None = None
                            ) -> Iterator[tuple[str, object]]:
        """Serve a consistent snapshot as a two-phase stream.

        Yields ``("row", event)`` items for the state at snapshot start,
        then ``("replay", event)`` items for changes committed while the
        snapshot was being served, and finally ``("scn", U)`` — the
        sequence number from which the client resumes relay consumption.

        The generator cooperates with concurrent appends: rows stream
        one at a time, and writes landing mid-stream are replayed at the
        end, reproducing Figure III.3's protocol.
        """
        snapshot_start_scn = self._applied_through
        keys = sorted(self._snapshot, key=repr)
        for key in keys:
            event = self._snapshot.get(key)
            if event is None:
                continue  # row vanished mid-snapshot; replay will cover it
            if event_filter is None or event_filter(event):
                yield "row", event
        # replay phase: everything applied since the snapshot started
        self.apply_log()
        replayed = [event for event in self._log
                    if event.scn > snapshot_start_scn
                    and (event_filter is None or event_filter(event))]
        for event in replayed:
            yield "replay", event
        yield "scn", self._applied_through
