"""The Bootstrap server (§III.C, Figure III.3).

"The main task of the bootstrap server is to listen to the stream of
Databus events and provide long-term storage for them."  Two storages:

* **Log storage** — append-only; the *Log writer* adds every event the
  relay delivers.
* **Snapshot storage** — keyed by (source, key); the *Log applier*
  folds log rows so "only the last event for a given row/key is stored".

Two query types:

* **Consolidated delta since T** — only the last of multiple updates to
  the same row since T ("fast playback" of time);
* **Consistent snapshot at U** — a full state dump plus the SCN ``U``
  to resume from.  Because snapshot serving can take a long time while
  writes keep arriving, the server replays all changes committed since
  the snapshot phase started, restoring consistency exactly as the
  paper describes.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.databus.events import DatabusEvent, EventFilter


class BootstrapServer:
    """Log + snapshot storage with consolidated-delta and snapshot queries."""

    def __init__(self, name: str = "bootstrap-1"):
        self.name = name
        self._log: list[DatabusEvent] = []          # Log storage
        self._snapshot: dict[tuple[str, tuple], DatabusEvent] = {}
        self._applied_through = 0                   # Log applier position
        self._log_index = 0                         # next log row to apply
        self.applied_events = 0

    # -- log writer ------------------------------------------------------------

    def on_events(self, events: list[DatabusEvent]) -> None:
        """Log writer: append relay events (whole windows, SCN order)."""
        for event in events:
            if self._log and event.scn < self._log[-1].scn:
                raise ConfigurationError(
                    f"bootstrap received out-of-order SCN {event.scn}")
            self._log.append(event)
        self.apply_log()

    # -- log applier --------------------------------------------------------------

    def apply_log(self) -> int:
        """Fold new log rows into snapshot storage; returns rows applied.

        Only complete windows are applied so the snapshot never holds a
        half-transaction.
        """
        last_closed = None
        for i in range(len(self._log) - 1, self._log_index - 1, -1):
            if self._log[i].end_of_window:
                last_closed = i
                break
        if last_closed is None:
            return 0
        applied = 0
        while self._log_index <= last_closed:
            event = self._log[self._log_index]
            self._snapshot[(event.source, event.key)] = event
            self._applied_through = max(self._applied_through, event.scn)
            self._log_index += 1
            applied += 1
            self.applied_events += 1
        return applied

    # -- queries -------------------------------------------------------------------

    @property
    def high_watermark(self) -> int:
        return self._applied_through

    @property
    def log_length(self) -> int:
        return len(self._log)

    @property
    def snapshot_rows(self) -> int:
        return len(self._snapshot)

    def consolidated_delta(self, since_scn: int,
                           event_filter: EventFilter | None = None
                           ) -> tuple[list[DatabusEvent], int]:
        """Last-update-per-row for every row changed after ``since_scn``.

        Returns (events sorted by SCN, high watermark to resume from).
        The caller replays far fewer events than a full log replay when
        updates are skewed toward hot rows.
        """
        out = [event for event in self._snapshot.values()
               if event.scn > since_scn
               and (event_filter is None or event_filter(event))]
        out.sort(key=lambda e: (e.scn, e.source, repr(e.key)))
        return out, self._applied_through

    def full_replay(self, since_scn: int,
                    event_filter: EventFilter | None = None
                    ) -> tuple[list[DatabusEvent], int]:
        """Every logged event after ``since_scn`` — the ablation baseline
        for the consolidated delta."""
        out = [event for event in self._log
               if event.scn > since_scn
               and (event_filter is None or event_filter(event))]
        return out, self._applied_through

    def consistent_snapshot(self, event_filter: EventFilter | None = None
                            ) -> Iterator[tuple[str, object]]:
        """Serve a consistent snapshot as a two-phase stream.

        Yields ``("row", event)`` items for the state at snapshot start,
        then ``("replay", event)`` items for changes committed while the
        snapshot was being served, and finally ``("scn", U)`` — the
        sequence number from which the client resumes relay consumption.

        The generator cooperates with concurrent appends: rows stream
        one at a time, and writes landing mid-stream are replayed at the
        end, reproducing Figure III.3's protocol.
        """
        snapshot_start_scn = self._applied_through
        keys = sorted(self._snapshot, key=repr)
        for key in keys:
            event = self._snapshot.get(key)
            if event is None:
                continue  # row vanished mid-snapshot; replay will cover it
            if event_filter is None or event_filter(event):
                yield "row", event
        # replay phase: everything applied since the snapshot started
        self.apply_log()
        replayed = [event for event in self._log
                    if event.scn > snapshot_start_scn
                    and (event_filter is None or event_filter(event))]
        for event in replayed:
            yield "replay", event
        yield "scn", self._applied_through
