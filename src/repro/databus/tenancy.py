"""Multi-tenancy for relays (§III.E future work).

"Future work includes ... supporting declarative data transformations
and multi-tenancy."  A multi-tenant relay serves many subscriber
organizations from one buffer while preventing any tenant from starving
the rest.  This implementation provides:

* per-tenant registration with a declared events-per-poll quota;
* enforcement at the serve path: a poll never returns more than the
  tenant's quota (rounded up to a window boundary, because partial
  windows would break timeline consistency);
* token-bucket style accounting over a sliding interval so a tenant
  that bursts gets throttled until its bucket refills;
* per-tenant usage metrics for capacity planning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import Clock, WallClock
from repro.common.errors import ConfigurationError, ReproError
from repro.databus.events import DatabusEvent, EventFilter
from repro.databus.relay import DEFAULT_BUFFER, Relay


class QuotaExceededError(ReproError):
    """The tenant exhausted its event budget for the current interval."""

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class TenantQuota:
    """Budget: at most ``events_per_interval`` over ``interval_seconds``."""

    events_per_interval: int
    interval_seconds: float = 1.0

    def __post_init__(self):
        if self.events_per_interval <= 0 or self.interval_seconds <= 0:
            raise ConfigurationError("quota values must be positive")


@dataclass
class _TenantState:
    quota: TenantQuota
    tokens: float = 0.0
    last_refill: float = 0.0
    events_served: int = 0
    polls: int = 0
    throttled: int = 0


class MultiTenantRelay:
    """A quota-enforcing facade over one relay."""

    def __init__(self, relay: Relay, clock: Clock | None = None):
        self.relay = relay
        self.clock = clock or WallClock()
        self._tenants: dict[str, _TenantState] = {}

    # -- registration -----------------------------------------------------

    def register_tenant(self, tenant: str, quota: TenantQuota) -> None:
        if tenant in self._tenants:
            raise ConfigurationError(f"tenant {tenant!r} already registered")
        self._tenants[tenant] = _TenantState(
            quota, tokens=float(quota.events_per_interval),
            last_refill=self.clock.now())

    def _state(self, tenant: str) -> _TenantState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise ConfigurationError(f"unknown tenant {tenant!r}") from None

    # -- quota mechanics ------------------------------------------------------

    def _refill(self, state: _TenantState) -> None:
        now = self.clock.now()
        elapsed = now - state.last_refill
        if elapsed <= 0:
            return
        rate = state.quota.events_per_interval / state.quota.interval_seconds
        state.tokens = min(float(state.quota.events_per_interval),
                           state.tokens + elapsed * rate)
        state.last_refill = now

    # -- serving -------------------------------------------------------------------

    def stream_from(self, tenant: str, scn: int,
                    buffer_name: str = DEFAULT_BUFFER,
                    event_filter: EventFilter | None = None
                    ) -> list[DatabusEvent]:
        """Quota-bounded serve; whole windows only.

        Raises :class:`QuotaExceededError` (with a retry hint) when the
        tenant's bucket is empty.
        """
        state = self._state(tenant)
        state.polls += 1
        self._refill(state)
        if state.tokens < 1.0:
            state.throttled += 1
            rate = (state.quota.events_per_interval
                    / state.quota.interval_seconds)
            raise QuotaExceededError(
                f"tenant {tenant!r} out of quota",
                retry_after=(1.0 - state.tokens) / rate)
        budget = int(state.tokens)
        events = self.relay.stream_from(scn, buffer_name, event_filter,
                                        max_events=budget)
        state.tokens -= len(events)
        state.events_served += len(events)
        return events

    # -- reporting ----------------------------------------------------------------------

    def usage(self, tenant: str) -> dict[str, float]:
        state = self._state(tenant)
        return {
            "events_served": state.events_served,
            "polls": state.polls,
            "throttled": state.throttled,
            "tokens_remaining": round(state.tokens, 3),
        }

    def tenants(self) -> list[str]:
        return sorted(self._tenants)
