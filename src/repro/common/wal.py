"""A CRC32-framed, length-prefixed write-ahead log on a :class:`Disk`.

Every durable component in the reproduction shares one record-log
format, so crash recovery has one set of semantics to reason about:

    [crc32 : 4B][length : 4B][payload]

``crc32`` covers the payload only.  Appends buffer in the (simulated or
real) page cache; :meth:`fsync` moves the durability line.  The repo's
durability contract — stated in DESIGN.md §9 and enforced by the
``durability-unsynced-ack`` lint rule — is *ack ⇒ fsync ⇒ recoverable*:
a component may only acknowledge a write after the WAL frame holding it
has been fsynced.

Recovery (run automatically when the log is opened) replays frames from
the start and **stops at the first bad frame** — a short header, a
length that overruns the file, or a CRC mismatch — then truncates the
torn tail and fsyncs the truncation, so a second crash cannot
resurrect the garbage.  Everything before the bad frame is intact by
construction; everything after it is unreachable (frames are not
self-synchronizing), which is exactly the torn-tail semantics of
Kafka's recovery scan and BDB-JE's log cleaner.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator

from repro.common.errors import ConfigurationError
from repro.common.storage import Disk, LocalDisk

_FRAME = struct.Struct("<II")   # crc32(payload), payload length
FRAME_OVERHEAD = _FRAME.size


def frame(payload: bytes) -> bytes:
    """One encoded frame: header + payload."""
    return _FRAME.pack(zlib.crc32(payload), len(payload)) + payload


def scan_frames(data: bytes) -> tuple[list[tuple[int, bytes]], int]:
    """Parse ``data`` into ``(offset, payload)`` frames.

    Returns the valid frames and the byte offset where the first bad
    frame (or clean EOF) begins — the recovery truncation point.
    """
    frames: list[tuple[int, bytes]] = []
    position = 0
    total = len(data)
    while position + _FRAME.size <= total:
        crc, length = _FRAME.unpack_from(data, position)
        end = position + _FRAME.size + length
        if end > total:
            break  # torn tail: length overruns the file
        payload = data[position + _FRAME.size:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt frame: stop, everything after is unreachable
        frames.append((position, payload))
        position = end
    return frames, position


class WriteAheadLog:
    """Append / fsync / replay over one framed log file."""

    def __init__(self, path: str, disk: Disk | None = None):
        if not path:
            raise ConfigurationError("WAL needs a path")
        self.path = path
        if disk is None:
            disk = LocalDisk()
        self.disk = disk
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        if parent:
            self.disk.makedirs(parent)
        self.appends = 0
        self.fsyncs = 0
        self.recovered_frames = 0
        self.truncated_bytes = 0
        self._synced_end = 0
        self._end = 0
        self._file = self.disk.open(self.path, "ab+")
        self._recover()

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        """Find the good end, truncate the torn tail, fsync the cut."""
        self._file.seek(0)
        data = self._file.read()
        frames, good_end = scan_frames(data)
        self.recovered_frames = len(frames)
        self.truncated_bytes = len(data) - good_end
        if self.truncated_bytes:
            self._file.truncate(good_end)
            self._file.fsync()
        self._end = good_end
        self._synced_end = good_end
        self._file.seek(0, 2)

    def replay(self) -> Iterator[bytes]:
        """Yield every durable payload in append order (re-read from
        disk, so a reopened log and a live one replay identically)."""
        reader = self.disk.open(self.path, "rb")
        try:
            frames, _ = scan_frames(reader.read())
        finally:
            reader.close()
        for _, payload in frames:
            yield payload

    # -- append path ------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Stage one record; returns its byte offset.  NOT yet durable —
        callers must :meth:`fsync` before acknowledging."""
        offset = self._end
        self._file.write(frame(payload))
        self._end += FRAME_OVERHEAD + len(payload)
        self.appends += 1
        return offset

    def fsync(self) -> None:
        """Make every staged record crash-durable."""
        self._file.fsync()
        self._synced_end = self._end
        self.fsyncs += 1

    # -- introspection ----------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self._end

    @property
    def synced_bytes(self) -> int:
        return self._synced_end

    @property
    def unsynced_bytes(self) -> int:
        return self._end - self._synced_end

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
