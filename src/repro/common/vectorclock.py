"""Vector clocks (Lamport [LAM78]) as used by Voldemort (§II.B).

Voldemort versions every tuple with a vector clock and delegates
conflict resolution of concurrent versions to the application.  Two
clocks are *concurrent* when neither dominates the other; a replica
holding concurrent versions surfaces both to the reader.

The implementation is immutable: ``incremented`` and ``merged`` return
new clocks, which keeps versions safe to share between simulated nodes.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Mapping

from repro.common.errors import ConfigurationError


class Occurred(Enum):
    """Relationship between two vector clocks."""

    BEFORE = "before"        # self < other
    AFTER = "after"          # self > other
    EQUAL = "equal"          # identical
    CONCURRENT = "concurrent"  # neither dominates


class VectorClock:
    """An immutable mapping of node id -> logical counter."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping[int, int] | None = None):
        items = dict(entries or {})
        for node, counter in items.items():
            if counter <= 0:
                raise ConfigurationError(
                    f"counter for node {node} must be positive, "
                    f"got {counter}")
        self._entries: tuple[tuple[int, int], ...] = tuple(sorted(items.items()))

    @property
    def entries(self) -> dict[int, int]:
        return dict(self._entries)

    def counter_of(self, node_id: int) -> int:
        for node, counter in self._entries:
            if node == node_id:
                return counter
        return 0

    def incremented(self, node_id: int) -> "VectorClock":
        """Return a copy with ``node_id``'s counter bumped by one."""
        entries = self.entries
        entries[node_id] = entries.get(node_id, 0) + 1
        return VectorClock(entries)

    def merged(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum — the join in the version lattice."""
        entries = self.entries
        for node, counter in other._entries:
            entries[node] = max(entries.get(node, 0), counter)
        return VectorClock(entries)

    def compare(self, other: "VectorClock") -> Occurred:
        self_bigger = False
        other_bigger = False
        nodes = {node for node, _ in self._entries} | {node for node, _ in other._entries}
        for node in sorted(nodes):
            mine, theirs = self.counter_of(node), other.counter_of(node)
            if mine > theirs:
                self_bigger = True
            elif theirs > mine:
                other_bigger = True
        if self_bigger and other_bigger:
            return Occurred.CONCURRENT
        if self_bigger:
            return Occurred.AFTER
        if other_bigger:
            return Occurred.BEFORE
        return Occurred.EQUAL

    def dominates(self, other: "VectorClock") -> bool:
        return self.compare(other) is Occurred.AFTER

    def descends_from(self, other: "VectorClock") -> bool:
        """True when ``self`` is equal to or causally after ``other``."""
        return self.compare(other) in (Occurred.AFTER, Occurred.EQUAL)

    def concurrent_with(self, other: "VectorClock") -> bool:
        return self.compare(other) is Occurred.CONCURRENT

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:
        body = ", ".join(f"{node}:{counter}" for node, counter in self._entries)
        return f"VectorClock({{{body}}})"


def prune_obsolete(clocks_and_values: Iterable[tuple[VectorClock, object]]
                   ) -> list[tuple[VectorClock, object]]:
    """Drop every version dominated by another in the collection.

    This is the read-path reconciliation step: after collecting versions
    from R replicas, only the frontier of concurrent versions survives;
    anything causally older is discarded (and repaired — see
    :mod:`repro.voldemort.repair`).
    """
    versions = list(clocks_and_values)
    survivors: list[tuple[VectorClock, object]] = []
    for i, (clock, value) in enumerate(versions):
        obsolete = False
        for j, (other, _) in enumerate(versions):
            if i == j:
                continue
            relation = clock.compare(other)
            if relation is Occurred.BEFORE:
                obsolete = True
                break
            if relation is Occurred.EQUAL and j < i:
                obsolete = True  # deduplicate identical versions
                break
        if not obsolete:
            survivors.append((clock, value))
    return survivors
