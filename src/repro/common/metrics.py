"""Latency histograms, counters and throughput meters.

The paper reports operational numbers — "10K queries per second at peak
with average latency of 3 ms", "average latency of less than 1 ms" —
so the benchmark harness needs a small, dependency-free metrics layer
that can produce averages and percentiles comparable to those claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, InvalidRequestError


class LatencyHistogram:
    """Fixed-precision histogram of latency samples (seconds).

    Uses logarithmic bucketing between ``min_value`` and ``max_value``
    so memory stays constant no matter how many samples are recorded,
    while percentile error stays within one bucket width (~5%).
    """

    def __init__(self, min_value: float = 1e-7, max_value: float = 100.0,
                 buckets_per_decade: int = 48):
        if min_value <= 0 or max_value <= min_value:
            raise ConfigurationError("require 0 < min_value < max_value")
        self._min = min_value
        self._log_min = math.log(min_value)
        decades = math.log10(max_value / min_value)
        self._bucket_count = max(1, int(math.ceil(decades * buckets_per_decade))) + 1
        self._scale = self._bucket_count / (math.log(max_value) - self._log_min)
        self._counts = [0] * (self._bucket_count + 1)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._min_seen = math.inf

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise InvalidRequestError("latency cannot be negative")
        self._total += 1
        self._sum += seconds
        self._max = max(self._max, seconds)
        self._min_seen = min(self._min_seen, seconds)
        self._counts[self._bucket_index(seconds)] += 1

    def _bucket_index(self, seconds: float) -> int:
        if seconds < self._min:
            return 0
        idx = int((math.log(seconds) - self._log_min) * self._scale) + 1
        return min(idx, self._bucket_count)

    def _bucket_upper_bound(self, idx: int) -> float:
        if idx <= 0:
            return self._min
        return math.exp(self._log_min + idx / self._scale)

    @property
    def count(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return 0.0 if self._total == 0 else self._min_seen

    def percentile(self, p: float) -> float:
        """Return the latency at percentile ``p`` (0 < p <= 100)."""
        if not 0 < p <= 100:
            raise InvalidRequestError("percentile must be in (0, 100]")
        if self._total == 0:
            return 0.0
        target = math.ceil(self._total * p / 100.0)
        seen = 0
        for idx, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                if idx >= self._bucket_count:
                    return self._max  # overflow bucket: clamp to observed max
                return min(self._bucket_upper_bound(idx), self._max)
        return self._max

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self._total),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self._max,
        }


@dataclass
class Counter:
    """Monotonic event counter."""

    value: int = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise InvalidRequestError("counters only move forward")
        self.value += by


class CounterFamily:
    """A family of counters distinguished by label sets — the scrapable
    shape for per-constraint violation/mismatch counts (one family
    ``audit.violations``, one child per ``constraint=…,kind=…``).

    Label order never matters: children are keyed by the sorted label
    items, so ``labels(a=1, b=2)`` and ``labels(b=2, a=1)`` are the same
    counter.
    """

    def __init__(self, name: str):
        if not name:
            raise ConfigurationError("a counter family needs a name")
        self.name = name
        self._children: dict[tuple[tuple[str, str], ...], Counter] = {}

    def labels(self, **labels: object) -> Counter:
        """The child counter for one label set (created on first use)."""
        if not labels:
            raise InvalidRequestError(
                f"family {self.name!r}: label a child or use a plain counter")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        if key not in self._children:
            self._children[key] = Counter()
        return self._children[key]

    def value(self, **labels: object) -> int:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        return child.value if child is not None else 0

    def total(self) -> int:
        return sum(child.value for child in self._children.values())

    def __len__(self) -> int:
        return len(self._children)

    def as_dict(self) -> dict[str, int]:
        """``{"k=v,k2=v2": count}`` with deterministic ordering."""
        out: dict[str, int] = {}
        for key in sorted(self._children):
            label_str = ",".join(f"{k}={v}" for k, v in key)
            out[label_str] = self._children[key].value
        return out


@dataclass
class Meter:
    """Throughput meter: events over an interval measured by a clock."""

    started_at: float
    events: int = 0
    bytes: int = 0

    def mark(self, events: int = 1, nbytes: int = 0) -> None:
        self.events += events
        self.bytes += nbytes

    def events_per_second(self, now: float) -> float:
        elapsed = now - self.started_at
        return self.events / elapsed if elapsed > 0 else 0.0

    def bytes_per_second(self, now: float) -> float:
        elapsed = now - self.started_at
        return self.bytes / elapsed if elapsed > 0 else 0.0


@dataclass
class MetricsRegistry:
    """Named metrics for one component, cheap enough to always enable."""

    histograms: dict[str, LatencyHistogram] = field(default_factory=dict)
    counters: dict[str, Counter] = field(default_factory=dict)
    families: dict[str, CounterFamily] = field(default_factory=dict)

    def histogram(self, name: str) -> LatencyHistogram:
        if name not in self.histograms:
            self.histograms[name] = LatencyHistogram()
        return self.histograms[name]

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter()
        return self.counters[name]

    def family(self, name: str) -> CounterFamily:
        if name not in self.families:
            self.families[name] = CounterFamily(name)
        return self.families[name]

    def snapshot(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for name, hist in self.histograms.items():
            out[name] = hist.summary()
        for name, counter in self.counters.items():
            out[name] = {"count": float(counter.value)}
        for name, family in self.families.items():
            for label_str, value in family.as_dict().items():
                out[f"{name}{{{label_str}}}"] = {"count": float(value)}
        return out


def percentile_of_sorted(sorted_samples: list[float], p: float) -> float:
    """Exact percentile of an already-sorted sample list (for benches)."""
    if not sorted_samples:
        return 0.0
    if not 0 < p <= 100:
        raise ValueError("percentile must be in (0, 100]")
    rank = max(0, math.ceil(len(sorted_samples) * p / 100.0) - 1)
    return sorted_samples[rank]
