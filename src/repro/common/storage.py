"""The storage-device protocol every durable component programs against.

This module is the *bottom* of the storage stack: it defines the
:class:`Disk` / :class:`DiskFile` protocols plus :class:`LocalDisk`,
the pass-through implementation backed by the real filesystem.  The
fault-injecting simulated implementation (:class:`~repro.simnet.disk.
SimDisk`) lives in :mod:`repro.simnet.disk` and *implements* these
protocols — the dependency points upward (simnet → common), never
downward, which is what lets :mod:`repro.common.wal` default to a
:class:`LocalDisk` without ``common`` importing a simulation layer
(the layering contract in :mod:`repro.analysis.architecture` keeps it
that way).

The one semantic addition over builtin files is the explicit
:meth:`DiskFile.fsync`: writes land in the (real or simulated) page
cache immediately, and only an fsync moves the durability line — the
contract DESIGN.md §9 states as *acked ⇒ fsynced ⇒ recoverable*.
"""

from __future__ import annotations

import os


class DiskFile:
    """The file-handle protocol durable components program against."""

    def read(self, size: int = -1) -> bytes:
        raise NotImplementedError

    def write(self, data: bytes) -> int:
        raise NotImplementedError

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        raise NotImplementedError

    def tell(self) -> int:
        raise NotImplementedError

    def truncate(self, size: int) -> int:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def fsync(self) -> None:
        """Force written bytes to survive a crash (the durability line)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    def __enter__(self) -> "DiskFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Disk:
    """The directory-level protocol (open/list/remove/rename)."""

    def open(self, path: str, mode: str = "rb") -> DiskFile:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def listdir(self, path: str) -> list[str]:
        raise NotImplementedError

    def getsize(self, path: str) -> int:
        raise NotImplementedError

    def remove(self, path: str) -> None:
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        raise NotImplementedError

    def makedirs(self, path: str) -> None:
        raise NotImplementedError


# -- real filesystem ---------------------------------------------------------


class _LocalFile(DiskFile):
    """Wraps a real file object, adding the explicit ``fsync``."""

    def __init__(self, raw):
        self._raw = raw

    def read(self, size: int = -1) -> bytes:
        return self._raw.read(size)

    def write(self, data: bytes) -> int:
        return self._raw.write(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def truncate(self, size: int) -> int:
        return self._raw.truncate(size)

    def flush(self) -> None:
        self._raw.flush()

    def fsync(self) -> None:
        self._raw.flush()
        os.fsync(self._raw.fileno())

    def close(self) -> None:
        self._raw.close()

    @property
    def closed(self) -> bool:
        return self._raw.closed


class LocalDisk(Disk):
    """Pass-through to the host filesystem (no fault injection)."""

    def open(self, path: str, mode: str = "rb") -> DiskFile:
        return _LocalFile(open(path, mode))

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> list[str]:
        return sorted(os.listdir(path))

    def getsize(self, path: str) -> int:
        return os.path.getsize(path)

    def remove(self, path: str) -> None:
        os.remove(path)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)
