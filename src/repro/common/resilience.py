"""Shared resilience primitives: retries, deadlines, circuit breakers.

The paper's systems are designed around "frequent transient and
short-term failures" (Voldemort §II.A): quorums route around down
replicas, Databus clients switch from relay to bootstrap, Kafka
consumers retry rebalances, Espresso routers follow Helix failovers.
Each system used to carry its own ad-hoc loop; this module is the one
vocabulary they all share:

* :class:`RetryPolicy` — bounded exponential backoff with jitter.
  Delays are computed from an injected :class:`random.Random`, so a
  seeded RNG makes every retry schedule reproducible in tests.
* :class:`Deadline` — an end-to-end time budget created once at the
  edge and passed down through hops; each hop clamps its own timeout
  to what remains, and retry loops stop when the budget is gone.
* :class:`CircuitBreaker` — a per-target closed → open → half-open
  state machine generalizing the Voldemort success-ratio failure
  detector: a target whose success ratio drops below a threshold is
  not called at all until a recovery timeout elapses, after which a
  single probe is let through.
* :func:`call_with_retries` — the engine tying the three together,
  counting every attempt, retry, breaker transition, and deadline
  exhaustion through a :class:`~repro.common.metrics.MetricsRegistry`.

All timing flows through an injected :class:`~repro.common.clock.Clock`
(`clock.sleep` on a :class:`SimClock` advances simulated time and fires
pending events, so failure-detector probes and breaker recovery windows
interleave deterministically with the retry schedule).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.common.clock import Clock
from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    InvalidRequestError,
    NodeUnavailableError,
)
from repro.common.metrics import MetricsRegistry


class Deadline:
    """A per-request time budget that shrinks across hops.

    Created once at the request edge; every downstream hop calls
    :meth:`clamp` to bound its own timeout by the remaining budget and
    :meth:`check` before starting expensive work.
    """

    __slots__ = ("clock", "expires_at")

    def __init__(self, clock: Clock, budget: float):
        if budget <= 0:
            raise ConfigurationError(f"deadline budget must be positive: {budget}")
        self.clock = clock
        self.expires_at = clock.now() + budget

    @classmethod
    def after(cls, clock: Clock, budget: float) -> "Deadline":
        return cls(clock, budget)

    def remaining(self) -> float:
        return max(0.0, self.expires_at - self.clock.now())

    @property
    def expired(self) -> bool:
        return self.clock.now() >= self.expires_at

    def check(self, what: str = "request") -> None:
        if self.expired:
            raise DeadlineExceededError(
                f"{what} deadline exhausted at t={self.clock.now():.4f}")

    def clamp(self, timeout: float) -> float:
        """The per-hop timeout: never more than the remaining budget."""
        return min(timeout, self.remaining())


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with proportional jitter.

    ``max_attempts`` counts the first try; a policy of 1 never retries.
    The delay before retry *k* (1-based) is
    ``min(max_delay, base_delay * multiplier**(k-1))`` scaled into
    ``[1 - jitter, 1]`` by the injected RNG — deterministic whenever
    the RNG is seeded.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError("require 0 <= base_delay <= max_delay")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        """Delay before 1-based retry ``retry_number``."""
        if retry_number < 1:
            raise InvalidRequestError("retry_number is 1-based")
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** (retry_number - 1))
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter + self.jitter * rng.random())

    def delays(self, rng: random.Random) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` delays)."""
        for retry_number in range(1, self.max_attempts):
            yield self.backoff(retry_number, rng)


NO_RETRY = RetryPolicy(max_attempts=1)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-target closed → open → half-open breaker.

    Closed: calls flow, outcomes feed a sliding window.  When the
    window's success ratio drops below ``failure_threshold`` (with at
    least ``minimum_samples`` observed) the breaker opens.  Open: calls
    are rejected without touching the target until ``reset_timeout``
    elapses on the injected clock.  Half-open: probes are admitted;
    ``half_open_successes`` consecutive successes close the breaker,
    any failure re-opens it.

    This generalizes the Voldemort success-ratio failure detector
    (§II.B) into a primitive every client path can share; transitions
    are counted on the optional metrics registry as
    ``<name>.breaker.opened`` / ``.closed`` / ``.half_open`` /
    ``.rejected``.
    """

    def __init__(self, clock: Clock, name: str = "breaker",
                 failure_threshold: float = 0.5, window: int = 16,
                 minimum_samples: int = 4, reset_timeout: float = 1.0,
                 half_open_successes: int = 1,
                 metrics: MetricsRegistry | None = None):
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError("failure_threshold must be in (0, 1]")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 1 <= minimum_samples <= window:
            raise ConfigurationError(
                "require 1 <= minimum_samples <= window")
        if reset_timeout <= 0:
            raise ConfigurationError("reset_timeout must be positive")
        if half_open_successes < 1:
            raise ConfigurationError("half_open_successes must be >= 1")
        self.clock = clock
        self.name = name
        self.failure_threshold = failure_threshold
        self.minimum_samples = minimum_samples
        self.reset_timeout = reset_timeout
        self.half_open_successes = half_open_successes
        self.metrics = metrics
        self._outcomes: deque[int] = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_successes = 0

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"{self.name}.{event}").increment()

    @property
    def state(self) -> str:
        """Current state; an open breaker whose reset timeout elapsed
        reads as half-open."""
        if self._state == OPEN and \
                self.clock.now() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._probe_successes = 0
            self._count("breaker.half_open")
        return self._state

    def success_ratio(self) -> float:
        if not self._outcomes:
            return 1.0
        return sum(self._outcomes) / len(self._outcomes)

    def allow(self) -> bool:
        """May a call proceed right now?"""
        state = self.state
        if state == OPEN:
            self._count("breaker.rejected")
            return False
        return True

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._close()
            return
        self._outcomes.append(1)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self._open()  # the probe failed; back to open
            return
        self._outcomes.append(0)
        if (self._state == CLOSED
                and len(self._outcomes) >= self.minimum_samples
                and self.success_ratio() < self.failure_threshold):
            self._open()

    def reset(self) -> None:
        """Force-close: an external signal (failure-detector probe,
        operator action) says the target recovered."""
        if self._state != CLOSED:
            self._close()
        else:
            self._outcomes.clear()

    def _open(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock.now()
        self._count("breaker.opened")

    def _close(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._probe_successes = 0
        self._count("breaker.closed")


def call_with_retries(fn: Callable, *, clock: Clock,
                      policy: RetryPolicy | None = None,
                      rng: random.Random | None = None,
                      retry_on: tuple[type[BaseException], ...] = (
                          NodeUnavailableError,),
                      deadline: Deadline | None = None,
                      breaker: CircuitBreaker | None = None,
                      metrics: MetricsRegistry | None = None,
                      name: str = "call",
                      on_retry: Callable[[int, BaseException], None] | None = None):
    """Run ``fn`` under the unified retry/breaker/deadline discipline.

    * Exceptions in ``retry_on`` are retried per ``policy`` (backoff
      slept on ``clock``); anything else propagates immediately.
    * ``deadline`` caps the loop: backoff never sleeps past it, and an
      exhausted budget raises :class:`DeadlineExceededError` (counted
      as ``<name>.deadline_exceeded``).
    * ``breaker`` gates each attempt; a rejected first attempt raises
      :class:`CircuitOpenError`.
    * ``on_retry(retry_number, exc)`` runs before each backoff sleep —
      the hook systems use for repair work between attempts (Kafka
      leader re-election, Espresso Helix failover).

    Counted metrics: ``<name>.attempts``, ``<name>.retries``,
    ``<name>.exhausted``, ``<name>.deadline_exceeded``.
    """
    policy = policy or NO_RETRY
    rng = rng or random.Random(0)
    last_exc: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None and deadline.expired:
            if metrics is not None:
                metrics.counter(f"{name}.deadline_exceeded").increment()
            raise DeadlineExceededError(
                f"{name} deadline exhausted after {attempt - 1} attempts"
            ) from last_exc
        if breaker is not None and not breaker.allow():
            if last_exc is not None:
                raise last_exc
            raise CircuitOpenError(f"{name}: circuit open, call rejected")
        if metrics is not None:
            metrics.counter(f"{name}.attempts").increment()
        try:
            result = fn()
        except retry_on as exc:
            if breaker is not None:
                breaker.record_failure()
            last_exc = exc
            if attempt == policy.max_attempts:
                break
            delay = policy.backoff(attempt, rng)
            if deadline is not None:
                if deadline.remaining() <= 0:
                    continue  # loop re-enters and raises DeadlineExceeded
                delay = min(delay, deadline.remaining())
            if metrics is not None:
                metrics.counter(f"{name}.retries").increment()
            if on_retry is not None:
                on_retry(attempt, exc)
            clock.sleep(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result
    if metrics is not None:
        metrics.counter(f"{name}.exhausted").increment()
    raise last_exc
