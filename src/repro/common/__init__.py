"""Shared substrate: clocks, errors, hashing, vector clocks, schemas, metrics."""

from repro.common.atomic import atomic_section
from repro.common.clock import Clock, SimClock, WallClock
from repro.common.metrics import Counter, LatencyHistogram, Meter, MetricsRegistry
from repro.common.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    call_with_retries,
)
from repro.common.ring import HashRing, Node, Zone, build_balanced_ring, hash_key
from repro.common.serialization import (
    Field,
    RecordSchema,
    SchemaRegistry,
    check_compatible,
    decode_record,
    decode_with_resolution,
    encode_record,
)
from repro.common.vectorclock import Occurred, VectorClock, prune_obsolete
from repro.common.wal import WriteAheadLog, frame, scan_frames

__all__ = [
    "atomic_section",
    "Clock",
    "SimClock",
    "WallClock",
    "Counter",
    "LatencyHistogram",
    "Meter",
    "MetricsRegistry",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "call_with_retries",
    "HashRing",
    "Node",
    "Zone",
    "build_balanced_ring",
    "hash_key",
    "Field",
    "RecordSchema",
    "SchemaRegistry",
    "check_compatible",
    "decode_record",
    "decode_with_resolution",
    "encode_record",
    "Occurred",
    "VectorClock",
    "prune_obsolete",
    "WriteAheadLog",
    "frame",
    "scan_frames",
]
