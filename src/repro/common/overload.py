"""Overload-robustness primitives: admission control, load shedding,
adaptive concurrency, and hedged requests.

The paper's four systems all sit on LinkedIn's live-site serving path,
where a traffic spike or a limping host must degrade service gracefully
rather than collapse it.  PR 1's resilience layer answers *dead* nodes
(retries, breakers, deadlines); this module answers *overloaded* and
*slow* ones, and the two compose: shed first, then breaker-gate, then
retry within the deadline budget.

Vocabulary (the DESIGN.md §12 contract):

* **Priority classes** — live-site reads outrank writes, which outrank
  replication/bootstrap traffic.  Under pressure the classes shed in
  strict reverse order; bulk work never starves a member-facing read.
* :class:`TokenBucket` — seeded-clock token bucket; the base rate
  limiter everything else builds on.
* :class:`AdmissionController` — a token bucket with per-class
  reservations: bulk traffic is only admitted while plenty of headroom
  remains, writes a bit longer, live reads down to the last token.
  Rejections raise :class:`~repro.common.errors.ServerOverloadedError`
  with a ``retry_after`` hint — *before* any downstream work happens.
* :class:`CoDelShedder` — CoDel-style queue shedding: a queue whose
  delay stays above ``target`` for a full ``interval`` enters dropping
  mode and sheds by priority class until the delay recovers.  Unlike a
  hard bound it tolerates bursts; unlike tail-drop it keeps standing
  queues from forming at all.
* :class:`ConcurrencyLimiter` — gradient/AIMD adaptive concurrency: a
  latency sample well above the smoothed baseline (or an explicit
  overload signal) multiplicatively shrinks the in-flight limit; clean
  successes additively grow it back.  The Kafka producer uses it as
  backpressure instead of buffering without bound.
* :class:`HedgedCall` — tail-latency hedging: when the primary replica
  has not answered within a p99-based delay, launch one backup request
  to the next replica and keep whichever answers first (the loser is
  cancelled).  Turns one limping replica's tail into ~p99 + a fast
  replica's median.

Everything takes an injected :class:`~repro.common.clock.Clock` and is
fully deterministic under a :class:`SimClock` — the overload chaos
tests byte-compare whole scenario traces.
"""

from __future__ import annotations

from typing import Callable

from repro.common.clock import Clock
from repro.common.errors import (
    BackpressureError,
    ConfigurationError,
    NodeUnavailableError,
    ServerOverloadedError,
)
from repro.common.metrics import LatencyHistogram, MetricsRegistry

#: Priority classes, most to least important.  Lower number = shed last.
PRIORITY_LIVE = 0    # live-site reads (member-facing)
PRIORITY_WRITE = 1   # writes
PRIORITY_BULK = 2    # replication, bootstrap, catch-up, repair

PRIORITY_NAMES = {PRIORITY_LIVE: "live", PRIORITY_WRITE: "write",
                  PRIORITY_BULK: "bulk"}


class TokenBucket:
    """A clock-driven token bucket: ``rate`` tokens/second, holding at
    most ``burst``.  Starts full."""

    def __init__(self, clock: Clock, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self.clock = clock
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last_refill = clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        if now > self._last_refill:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last_refill) * self.rate)
            self._last_refill = now

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


class AdmissionController:
    """Token-bucket admission with per-priority-class reservations.

    A class is admitted only while the bucket still holds at least
    ``reserve[priority] * burst`` tokens *after* the acquisition — so
    as tokens drain, bulk traffic sheds first, then writes, and live
    reads keep flowing until the bucket is truly dry.  This is the
    "live-site reads > writes > replication/bootstrap" ordering from
    the paper's operational posture, enforced at the front door.

    ``admit`` raises :class:`ServerOverloadedError` (with a
    ``retry_after`` hint computed from the refill rate) and must be
    called *before* breakers, detectors, or any per-replica work: a
    shed request consumes nothing downstream.
    """

    DEFAULT_RESERVE = {PRIORITY_LIVE: 0.0, PRIORITY_WRITE: 0.15,
                       PRIORITY_BULK: 0.4}

    def __init__(self, clock: Clock, rate: float, burst: float | None = None,
                 reserve: dict[int, float] | None = None,
                 metrics: MetricsRegistry | None = None,
                 name: str = "admission"):
        self.bucket = TokenBucket(clock, rate, burst if burst is not None
                                  else max(1.0, rate * 0.1))
        self.reserve = dict(self.DEFAULT_RESERVE)
        if reserve:
            self.reserve.update(reserve)
        self.metrics = metrics
        self.name = name
        self.admitted = 0
        self.shed = 0

    def _count(self, event: str, priority: int) -> None:
        if self.metrics is not None:
            label = PRIORITY_NAMES.get(priority, str(priority))
            self.metrics.counter(f"{self.name}.{event}.{label}").increment()

    def _floor(self, priority: int) -> float:
        return self.reserve.get(priority, 0.0) * self.bucket.burst

    def try_admit(self, priority: int = PRIORITY_LIVE,
                  cost: float = 1.0) -> bool:
        floor = self._floor(priority)
        if self.bucket.available >= floor + cost and \
                self.bucket.try_acquire(cost):
            self.admitted += 1
            self._count("admitted", priority)
            return True
        self.shed += 1
        self._count("shed", priority)
        return False

    def admit(self, priority: int = PRIORITY_LIVE, cost: float = 1.0,
              what: str = "request") -> None:
        if not self.try_admit(priority, cost):
            deficit = self._floor(priority) + cost - self.bucket.available
            raise ServerOverloadedError(
                f"{what} shed ({PRIORITY_NAMES.get(priority, priority)} "
                f"class): admission tokens exhausted",
                retry_after=max(deficit, 0.0) / self.bucket.rate)


class CoDelShedder:
    """CoDel-style controlled-delay shedding with priority classes.

    Feed every arrival's observed queueing delay to :meth:`offer`; the
    request should be shed when it returns True.  The state machine is
    the CoDel idea adapted to admission time: a queue delay below
    ``target`` keeps the shedder dormant (bursts are free); once the
    delay has stayed above ``target`` for a full ``interval`` a
    standing queue exists and dropping mode begins.  While dropping,
    each class compares the delay against its own inflated target —
    bulk sheds at ``target``, writes at ``2×target``, live reads at
    ``4×target`` — so the standing queue is drained from the least
    important traffic first.  Any sample back under ``target`` exits
    dropping mode.
    """

    def __init__(self, clock: Clock, target: float = 0.005,
                 interval: float = 0.1,
                 metrics: MetricsRegistry | None = None,
                 name: str = "codel"):
        if target <= 0 or interval <= 0:
            raise ConfigurationError("target and interval must be positive")
        self.clock = clock
        self.target = target
        self.interval = interval
        self.metrics = metrics
        self.name = name
        self._first_above: float | None = None
        self.dropping = False
        self.passed = 0
        self.shed = 0

    def _target_for(self, priority: int) -> float:
        # live 4x, write 2x, bulk 1x — lower classes shed earlier
        return self.target * (1 << (PRIORITY_BULK - min(priority, PRIORITY_BULK)))

    def offer(self, queue_delay: float, priority: int = PRIORITY_BULK) -> bool:
        """True = shed this request; False = let it queue."""
        now = self.clock.now()
        if queue_delay < self.target:
            self._first_above = None
            self.dropping = False
            self.passed += 1
            return False
        if self._first_above is None:
            self._first_above = now + self.interval
        if not self.dropping and now >= self._first_above:
            self.dropping = True
        if self.dropping and queue_delay >= self._target_for(priority):
            self.shed += 1
            if self.metrics is not None:
                self.metrics.counter(
                    f"{self.name}.shed."
                    f"{PRIORITY_NAMES.get(priority, priority)}").increment()
            return True
        self.passed += 1
        return False


class ConcurrencyLimiter:
    """Gradient/AIMD adaptive concurrency limit.

    ``try_acquire`` admits work while fewer than ``limit`` operations
    are in flight.  ``release`` feeds the outcome back:

    * an explicit overload signal (timeout, shed, transport failure)
      multiplicatively shrinks the limit (``limit *= decrease``);
    * a success whose latency exceeds ``latency_factor ×`` the smoothed
      baseline is a *gradient* overload — same shrink, no error needed
      (this is how gray slowness is caught before anything fails);
    * a clean success additively grows the limit by ``1/limit`` (one
      extra slot per round trip of the window, classic AIMD probing)
      and updates the baseline by exponential smoothing.
    """

    def __init__(self, initial: int = 16, min_limit: int = 1,
                 max_limit: int = 1024, decrease: float = 0.7,
                 latency_factor: float = 2.0, smoothing: float = 0.9,
                 metrics: MetricsRegistry | None = None,
                 name: str = "limiter"):
        if not 1 <= min_limit <= initial <= max_limit:
            raise ConfigurationError(
                "require 1 <= min_limit <= initial <= max_limit")
        if not 0.0 < decrease < 1.0:
            raise ConfigurationError("decrease must be in (0, 1)")
        if latency_factor <= 1.0:
            raise ConfigurationError("latency_factor must be > 1")
        if not 0.0 <= smoothing < 1.0:
            raise ConfigurationError("smoothing must be in [0, 1)")
        self._limit = float(initial)
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.decrease = decrease
        self.latency_factor = latency_factor
        self.smoothing = smoothing
        self.metrics = metrics
        self.name = name
        self.in_flight = 0
        self.baseline_latency: float | None = None
        self.overload_shrinks = 0

    @property
    def limit(self) -> int:
        return int(self._limit)

    def try_acquire(self) -> bool:
        if self.in_flight >= self.limit:
            if self.metrics is not None:
                self.metrics.counter(f"{self.name}.rejected").increment()
            return False
        self.in_flight += 1
        return True

    def acquire(self, what: str = "request") -> None:
        if not self.try_acquire():
            raise BackpressureError(
                f"{what}: concurrency limit {self.limit} reached "
                f"({self.in_flight} in flight)")

    def release(self, latency: float | None = None,
                overloaded: bool = False) -> None:
        self.in_flight = max(0, self.in_flight - 1)
        if overloaded:
            self._shrink()
            return
        if latency is None:
            return
        if self.baseline_latency is None:
            self.baseline_latency = latency
            return
        if latency > self.baseline_latency * self.latency_factor:
            self._shrink()  # gradient overload: latency blew past baseline
        else:
            self._limit = min(float(self.max_limit),
                              self._limit + 1.0 / self._limit)
            self.baseline_latency = (self.smoothing * self.baseline_latency
                                     + (1.0 - self.smoothing) * latency)

    def _shrink(self) -> None:
        self._limit = max(float(self.min_limit), self._limit * self.decrease)
        self.overload_shrinks += 1
        if self.metrics is not None:
            self.metrics.counter(f"{self.name}.shrinks").increment()


#: An attempt function: targets one candidate, returns (result,
#: simulated latency).  Transport failures should carry a
#: ``simulated_latency`` attribute (SimNetwork exceptions do).
AttemptFn = Callable[[object], tuple[object, float]]


class HedgedCall:
    """Launch a backup request after a p99-based delay; keep the winner.

    The hedge delay tracks the p99 of *effective* latencies seen so far
    (clamped to ``min_delay``; ``fallback_delay`` until ``warmup``
    samples exist), so hedges fire for roughly the slowest 1% of
    requests — the standard "tied request" discipline that buys a large
    tail-latency cut for ~1% extra load.  Because the simulated network
    reports each call's full latency synchronously, the race is
    resolved arithmetically: the backup starts ``delay`` after the
    primary, and whichever *finishes* first wins; the loser is
    cancelled (its server-side work is already booked — cancellation
    saves the client's wait, not the server's capacity, exactly as in
    real systems).
    """

    def __init__(self, min_delay: float = 0.001, fallback_delay: float = 0.05,
                 percentile: float = 99.0, warmup: int = 20,
                 median_multiplier: float = 3.0,
                 metrics: MetricsRegistry | None = None,
                 name: str = "hedge"):
        if min_delay < 0 or fallback_delay < min_delay:
            raise ConfigurationError(
                "require 0 <= min_delay <= fallback_delay")
        if median_multiplier <= 1.0:
            raise ConfigurationError("median_multiplier must be > 1")
        self.min_delay = min_delay
        self.fallback_delay = fallback_delay
        self.percentile = percentile
        self.warmup = warmup
        self.median_multiplier = median_multiplier
        self.histogram = LatencyHistogram()
        self.metrics = metrics
        self.name = name
        self.launched = 0
        self.backup_wins = 0

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"{self.name}.{event}").increment()

    def hedge_delay(self) -> float:
        """Current backup-launch delay: the observed p99, clamped to
        ``median_multiplier ×`` the median.  The clamp matters under a
        *persistent* gray failure: when a limping replica makes slow
        reads a few percent of traffic, the raw p99 converges to the
        inflated latency and a pure-p99 delay would quietly turn the
        hedge off — exactly when it is most needed."""
        if self.histogram.count < self.warmup:
            return self.fallback_delay
        delay = min(self.histogram.percentile(self.percentile),
                    self.histogram.percentile(50.0) * self.median_multiplier)
        return max(self.min_delay, delay)

    def run(self, targets: list, attempt: AttemptFn
            ) -> tuple[object, object, float, bool]:
        """Call ``attempt`` on ``targets[0]``, hedging to ``targets[1]``.

        Returns ``(winning_target, result, effective_latency, hedged)``.
        A primary *failure* (unreachable/shed) falls through to the
        backup immediately — the hedge doubles as failover.  With a
        single target the primary's outcome stands alone.
        """
        if not targets:
            raise ConfigurationError("hedged call needs at least one target")
        delay = self.hedge_delay()
        primary = targets[0]
        try:
            result, latency = attempt(primary)
        except (NodeUnavailableError, ServerOverloadedError) as exc:
            if len(targets) < 2:
                raise
            # the primary failed outright; the backup fires as soon as
            # the failure is known (bounded by the hedge delay)
            burned = min(delay, getattr(exc, "simulated_latency", delay))
            self.launched += 1
            self._count("launched")
            backup_result, backup_latency = attempt(targets[1])
            effective = burned + backup_latency
            self.backup_wins += 1
            self._count("backup_wins")
            self.histogram.record(effective)
            return targets[1], backup_result, effective, True
        if latency <= delay or len(targets) < 2:
            self.histogram.record(latency)
            return primary, result, latency, False
        # primary still outstanding at the hedge deadline: fire a backup
        self.launched += 1
        self._count("launched")
        try:
            backup_result, backup_latency = attempt(targets[1])
        except (NodeUnavailableError, ServerOverloadedError):
            # backup lost by failing; the slow primary still answers
            self.histogram.record(latency)
            return primary, result, latency, True
        effective = min(latency, delay + backup_latency)
        self.histogram.record(effective)
        if delay + backup_latency < latency:
            self.backup_wins += 1
            self._count("backup_wins")
            self._count("cancelled_primary")
            return targets[1], backup_result, effective, True
        self._count("cancelled_backup")
        return primary, result, effective, True
