"""Consistent-hash ring with fixed logical partitions (Voldemort §II.A-B).

The paper's scheme differs from classic consistent hashing in two ways
that we preserve exactly:

* The key space is split into a *fixed* number of equal-sized logical
  partitions; nodes own sets of partitions.  Rebalancing moves partition
  ownership, never re-splits the space.
* Replica selection "jumps the ring" from the key's primary partition
  until it finds N-1 further partitions *on different nodes* — a
  non-order-preserving placement that prevents hot spots.

A zone-aware variant (multi-datacenter, §II.B "Routing") adds the
constraint that the replica set must cover a required number of zones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, UnsupportedTypeError


def hash_key(key: bytes) -> int:
    """Stable 64-bit hash of a key (MD5-derived, like Voldemort's)."""
    if not isinstance(key, bytes):
        raise UnsupportedTypeError(
            f"keys are bytes, got {type(key).__name__}")
    digest = hashlib.md5(key).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Node:
    """A physical cluster member owning a set of logical partitions."""

    node_id: int
    partitions: tuple[int, ...]
    zone_id: int = 0
    host: str = "localhost"

    def __post_init__(self):
        if self.node_id < 0:
            raise ConfigurationError("node_id must be non-negative")
        if len(set(self.partitions)) != len(self.partitions):
            raise ConfigurationError(f"node {self.node_id} lists duplicate partitions")


@dataclass(frozen=True)
class Zone:
    """A datacenter; ``proximity`` orders other zones nearest-first."""

    zone_id: int
    proximity: tuple[int, ...] = ()


class HashRing:
    """Maps keys -> logical partitions -> replica node lists."""

    def __init__(self, nodes: list[Node], num_partitions: int,
                 zones: list[Zone] | None = None):
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        if not nodes:
            raise ConfigurationError("a ring needs at least one node")
        self.num_partitions = num_partitions
        self.nodes: dict[int, Node] = {}
        self.zones: dict[int, Zone] = {z.zone_id: z for z in (zones or [Zone(0)])}
        owner: dict[int, int] = {}
        for node in nodes:
            if node.node_id in self.nodes:
                raise ConfigurationError(f"duplicate node id {node.node_id}")
            if node.zone_id not in self.zones:
                raise ConfigurationError(f"node {node.node_id} references unknown zone {node.zone_id}")
            self.nodes[node.node_id] = node
            for partition in node.partitions:
                if not 0 <= partition < num_partitions:
                    raise ConfigurationError(
                        f"partition {partition} out of range [0, {num_partitions})")
                if partition in owner:
                    raise ConfigurationError(
                        f"partition {partition} owned by both node {owner[partition]} "
                        f"and node {node.node_id}")
                owner[partition] = node.node_id
        missing = set(range(num_partitions)) - set(owner)
        if missing:
            raise ConfigurationError(f"partitions with no owner: {sorted(missing)[:8]}...")
        self._owner = owner

    # -- basic lookups ---------------------------------------------------

    def partition_for_key(self, key: bytes) -> int:
        return hash_key(key) % self.num_partitions

    def node_for_partition(self, partition: int) -> Node:
        return self.nodes[self._owner[partition]]

    def master_for_key(self, key: bytes) -> Node:
        return self.node_for_partition(self.partition_for_key(key))

    # -- replica placement -------------------------------------------------

    def replica_partitions(self, partition: int, replication_factor: int) -> list[int]:
        """Primary partition plus the next N-1 partitions on distinct nodes.

        Walks the ring clockwise from ``partition`` (the paper's "jump the
        ring") collecting partitions whose owning node has not yet been
        used.  Raises when the cluster has fewer nodes than replicas.
        """
        if replication_factor <= 0:
            raise ConfigurationError("replication_factor must be positive")
        if replication_factor > len(self.nodes):
            raise ConfigurationError(
                f"replication factor {replication_factor} exceeds node count {len(self.nodes)}")
        chosen = [partition]
        used_nodes = {self._owner[partition]}
        cursor = partition
        for _ in range(self.num_partitions - 1):
            if len(chosen) == replication_factor:
                break
            cursor = (cursor + 1) % self.num_partitions
            owner = self._owner[cursor]
            if owner not in used_nodes:
                chosen.append(cursor)
                used_nodes.add(owner)
        if len(chosen) < replication_factor:
            raise ConfigurationError(
                f"could not place {replication_factor} replicas on distinct nodes")
        return chosen

    def replica_nodes_for_key(self, key: bytes, replication_factor: int) -> list[Node]:
        partition = self.partition_for_key(key)
        return [self.node_for_partition(p)
                for p in self.replica_partitions(partition, replication_factor)]

    def zone_aware_replica_partitions(self, partition: int, replication_factor: int,
                                      required_zones: int) -> list[int]:
        """Replica placement that must also span ``required_zones`` zones."""
        available_zones = {node.zone_id for node in self.nodes.values()}
        if required_zones > len(available_zones):
            raise ConfigurationError(
                f"required_zones={required_zones} but cluster spans {len(available_zones)}")
        if replication_factor < required_zones:
            raise ConfigurationError("replication_factor must be >= required_zones")
        chosen = [partition]
        used_nodes = {self._owner[partition]}
        used_zones = {self.node_for_partition(partition).zone_id}
        cursor = partition
        for _ in range(self.num_partitions - 1):
            if len(chosen) == replication_factor:
                break
            cursor = (cursor + 1) % self.num_partitions
            node = self.node_for_partition(cursor)
            if node.node_id in used_nodes:
                continue
            remaining_slots = replication_factor - len(chosen)
            zones_still_needed = required_zones - len(used_zones)
            if zones_still_needed >= remaining_slots and node.zone_id in used_zones:
                continue  # every remaining slot must buy a new zone
            chosen.append(cursor)
            used_nodes.add(node.node_id)
            used_zones.add(node.zone_id)
        if len(chosen) < replication_factor or len(used_zones) < required_zones:
            raise ConfigurationError(
                f"cannot satisfy {replication_factor} replicas across {required_zones} zones")
        return chosen

    # -- rebalancing support ----------------------------------------------

    def with_partition_moved(self, partition: int, to_node_id: int) -> "HashRing":
        """Return a new ring with one partition's ownership transferred.

        Rebalancing in Voldemort (§II.B Admin Service) is a sequence of
        such single-partition ownership changes.
        """
        if to_node_id not in self.nodes:
            raise ConfigurationError(f"unknown destination node {to_node_id}")
        new_nodes = []
        for node in self.nodes.values():
            partitions = [p for p in node.partitions if p != partition]
            if node.node_id == to_node_id:
                partitions.append(partition)
            new_nodes.append(Node(node.node_id, tuple(sorted(partitions)),
                                  node.zone_id, node.host))
        return HashRing(new_nodes, self.num_partitions, list(self.zones.values()))

    def with_node_added(self, node_id: int, zone_id: int = 0,
                        host: str = "localhost") -> "HashRing":
        """Add an empty node (no partitions); rebalance moves follow."""
        if node_id in self.nodes:
            raise ConfigurationError(f"node {node_id} already in ring")
        new_nodes = list(self.nodes.values()) + [Node(node_id, (), zone_id, host)]
        return HashRing(new_nodes, self.num_partitions, list(self.zones.values()))

    def partition_counts(self) -> dict[int, int]:
        return {node_id: len(node.partitions) for node_id, node in self.nodes.items()}


def build_balanced_ring(num_nodes: int, num_partitions: int,
                        num_zones: int = 1) -> HashRing:
    """Construct a ring with partitions striped round-robin over nodes.

    Striping (rather than contiguous runs) keeps ring walks short when
    selecting replicas and spreads each node's partitions evenly, which
    is how Voldemort clusters are laid out in practice.
    """
    if num_nodes <= 0 or num_partitions < num_nodes:
        raise ConfigurationError("need at least one partition per node")
    assignment: dict[int, list[int]] = {n: [] for n in range(num_nodes)}
    for partition in range(num_partitions):
        assignment[partition % num_nodes].append(partition)
    zones = [Zone(z, tuple(o for o in range(num_zones) if o != z))
             for z in range(num_zones)]
    nodes = [Node(n, tuple(parts), zone_id=n % num_zones)
             for n, parts in assignment.items()]
    return HashRing(nodes, num_partitions, zones)
