"""Atomic-section markers for the cooperative simulation.

Everything in this reproduction runs on a cooperative scheduler: the
only places another event can interleave are *yield points* — a
simulated RPC (``network.invoke``/``send``), a ``clock.sleep``, or a
WAL ``fsync``.  Code between yield points is atomic by construction,
and several invariants depend on exactly that: Espresso's
doc + index + SCN commit must become visible as one unit, and the
migration coordinator's journal transitions must never tear against
a concurrently replayed checkpoint.

:func:`atomic_section` is a no-op at runtime.  Its value is static:
``repro-lint``'s ``yield-in-atomic-section`` rule *proves*, over the
interprocedural call graph, that a decorated function contains no
transitive yield point — so the atomicity the code relies on is a CI
guarantee instead of a comment.  The same rule also checks
``# repro-atomic`` line markers and ``# repro-atomic: begin`` /
``# repro-atomic: end`` regions for statement-level claims.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)


def atomic_section(fn: F) -> F:
    """Declare that ``fn`` must contain no transitive yield point.

    Runtime identity; the claim is discharged statically by
    ``repro-lint``'s ``yield-in-atomic-section`` rule, which walks the
    effect summaries and convicts if any statement in ``fn`` can reach
    ``network.invoke``/``send``, ``sleep``, or ``fsync``.
    """
    fn.__repro_atomic__ = True
    return fn
