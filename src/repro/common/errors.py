"""Exception hierarchy shared by every subsystem in the reproduction.

Each of the paper's systems (Voldemort, Databus, Espresso, Kafka) has its
own failure vocabulary, but they share a common backbone: a request can
fail because data is unavailable, because of a version conflict, because
a node is down, or because the caller asked for something malformed.
Keeping one hierarchy makes failure-injection tests uniform across
subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or configured with invalid parameters.

    Inherits :class:`ValueError` so callers can catch either form.
    """


class InvalidRequestError(ReproError, ValueError):
    """A caller supplied a malformed or out-of-domain argument at call
    time (as opposed to construction time, which is
    :class:`ConfigurationError`).

    Inherits :class:`ValueError` so callers can catch either form.
    """


class UnsupportedTypeError(ReproError, TypeError):
    """A value of the wrong Python type crossed an API boundary that
    requires pre-encoded bytes or a specific capability (e.g. a
    simulated clock for asynchronous delivery).

    Inherits :class:`TypeError` so callers can catch either form.
    """


class NonConvergenceError(ReproError, RuntimeError):
    """An iterative process exceeded its progress bound without
    reaching a fixpoint (a self-rescheduling event loop, a rebalance
    pipeline that never settles).

    Inherits :class:`RuntimeError` so callers can catch either form.
    """


class FileMissingError(ReproError, FileNotFoundError):
    """A simulated-filesystem operation addressed a path that does not
    exist.

    Inherits :class:`FileNotFoundError` (and through it
    :class:`OSError`) so code written against the real file API keeps
    working.
    """


class SchemaError(ReproError):
    """A schema failed to parse, validate, or resolve against a datum."""


class SchemaCompatibilityError(SchemaError):
    """A proposed schema evolution violates the resolution rules."""


class SchemaValidationError(SchemaError, ValueError):
    """A datum failed validation against its schema (NOT NULL violated,
    unknown column, wrong column type, missing primary key).

    Inherits :class:`ValueError` so callers can catch either form.
    """


class DuplicateKeyError(ReproError, ValueError):
    """An insert addressed a primary key that already holds a row.

    Inherits :class:`ValueError` so callers can catch either form.
    """


class ReplicationOrderError(ReproError, ValueError):
    """A replication stream arrived with a sequence-number gap or an
    out-of-order transaction: the replica cannot apply it without
    risking divergence (Databus's commit-order contract, §III).

    Inherits :class:`ValueError` so callers can catch either form.
    """


class SerializationError(ReproError):
    """A datum could not be encoded or decoded against its schema."""


class KeyNotFoundError(ReproError, KeyError):
    """The requested key/document/resource does not exist.

    Inherits :class:`KeyError` so callers can catch either form.
    """


class ObsoleteVersionError(ReproError):
    """An optimistic write lost: the stored vector clock already
    dominates the one supplied by the writer (Voldemort, §II.B)."""


class InsufficientOperationalNodesError(ReproError):
    """A quorum operation could not reach the required number of
    replicas (R reads or W writes out of N)."""

    def __init__(self, message: str, required: int = 0, achieved: int = 0):
        super().__init__(message)
        self.required = required
        self.achieved = achieved


class NodeUnavailableError(ReproError):
    """The target node is crashed, partitioned away, or marked down."""


class TransientNetworkError(NodeUnavailableError):
    """A short-lived failure of the kind the paper says is prevalent in
    production datacenters (Voldemort §II.A, [FLP+10])."""


class RequestTimeoutError(NodeUnavailableError):
    """The request exceeded its deadline."""


class DeadlineExceededError(RequestTimeoutError):
    """A request's end-to-end deadline budget was exhausted before the
    operation (including retries) could complete."""


class CircuitOpenError(NodeUnavailableError):
    """A circuit breaker rejected the call without attempting it; the
    target has been failing and its recovery timeout has not elapsed."""


class OverloadError(ReproError):
    """Base class for load-shedding and backpressure signals.

    Deliberately *not* a :class:`NodeUnavailableError`: a shed request
    means "the target is up but refuses extra work", and retrying it on
    the default transport-retry path would amplify exactly the load
    that caused the shed.  Callers back off, route elsewhere, or
    surface the rejection — they do not hammer.
    """


class ServerOverloadedError(OverloadError):
    """A server-side queue or admission controller rejected the request
    outright (the overload-robustness layer's fast rejection: cheaper
    than queueing work that will time out anyway)."""

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after


class BackpressureError(OverloadError):
    """A client-side buffer refused to grow: the caller must slow down
    instead of queueing unbounded work (Kafka producer, Databus
    consumer catch-up)."""


class OffsetOutOfRangeError(ReproError):
    """A Kafka fetch addressed an offset outside the partition log."""


class NotMasterError(ReproError):
    """An Espresso write or Databus capture hit a node that is not the
    current master for the partition."""

    def __init__(self, message: str, partition_id: int | None = None):
        super().__init__(message)
        self.partition_id = partition_id


class TransactionAbortedError(ReproError):
    """An Espresso multi-document transaction was rolled back."""


class SCNGoneError(ReproError):
    """A Databus client asked a relay for a sequence number older than
    the relay's circular buffer retains; the client must bootstrap."""

    def __init__(self, message: str, oldest_retained: int | None = None):
        super().__init__(message)
        self.oldest_retained = oldest_retained


class ChecksumError(ReproError):
    """Stored bytes failed CRC validation (torn write / corruption)."""


class RebalanceInProgressError(ReproError):
    """The operation cannot proceed while partitions are migrating."""
