"""Simulated and real clocks.

Distributed behaviours in the paper — failover timing, hinted-handoff
replay, retention expiry, consumer lag — are all time-dependent.  Tests
must be deterministic, so every component takes a :class:`Clock` and the
test suite injects a :class:`SimClock` it can advance by hand.  The
benchmarks, which measure real work, use :class:`WallClock`.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import InvalidRequestError, NonConvergenceError


class Clock:
    """Abstract time source.  All timestamps are float seconds."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class WallClock(Clock):
    """Real time, for benchmarks and examples."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


@dataclass(order=True)
class _ScheduledEvent:
    fire_at: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class SimClock(Clock):
    """Deterministic discrete-event clock.

    Components register callbacks with :meth:`call_at` / :meth:`call_later`;
    the test driver advances time with :meth:`advance` or :meth:`run_until`,
    firing callbacks in timestamp order (ties broken by scheduling order).

    ``sleep`` advances simulated time immediately — there is no blocking —
    which models a single-threaded event-loop view of the cluster.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._queue: list[_ScheduledEvent] = []
        self._seq = itertools.count()

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise InvalidRequestError(
                f"cannot sleep a negative duration: {seconds}")
        self.advance(seconds)

    def call_at(self, when: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Schedule ``callback`` to run when the clock reaches ``when``."""
        if when < self._now:
            raise InvalidRequestError(
                f"cannot schedule in the past: {when} < {self._now}")
        event = _ScheduledEvent(when, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def call_later(self, delay: float, callback: Callable[[], None]) -> _ScheduledEvent:
        return self.call_at(self._now + delay, callback)

    @staticmethod
    def cancel(event: _ScheduledEvent) -> None:
        event.cancelled = True

    def advance(self, seconds: float) -> None:
        """Move time forward, firing every event due in the window."""
        self.run_until(self._now + seconds)

    def run_until(self, deadline: float) -> None:
        while self._queue and self._queue[0].fire_at <= deadline:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.fire_at)
            event.callback()
        self._now = max(self._now, deadline)

    def run_all(self, limit: int = 100_000) -> None:
        """Drain the event queue regardless of timestamps.

        ``limit`` guards against callbacks that reschedule forever.
        """
        fired = 0
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = max(self._now, event.fire_at)
            event.callback()
            fired += 1
            if fired >= limit:
                raise NonConvergenceError(
                    f"run_all exceeded {limit} events; "
                    "likely a self-rescheduling loop")

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
