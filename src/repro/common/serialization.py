"""Avro-style schemas and binary serialization.

Databus serializes change events with Avro because it is "an open
format" that "allows serialization in the relay without generation of
source-schema specific code" (§III.C); Espresso document schemas "are
represented in JSON in the format specified by Avro" and are "freely
evolvable" under Avro's schema-resolution rules (§IV.A).

This module implements the subset of Avro needed by both systems:

* record schemas declared as JSON-like dicts with primitive, nullable
  (union-with-null), array and map field types;
* a compact binary encoding (zig-zag varints, length-prefixed bytes);
* writer->reader schema resolution: added fields take defaults, removed
  fields are skipped, and numeric promotions (int->long->float->double)
  are applied — mirroring the rules Espresso relies on for promotion of
  stored documents to new schema versions.
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass

from repro.common.errors import (
    SchemaCompatibilityError,
    SchemaError,
    SerializationError,
)

_PRIMITIVES = {"null", "boolean", "int", "long", "float", "double", "bytes", "string"}
_NUMERIC_PROMOTIONS = {
    "int": {"int", "long", "float", "double"},
    "long": {"long", "float", "double"},
    "float": {"float", "double"},
    "double": {"double"},
}


@dataclass(frozen=True)
class Field:
    """One field of a record schema."""

    name: str
    type: object  # primitive name, {"array": t}, {"map": t}, or ["null", t]
    default: object = None
    has_default: bool = False
    indexed: bool = False       # Espresso index constraint (§IV.A)
    free_text: bool = False     # free-text index constraint


class RecordSchema:
    """A named record schema with ordered fields."""

    def __init__(self, name: str, fields: list[Field], version: int = 1):
        if not name:
            raise SchemaError("record schema needs a name")
        seen: set[str] = set()
        for field in fields:
            if field.name in seen:
                raise SchemaError(f"duplicate field {field.name!r} in schema {name!r}")
            seen.add(field.name)
            _validate_type(field.type, name, field.name)
        self.name = name
        self.fields = list(fields)
        self.version = version
        self._by_name = {f.name: f for f in self.fields}

    @classmethod
    def parse(cls, document: str | dict) -> "RecordSchema":
        """Parse an Avro-style JSON record declaration."""
        spec = json.loads(document) if isinstance(document, str) else document
        if spec.get("type") != "record":
            raise SchemaError(f"expected a record schema, got {spec.get('type')!r}")
        fields = []
        for fspec in spec.get("fields", []):
            has_default = "default" in fspec
            fields.append(Field(
                name=fspec["name"],
                type=fspec["type"],
                default=fspec.get("default"),
                has_default=has_default,
                indexed=bool(fspec.get("indexed", False)),
                free_text=bool(fspec.get("free_text", False)),
            ))
        return cls(spec["name"], fields, version=int(spec.get("version", 1)))

    def to_json(self) -> dict:
        fields = []
        for field in self.fields:
            fspec: dict = {"name": field.name, "type": field.type}
            if field.has_default:
                fspec["default"] = field.default
            if field.indexed:
                fspec["indexed"] = True
            if field.free_text:
                fspec["free_text"] = True
            fields.append(fspec)
        return {"type": "record", "name": self.name,
                "version": self.version, "fields": fields}

    def field(self, name: str) -> Field:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no field {name!r}") from None

    @property
    def indexed_fields(self) -> list[Field]:
        return [f for f in self.fields if f.indexed or f.free_text]

    def __repr__(self) -> str:
        return f"RecordSchema({self.name!r}, v{self.version}, {len(self.fields)} fields)"


def _validate_type(ftype: object, schema: str, field: str) -> None:
    if isinstance(ftype, str):
        if ftype not in _PRIMITIVES:
            raise SchemaError(f"{schema}.{field}: unknown type {ftype!r}")
        return
    if isinstance(ftype, list):  # union: only ["null", X] supported
        if len(ftype) != 2 or ftype[0] != "null":
            raise SchemaError(f"{schema}.{field}: only ['null', T] unions are supported")
        _validate_type(ftype[1], schema, field)
        return
    if isinstance(ftype, dict):
        if "array" in ftype:
            _validate_type(ftype["array"], schema, field)
            return
        if "map" in ftype:
            _validate_type(ftype["map"], schema, field)
            return
    raise SchemaError(f"{schema}.{field}: unsupported type declaration {ftype!r}")


# ---------------------------------------------------------------------------
# binary encoding
# ---------------------------------------------------------------------------

def _zigzag_encode(value: int) -> int:
    return (value << 1) ^ (value >> 63)


def _zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def write_varint(buf: io.BytesIO, value: int) -> None:
    encoded = _zigzag_encode(value) & 0xFFFFFFFFFFFFFFFF
    while True:
        byte = encoded & 0x7F
        encoded >>= 7
        if encoded:
            buf.write(bytes([byte | 0x80]))
        else:
            buf.write(bytes([byte]))
            return


def read_varint(buf: io.BytesIO) -> int:
    shift = 0
    accum = 0
    while True:
        raw = buf.read(1)
        if not raw:
            raise SerializationError("truncated varint")
        byte = raw[0]
        accum |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return _zigzag_decode(accum)
        shift += 7
        if shift > 70:
            raise SerializationError("varint too long")


def _encode_value(buf: io.BytesIO, ftype: object, value: object, path: str) -> None:
    if isinstance(ftype, list):  # nullable union
        if value is None:
            write_varint(buf, 0)
            return
        write_varint(buf, 1)
        _encode_value(buf, ftype[1], value, path)
        return
    if isinstance(ftype, dict):
        if "array" in ftype:
            if not isinstance(value, (list, tuple)):
                raise SerializationError(f"{path}: expected list, got {type(value).__name__}")
            write_varint(buf, len(value))
            for i, item in enumerate(value):
                _encode_value(buf, ftype["array"], item, f"{path}[{i}]")
            return
        if "map" in ftype:
            if not isinstance(value, dict):
                raise SerializationError(f"{path}: expected dict, got {type(value).__name__}")
            write_varint(buf, len(value))
            for key, item in value.items():
                _encode_primitive(buf, "string", key, path)
                _encode_value(buf, ftype["map"], item, f"{path}[{key!r}]")
            return
    _encode_primitive(buf, ftype, value, path)


def _encode_primitive(buf: io.BytesIO, ftype: object, value: object, path: str) -> None:
    try:
        if ftype == "null":
            if value is not None:
                raise SerializationError(f"{path}: null field got {value!r}")
        elif ftype == "boolean":
            buf.write(b"\x01" if value else b"\x00")
        elif ftype in ("int", "long"):
            write_varint(buf, int(value))  # type: ignore[arg-type]
        elif ftype == "float":
            buf.write(struct.pack("<f", float(value)))  # type: ignore[arg-type]
        elif ftype == "double":
            buf.write(struct.pack("<d", float(value)))  # type: ignore[arg-type]
        elif ftype == "bytes":
            data = bytes(value)  # type: ignore[arg-type]
            write_varint(buf, len(data))
            buf.write(data)
        elif ftype == "string":
            data = str(value).encode("utf-8")
            write_varint(buf, len(data))
            buf.write(data)
        else:
            raise SerializationError(f"{path}: cannot encode type {ftype!r}")
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"{path}: {exc}") from exc


def _decode_value(buf: io.BytesIO, ftype: object) -> object:
    if isinstance(ftype, list):
        branch = read_varint(buf)
        if branch == 0:
            return None
        if branch != 1:
            raise SerializationError(f"invalid union branch {branch}")
        return _decode_value(buf, ftype[1])
    if isinstance(ftype, dict):
        if "array" in ftype:
            count = read_varint(buf)
            return [_decode_value(buf, ftype["array"]) for _ in range(count)]
        if "map" in ftype:
            count = read_varint(buf)
            out = {}
            for _ in range(count):
                key = _decode_primitive(buf, "string")
                out[key] = _decode_value(buf, ftype["map"])
            return out
    return _decode_primitive(buf, ftype)


def _decode_primitive(buf: io.BytesIO, ftype: object) -> object:
    if ftype == "null":
        return None
    if ftype == "boolean":
        raw = buf.read(1)
        if not raw:
            raise SerializationError("truncated boolean")
        return raw[0] != 0
    if ftype in ("int", "long"):
        return read_varint(buf)
    if ftype == "float":
        return struct.unpack("<f", buf.read(4))[0]
    if ftype == "double":
        return struct.unpack("<d", buf.read(8))[0]
    if ftype == "bytes":
        length = read_varint(buf)
        data = buf.read(length)
        if len(data) != length:
            raise SerializationError("truncated bytes")
        return data
    if ftype == "string":
        length = read_varint(buf)
        data = buf.read(length)
        if len(data) != length:
            raise SerializationError("truncated string")
        return data.decode("utf-8")
    raise SerializationError(f"cannot decode type {ftype!r}")


def _skip_value(buf: io.BytesIO, ftype: object) -> None:
    _decode_value(buf, ftype)


def encode_record(schema: RecordSchema, record: dict) -> bytes:
    """Serialize ``record`` (a plain dict) against ``schema``."""
    buf = io.BytesIO()
    for field in schema.fields:
        if field.name in record:
            value = record[field.name]
        elif field.has_default:
            value = field.default
        elif isinstance(field.type, list):
            value = None
        else:
            raise SerializationError(
                f"record missing required field {schema.name}.{field.name}")
        _encode_value(buf, field.type, value, f"{schema.name}.{field.name}")
    return buf.getvalue()


def decode_record(schema: RecordSchema, data: bytes) -> dict:
    """Deserialize bytes written with the same schema."""
    buf = io.BytesIO(data)
    return {f.name: _decode_value(buf, f.type) for f in schema.fields}


# ---------------------------------------------------------------------------
# schema resolution (reader vs writer)
# ---------------------------------------------------------------------------

def _types_resolvable(writer: object, reader: object) -> bool:
    if isinstance(writer, str) and isinstance(reader, str):
        if writer == reader:
            return True
        return reader in _NUMERIC_PROMOTIONS.get(writer, set())
    if isinstance(writer, list) and isinstance(reader, list):
        return _types_resolvable(writer[1], reader[1])
    if isinstance(writer, dict) and isinstance(reader, dict):
        if "array" in writer and "array" in reader:
            return _types_resolvable(writer["array"], reader["array"])
        if "map" in writer and "map" in reader:
            return _types_resolvable(writer["map"], reader["map"])
    # promotion of a concrete type into a nullable union of a compatible type
    if isinstance(reader, list) and not isinstance(writer, list):
        return _types_resolvable(writer, reader[1])
    return False


def check_compatible(writer: RecordSchema, reader: RecordSchema) -> None:
    """Raise unless data written with ``writer`` is readable with ``reader``.

    This is the check Espresso applies when a new document-schema
    version is posted: "new document schemas must be compatible
    according to the Avro schema resolution rules" (§IV.A).
    """
    for rfield in reader.fields:
        try:
            wfield = writer.field(rfield.name)
        except SchemaError:
            if not rfield.has_default and not isinstance(rfield.type, list):
                raise SchemaCompatibilityError(
                    f"reader field {reader.name}.{rfield.name} is new but has no default")
            continue
        if not _types_resolvable(wfield.type, rfield.type):
            raise SchemaCompatibilityError(
                f"field {reader.name}.{rfield.name}: cannot promote "
                f"{wfield.type!r} to {rfield.type!r}")


def _promote(value: object, writer_type: object, reader_type: object) -> object:
    if isinstance(reader_type, list) and not isinstance(writer_type, list):
        return _promote(value, writer_type, reader_type[1])
    if isinstance(writer_type, str) and isinstance(reader_type, str):
        if writer_type in ("int", "long") and reader_type in ("float", "double"):
            return float(value)  # type: ignore[arg-type]
    if isinstance(writer_type, list) and isinstance(reader_type, list):
        if value is None:
            return None
        return _promote(value, writer_type[1], reader_type[1])
    if isinstance(writer_type, dict) and isinstance(reader_type, dict):
        if "array" in writer_type:
            return [_promote(v, writer_type["array"], reader_type["array"])
                    for v in value]  # type: ignore[union-attr]
        if "map" in writer_type:
            return {k: _promote(v, writer_type["map"], reader_type["map"])
                    for k, v in value.items()}  # type: ignore[union-attr]
    return value


def decode_with_resolution(writer: RecordSchema, reader: RecordSchema,
                           data: bytes) -> dict:
    """Decode bytes written under ``writer`` into ``reader``'s shape.

    Fields the reader dropped are skipped; fields the reader added are
    filled from defaults; numeric promotions are applied.
    """
    check_compatible(writer, reader)
    buf = io.BytesIO(data)
    raw: dict[str, object] = {}
    for wfield in writer.fields:
        value = _decode_value(buf, wfield.type)
        raw[wfield.name] = value
    out: dict[str, object] = {}
    for rfield in reader.fields:
        if rfield.name in raw:
            wfield = writer.field(rfield.name)
            out[rfield.name] = _promote(raw[rfield.name], wfield.type, rfield.type)
        elif rfield.has_default:
            out[rfield.name] = rfield.default
        else:
            out[rfield.name] = None
    return out


class SchemaRegistry:
    """Versioned schema storage, keyed by (name, version).

    Espresso stores "the schema version needed to deserialize the stored
    document" next to each row (§IV.A / Table IV.1); Databus relays
    stamp events with the schema version of their payload.
    """

    def __init__(self):
        self._schemas: dict[tuple[str, int], RecordSchema] = {}
        self._latest: dict[str, int] = {}

    def register(self, schema: RecordSchema) -> int:
        """Register a schema; new versions must be backward compatible."""
        latest = self.latest(schema.name)
        if latest is not None:
            check_compatible(latest, schema)
            version = latest.version + 1
        else:
            version = 1
        registered = RecordSchema(schema.name, schema.fields, version=version)
        self._schemas[(schema.name, version)] = registered
        self._latest[schema.name] = version
        return version

    def register_exact(self, schema: RecordSchema) -> None:
        """Store a schema under its declared version (replication path:
        a downstream registry mirroring an upstream one verbatim)."""
        key = (schema.name, schema.version)
        if key in self._schemas:
            return
        self._schemas[key] = schema
        if schema.version > self._latest.get(schema.name, 0):
            self._latest[schema.name] = schema.version

    def get(self, name: str, version: int) -> RecordSchema:
        try:
            return self._schemas[(name, version)]
        except KeyError:
            raise SchemaError(f"no schema {name!r} version {version}") from None

    def latest(self, name: str) -> RecordSchema | None:
        version = self._latest.get(name)
        return self._schemas[(name, version)] if version else None

    def names(self) -> list[str]:
        return sorted(self._latest)
