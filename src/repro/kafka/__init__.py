"""Kafka: log-structured pub/sub messaging (paper §V).

* :mod:`repro.kafka.message` — the wire format: size/CRC/attributes
  framing, message sets, gzip compression (§V.B "compression");
* :mod:`repro.kafka.log` — partition logs as segment files addressed
  by *logical byte offsets* (no message-id index), flush-before-visible
  semantics, time-based retention, plus the message-id-index ablation
  baseline;
* :mod:`repro.kafka.broker` — brokers hosting topic partitions,
  registering in Zookeeper;
* :mod:`repro.kafka.producer` — batched publishing with random or
  key-hash partition selection;
* :mod:`repro.kafka.consumer` — pull consumers, consumer groups with
  Zookeeper-coordinated rebalancing, consumer-side offset tracking,
  rewind support;
* :mod:`repro.kafka.mirror` — the cross-datacenter replica cluster and
  Hadoop-load pipeline of §V.D;
* :mod:`repro.kafka.audit` — the end-to-end loss-detection audit.
"""

from repro.kafka.message import Message, MessageAndOffset, MessageSet
from repro.kafka.log import PartitionLog
from repro.kafka.broker import Broker, KafkaCluster
from repro.kafka.producer import Producer
from repro.kafka.consumer import ConsumerGroupMember, MessageStream, SimpleConsumer

__all__ = [
    "Message",
    "MessageAndOffset",
    "MessageSet",
    "PartitionLog",
    "Broker",
    "KafkaCluster",
    "Producer",
    "ConsumerGroupMember",
    "MessageStream",
    "SimpleConsumer",
]
