"""Cross-datacenter mirroring and the batch-load pipeline (§V.D).

The paper's deployment: frontends publish to a *live* cluster in each
datacenter; a separate *replica* cluster "runs a set of embedded
consumers to pull data from the Kafka instances in the live
datacenters"; load jobs then "pull data from this replica cluster of
Kafka into Hadoop and our data warehouse".  End-to-end latency of the
whole pipeline was "about 10 seconds on average", dominated by batching
and polling intervals rather than transport — which is exactly what the
pipeline benchmark (EXP-K4) shows.
"""

from __future__ import annotations

from repro.hadoop import MiniHDFS
from repro.kafka.broker import KafkaCluster
from repro.kafka.consumer import SimpleConsumer
from repro.kafka.producer import Producer


class MirrorMaker:
    """Embedded consumers pulling a live cluster into a replica cluster."""

    def __init__(self, live: KafkaCluster, replica: KafkaCluster,
                 topics: list[str], batch_size: int = 200,
                 compress: bool = True):
        self.live = live
        self.replica = replica
        self.topics = list(topics)
        self._consumer = SimpleConsumer(live)
        self._producer = Producer(replica, batch_size=batch_size,
                                  compress=compress)
        # (topic, partition) -> mirrored-through offset
        self._offsets: dict[tuple[str, int], int] = {}
        for topic in self.topics:
            if topic not in replica.topics():
                replica.create_topic(
                    topic, partitions=len(live.topic_layout(topic)))
            for tp in live.topic_layout(topic):
                self._offsets[(topic, tp.partition)] = 0
        self.messages_mirrored = 0

    def poll_once(self) -> int:
        """One mirroring pass over every live partition."""
        mirrored = 0
        for (topic, partition), offset in list(self._offsets.items()):
            for decoded in self._consumer.fetch(topic, partition, offset):
                self._producer.send(topic, decoded.message.payload)
                if self._offsets[(topic, partition)] != offset:
                    # the cursor moved while the fetch was in flight
                    # (reset or concurrent pass): don't clobber it
                    break
                self._offsets[(topic, partition)] = decoded.next_offset
                offset = decoded.next_offset
                mirrored += 1
        self._producer.flush()
        self.messages_mirrored += mirrored
        return mirrored


class HadoopLoadJob:
    """The data-load job: replica cluster -> HDFS files per partition."""

    def __init__(self, replica: KafkaCluster, hdfs: MiniHDFS, topics: list[str],
                 output_root: str = "/kafka-loads"):
        self.replica = replica
        self.hdfs = hdfs
        self.topics = list(topics)
        self.output_root = output_root
        self._consumer = SimpleConsumer(replica)
        self._offsets: dict[tuple[str, int], int] = {}
        self._run_id = 0
        for topic in self.topics:
            for tp in replica.topic_layout(topic):
                self._offsets[(topic, tp.partition)] = 0
        self.messages_loaded = 0

    def run_once(self) -> list[str]:
        """Pull every new message into one dated HDFS directory."""
        self._run_id += 1
        written: list[str] = []
        for (topic, partition), offset in list(self._offsets.items()):
            records = []
            for decoded in self._consumer.fetch(topic, partition, offset):
                records.append(decoded.message.payload)
                if self._offsets[(topic, partition)] != offset:
                    # cursor reset while fetching: keep what we read but
                    # leave the moved cursor alone
                    break
                self._offsets[(topic, partition)] = decoded.next_offset
                offset = decoded.next_offset
            if records:
                path = (f"{self.output_root}/run-{self._run_id:06d}/"
                        f"{topic}-{partition}")
                self.hdfs.create(path, b"\n".join(records))
                written.append(path)
                self.messages_loaded += len(records)
        return written
