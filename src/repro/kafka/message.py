"""Kafka message framing and compression (§V.A, §V.B).

"A message is defined to contain just a payload of bytes."  On the
wire and on disk each message is

    [length : 4B][crc32 : 4B][attributes : 1B][payload]

where ``length`` counts crc + attributes + payload.  A *message set* is
a concatenation of framed messages; producers send sets ("the producer
can send a set of messages in a single publish request") and the broker
appends the set verbatim — which is what makes the produce path cheap.

Compression (§V.B): "each producer can compress a set of messages and
send it to the broker.  The compressed data is stored in the broker and
is eventually delivered to the consumer, where it is uncompressed."  A
compressed set is one wrapper message whose attributes mark gzip and
whose payload is the deflated inner message set.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ChecksumError, SerializationError

_HEADER = struct.Struct("<II")   # length, crc
ATTR_NONE = 0x00
ATTR_GZIP = 0x01
FRAME_OVERHEAD = _HEADER.size + 1  # + attributes byte


@dataclass(frozen=True)
class Message:
    """An immutable payload (plus compression attribute)."""

    payload: bytes
    attributes: int = ATTR_NONE

    def encode(self) -> bytes:
        body = bytes([self.attributes]) + self.payload
        return _HEADER.pack(len(body), zlib.crc32(body)) + body

    @property
    def wire_size(self) -> int:
        return FRAME_OVERHEAD + len(self.payload)

    @property
    def is_compressed(self) -> bool:
        return bool(self.attributes & ATTR_GZIP)


@dataclass(frozen=True)
class MessageAndOffset:
    """A decoded message plus the offset of the *next* message —
    what a consumer checkpoints after processing this one."""

    message: Message
    next_offset: int


class MessageSet:
    """A batch of messages serialized back-to-back."""

    def __init__(self, messages: list[Message] | None = None):
        self.messages = list(messages or [])

    def append(self, message: Message) -> None:
        self.messages.append(message)

    def encode(self) -> bytes:
        return b"".join(m.encode() for m in self.messages)

    @property
    def wire_size(self) -> int:
        return sum(m.wire_size for m in self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    @classmethod
    def compressed(cls, messages: list[Message], level: int = 6) -> "MessageSet":
        """Wrap ``messages`` into a single gzip wrapper message."""
        inner = cls(messages).encode()
        deflated = zlib.compress(inner, level)
        return cls([Message(deflated, attributes=ATTR_GZIP)])


def iter_messages(data: bytes, base_offset: int = 0
                  ) -> Iterator[MessageAndOffset]:
    """Decode a fetched byte range into consumable messages.

    Stops silently at a trailing partial frame (fetches read fixed byte
    ranges, so the tail may be cut mid-message — the consumer just
    re-fetches from the last complete offset).  Raises
    :class:`ChecksumError` on CRC mismatch of a complete frame.

    Compressed wrapper messages are expanded transparently; every
    message produced from one wrapper shares the wrapper's
    ``next_offset`` (the consumer can only checkpoint at wrapper
    granularity, exactly like early Kafka).
    """
    position = 0
    total = len(data)
    while position + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, position)
        if length < 1:
            raise SerializationError(f"invalid frame length {length}")
        end = position + _HEADER.size + length
        if end > total:
            return
        body = data[position + _HEADER.size:end]
        if zlib.crc32(body) != crc:
            raise ChecksumError(
                f"corrupt message at offset {base_offset + position}")
        message = Message(body[1:], attributes=body[0])
        next_offset = base_offset + end
        if message.is_compressed:
            inner = zlib.decompress(message.payload)
            for wrapped in iter_messages(inner, base_offset=0):
                yield MessageAndOffset(wrapped.message, next_offset)
        else:
            yield MessageAndOffset(message, next_offset)
        position = end
