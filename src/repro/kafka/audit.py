"""The end-to-end audit pipeline (§V.D).

"Each message carries the timestamp and the server name when they are
generated.  We instrument each producer such that it periodically
generates a monitoring event, which records the number of messages
published by that producer for each topic within a fixed time window.
The producer publishes the monitoring events to Kafka in a separate
topic.  The consumers can then count the number of messages that they
have received from a given topic and validate those counts with the
monitoring events to validate the correctness of data."
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.common.clock import Clock
from repro.kafka.broker import KafkaCluster
from repro.kafka.consumer import SimpleConsumer
from repro.kafka.producer import Producer

AUDIT_TOPIC = "_audit"


def _window_of(timestamp: float, window_seconds: float) -> int:
    return int(timestamp // window_seconds)


class AuditingProducer:
    """A producer wrapper that counts what it publishes per window."""

    def __init__(self, cluster: KafkaCluster, server_name: str,
                 window_seconds: float = 10.0, clock: Clock | None = None,
                 batch_size: int = 100):
        self.server_name = server_name
        self.window_seconds = window_seconds
        # default to the *cluster's* clock, not a fresh WallClock: under
        # a SimClock the message timestamps — and therefore the audit
        # windows — must come from the same deterministic time source as
        # everything else, or same-seed runs bucket differently
        self.clock = clock if clock is not None else cluster.clock
        self._producer = Producer(cluster, batch_size=batch_size)
        # (topic, window) -> count
        self._counts: dict[tuple[str, int], int] = {}

    def send(self, topic: str, payload: dict) -> None:
        """Publish a JSON event stamped with timestamp + server name."""
        stamped = dict(payload)
        stamped["timestamp"] = self.clock.now()
        stamped["server"] = self.server_name
        self._producer.send(topic, json.dumps(stamped).encode())
        window = _window_of(stamped["timestamp"], self.window_seconds)
        self._counts[(topic, window)] = self._counts.get((topic, window), 0) + 1

    def publish_monitoring_events(self) -> int:
        """Emit one monitoring event per (topic, window) counted so far.

        Published as one immediate set on the audit topic; pending data
        batches are left alone (they flush on their own schedule, which
        is exactly the gap the audit exists to expose).
        """
        events = []
        for (topic, window), count in sorted(self._counts.items()):
            events.append(json.dumps({
                "producer": self.server_name,
                "topic": topic,
                "window": window,
                "count": count,
            }).encode())
        self._counts.clear()
        if events:
            self._producer.send_set(AUDIT_TOPIC, events)
        return len(events)

    def flush(self) -> None:
        self._producer.flush()


@dataclass
class AuditReport:
    """Per-(topic, window) reconciliation."""

    produced: dict[tuple[str, int], int]
    consumed: dict[tuple[str, int], int]

    @property
    def complete(self) -> bool:
        return self.produced == self.consumed

    def missing(self) -> dict[tuple[str, int], int]:
        """Messages produced but not (yet) consumed, per window."""
        out = {}
        for key, count in self.produced.items():
            delta = count - self.consumed.get(key, 0)
            if delta > 0:  # surpluses are unaccounted(), not missing
                out[key] = delta
        return out

    def unaccounted(self) -> dict[tuple[str, int], int]:
        """Messages consumed beyond any producer's claim, per window —
        duplicates, or data whose monitoring event was lost with a
        crashed producer."""
        out = {}
        for key, count in self.consumed.items():
            delta = count - self.produced.get(key, 0)
            if delta > 0:
                out[key] = delta
        return out


class AuditReconciler:
    """Counts consumed data messages and validates against monitoring
    events from the audit topic."""

    def __init__(self, cluster: KafkaCluster, topics: list[str],
                 window_seconds: float = 10.0):
        self.cluster = cluster
        self.topics = list(topics)
        self.window_seconds = window_seconds
        self._consumer = SimpleConsumer(cluster)

    def reconcile(self) -> AuditReport:
        produced: dict[tuple[str, int], int] = {}
        for decoded in self._fetch_all(AUDIT_TOPIC):
            event = json.loads(decoded)
            key = (event["topic"], event["window"])
            produced[key] = produced.get(key, 0) + event["count"]
        consumed: dict[tuple[str, int], int] = {}
        for topic in self.topics:
            for payload in self._fetch_all(topic):
                message = json.loads(payload)
                window = _window_of(message["timestamp"], self.window_seconds)
                key = (topic, window)
                consumed[key] = consumed.get(key, 0) + 1
        return AuditReport(produced, consumed)

    def _fetch_all(self, topic: str) -> list[bytes]:
        payloads = []
        for tp in self.cluster.topic_layout(topic):
            offset = 0
            while True:
                messages = self._consumer.fetch(topic, tp.partition, offset)
                if not messages:
                    break
                for decoded in messages:
                    payloads.append(decoded.message.payload)
                    offset = decoded.next_offset
        return payloads
