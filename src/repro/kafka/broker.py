"""Brokers and the cluster view (§V.A, Figure V.1).

"A Kafka cluster typically consists of multiple brokers.  To balance
load, a topic is divided into multiple partitions and each broker
stores one or more of those partitions."

Brokers register ephemeral znodes under ``/brokers/ids`` and advertise
the topic partitions they host under ``/brokers/topics`` — the
Zookeeper layout consumers rebalance against (§V.C task 1: "detecting
the addition and the removal of brokers and consumers").
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.clock import Clock, WallClock
from repro.common.errors import ConfigurationError
from repro.common.overload import (
    PRIORITY_LIVE,
    PRIORITY_WRITE,
    AdmissionController,
)
from repro.kafka.log import PartitionLog
from repro.kafka.message import MessageSet
from repro.simnet.disk import Disk, SimDisk
from repro.zookeeper import CreateMode, ZooKeeperServer


@dataclass(frozen=True)
class TopicPartition:
    topic: str
    partition: int
    broker_id: int

    @property
    def name(self) -> str:
        return f"{self.topic}-{self.partition}"


class Broker:
    """One broker process: a set of partition logs plus ZK registration."""

    def __init__(self, broker_id: int, data_dir: str,
                 zookeeper: ZooKeeperServer | None = None,
                 clock: Clock | None = None,
                 flush_interval_messages: int = 1,
                 flush_interval_seconds: float = 0.0,
                 segment_bytes: int = 1 << 20,
                 disk: Disk | None = None,
                 admission: AdmissionController | None = None):
        self.broker_id = broker_id
        self.data_dir = data_dir
        self.disk = disk
        self.clock = clock or WallClock()
        # bounded request handling: with an admission controller the
        # broker sheds overflow as fast ServerOverloadedError instead
        # of queueing requests without bound — consumer fetches outrank
        # produces, which outrank replication catch-up (see
        # ReplicatedPartition.poll_replication)
        self.admission = admission
        self.flush_interval_messages = flush_interval_messages
        self.flush_interval_seconds = flush_interval_seconds
        self.segment_bytes = segment_bytes
        self._logs: dict[tuple[str, int], PartitionLog] = {}
        self._zookeeper = zookeeper
        self._session = None
        self.bytes_in = 0
        self.bytes_out = 0
        if zookeeper is not None:
            self.register()

    def _make_log(self, directory: str) -> PartitionLog:
        return PartitionLog(
            directory, segment_bytes=self.segment_bytes,
            flush_interval_messages=self.flush_interval_messages,
            flush_interval_seconds=self.flush_interval_seconds,
            clock=self.clock, disk=self.disk)

    # -- zookeeper liveness -----------------------------------------------------

    def register(self) -> None:
        """Join (or rejoin after a restart): liveness znode plus log
        recovery for any partitions closed by a previous shutdown."""
        if self._session is not None:
            # a rejoin after a kill: the dead process's session (and its
            # ephemerals) must go before the new incarnation registers
            self._session.close()
        self._session = self._zookeeper.connect()
        self._session.ensure_path("/brokers/ids")
        self._session.create(f"/brokers/ids/{self.broker_id}",
                             data=str(self.broker_id).encode(),
                             mode=CreateMode.EPHEMERAL)
        self._reopen_closed_logs()

    def _reopen_closed_logs(self) -> None:
        """Recover every partition whose file handle died (shutdown or
        crash): the PartitionLog constructor runs the CRC recovery scan
        and rebuilds the high watermark from the surviving bytes."""
        for key, log in list(self._logs.items()):
            if log._active_file is None or log._active_file.closed:
                self._logs[key] = self._make_log(log.directory)

    def restart(self) -> None:
        """Boot from on-disk state after a kill: recover all partition
        logs, then rejoin Zookeeper if this broker uses one."""
        if self._zookeeper is not None:
            self.register()  # register() also reopens closed logs
        else:
            self._reopen_closed_logs()

    @property
    def is_alive(self) -> bool:
        return self._session is not None

    def shutdown(self) -> None:
        if self._session is not None:
            self._session.close()
            self._session = None
        for log in self._logs.values():
            log.close()

    # -- partition hosting -------------------------------------------------------

    def create_partition(self, topic: str, partition: int) -> PartitionLog:
        key = (topic, partition)
        if key in self._logs:
            raise ConfigurationError(f"{topic}-{partition} already hosted")
        directory = os.path.join(self.data_dir, f"{topic}-{partition}")
        log = self._make_log(directory)
        if key in self._logs:
            # a concurrent create_partition won the race while our log
            # recovered from disk; keep theirs so writes don't diverge
            log.close()
            raise ConfigurationError(f"{topic}-{partition} already hosted")
        self._logs[key] = log
        if self._session is not None:
            self._session.ensure_path(f"/brokers/topics/{topic}")
            self._session.create(
                f"/brokers/topics/{topic}/{self.broker_id}-{partition}",
                mode=CreateMode.EPHEMERAL)
        return log

    def log(self, topic: str, partition: int) -> PartitionLog:
        try:
            return self._logs[(topic, partition)]
        except KeyError:
            raise ConfigurationError(
                f"broker {self.broker_id} does not host "
                f"{topic}-{partition}") from None

    def partitions(self) -> list[tuple[str, int]]:
        return sorted(self._logs)

    # -- produce / fetch ------------------------------------------------------------

    def produce(self, topic: str, partition: int,
                message_set: MessageSet,
                priority: int = PRIORITY_WRITE) -> int:
        if self.admission is not None:
            self.admission.admit(priority,
                                 what=f"produce {topic}-{partition}")
        data_size = message_set.wire_size
        self.bytes_in += data_size
        return self.log(topic, partition).append(message_set)

    def fetch(self, topic: str, partition: int, offset: int,
              max_bytes: int = 300 * 1024,
              priority: int = PRIORITY_LIVE) -> bytes:
        if self.admission is not None:
            self.admission.admit(priority,
                                 what=f"fetch {topic}-{partition}")
        data = self.log(topic, partition).read(offset, max_bytes)
        self.bytes_out += len(data)
        return data

    def run_retention(self, retention_seconds: float) -> int:
        return sum(log.delete_old_segments(retention_seconds)
                   for log in self._logs.values())

    def tick(self) -> int:
        """Clock-driven flush sweep over every hosted partition.

        Time-based flushes used to fire only inside ``append``, so a
        quiet partition's staged tail stayed consumer-invisible until
        its next write.  The broker's periodic tick closes that hole;
        returns the number of partitions flushed.
        """
        return sum(1 for log in self._logs.values() if log.maybe_flush())


class KafkaCluster:
    """Wiring: brokers, topic layout, and the shared Zookeeper."""

    def __init__(self, num_brokers: int, data_root: str,
                 zookeeper: ZooKeeperServer | None = None,
                 clock: Clock | None = None,
                 partitions_per_topic: int = 4,
                 flush_interval_messages: int = 1,
                 segment_bytes: int = 1 << 20,
                 disk: SimDisk | None = None,
                 admission_rate: float | None = None,
                 admission_burst: float | None = None):
        if num_brokers <= 0:
            raise ConfigurationError("need at least one broker")
        self.zookeeper = zookeeper or ZooKeeperServer()
        self.clock = clock or WallClock()
        self.partitions_per_topic = partitions_per_topic
        self.disk = disk
        self.brokers: dict[int, Broker] = {}
        for broker_id in range(num_brokers):
            # with a SimDisk, each broker's files live in its own crash
            # domain ("broker-N/..."); data_root only names real dirs
            scope = disk.scope(f"broker-{broker_id}") if disk else None
            admission = None
            if admission_rate is not None:
                admission = AdmissionController(
                    self.clock, admission_rate, admission_burst,
                    name=f"broker-{broker_id}.admission")
            self.brokers[broker_id] = Broker(
                broker_id, os.path.join(data_root, f"broker-{broker_id}"),
                self.zookeeper, clock=self.clock,
                flush_interval_messages=flush_interval_messages,
                segment_bytes=segment_bytes, disk=scope,
                admission=admission)
        self._topics: dict[str, list[TopicPartition]] = {}

    def create_topic(self, topic: str,
                     partitions: int | None = None) -> list[TopicPartition]:
        """Create a topic, spreading partitions round-robin over brokers."""
        if topic in self._topics:
            raise ConfigurationError(f"topic {topic!r} exists")
        count = partitions or self.partitions_per_topic
        layout = []
        broker_ids = sorted(self.brokers)
        for partition in range(count):
            broker_id = broker_ids[partition % len(broker_ids)]
            self.brokers[broker_id].create_partition(topic, partition)
            layout.append(TopicPartition(topic, partition, broker_id))
        self._topics[topic] = layout
        return layout

    def topic_layout(self, topic: str) -> list[TopicPartition]:
        try:
            return self._topics[topic]
        except KeyError:
            raise ConfigurationError(f"unknown topic {topic!r}") from None

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def broker_for(self, topic: str, partition: int) -> Broker:
        for tp in self.topic_layout(topic):
            if tp.partition == partition:
                return self.brokers[tp.broker_id]
        raise ConfigurationError(f"no partition {topic}-{partition}")

    def flush_all(self) -> None:
        for broker in self.brokers.values():
            for topic, partition in broker.partitions():
                broker.log(topic, partition).flush()

    def tick(self) -> int:
        """One cluster-wide clock-driven flush sweep (see Broker.tick)."""
        return sum(broker.tick() for broker in self.brokers.values())

    def run_retention(self, retention_seconds: float) -> int:
        return sum(b.run_retention(retention_seconds)
                   for b in self.brokers.values())

    def shutdown(self) -> None:
        for broker in self.brokers.values():
            broker.shutdown()
