"""The producer (§V.A, §V.C).

"Each producer can publish a message to either a randomly selected
partition or a partition semantically determined by a partitioning key
and a partitioning function."  Batching ("the producer can send a set
of messages in a single publish request") and optional compression of
each batch (§V.B) are the two levers the throughput benchmarks sweep.
"""

from __future__ import annotations

import hashlib
import random

from repro.common.errors import ConfigurationError
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet


class Producer:
    """A batching producer bound to one cluster."""

    def __init__(self, cluster: KafkaCluster, batch_size: int = 50,
                 compress: bool = False, compression_level: int = 6,
                 seed: int = 0):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.cluster = cluster
        self.batch_size = batch_size
        self.compress = compress
        self.compression_level = compression_level
        self._rng = random.Random(seed)
        # (topic, partition) -> pending messages
        self._batches: dict[tuple[str, int], list[Message]] = {}
        self.messages_sent = 0
        self.bytes_on_wire = 0
        self.publish_requests = 0

    def _choose_partition(self, topic: str, key: bytes | None) -> int:
        layout = self.cluster.topic_layout(topic)
        if key is None:
            return self._rng.choice(layout).partition
        digest = hashlib.md5(key).digest()
        return int.from_bytes(digest[:4], "big") % len(layout)

    def send(self, topic: str, payload: bytes,
             key: bytes | None = None) -> None:
        """Queue one message; batches flush automatically at batch_size."""
        partition = self._choose_partition(topic, key)
        batch = self._batches.setdefault((topic, partition), [])
        batch.append(Message(payload))
        if len(batch) >= self.batch_size:
            self._publish(topic, partition)

    def send_set(self, topic: str, payloads: list[bytes],
                 key: bytes | None = None) -> None:
        """Publish several payloads as one request (the sample code's
        ``producer.send("topic1", set)``)."""
        partition = self._choose_partition(topic, key)
        self._batches.setdefault((topic, partition), []).extend(
            Message(p) for p in payloads)
        self._publish(topic, partition)

    def _publish(self, topic: str, partition: int) -> None:
        batch = self._batches.pop((topic, partition), [])
        if not batch:
            return
        if self.compress:
            message_set = MessageSet.compressed(batch, self.compression_level)
        else:
            message_set = MessageSet(batch)
        broker = self.cluster.broker_for(topic, partition)
        broker.produce(topic, partition, message_set)
        self.messages_sent += len(batch)
        self.bytes_on_wire += message_set.wire_size
        self.publish_requests += 1

    def flush(self) -> None:
        """Publish every pending batch."""
        for topic, partition in list(self._batches):
            self._publish(topic, partition)
