"""The producer (§V.A, §V.C).

"Each producer can publish a message to either a randomly selected
partition or a partition semantically determined by a partitioning key
and a partitioning function."  Batching ("the producer can send a set
of messages in a single publish request") and optional compression of
each batch (§V.B) are the two levers the throughput benchmarks sweep.

Publishing runs under the shared resilience layer
(:mod:`repro.common.resilience`): a transient broker failure is retried
with backoff, and for replicated topics each retry first runs
``handle_failures()`` so the re-send lands on the newly elected leader.
A batch that still cannot be published is re-queued, so no message is
silently dropped — ``messages_acked`` counts exactly the messages the
cluster accepted.
"""

from __future__ import annotations

import hashlib
import random

from repro.common.errors import (
    BackpressureError,
    ConfigurationError,
    NodeUnavailableError,
    OverloadError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.resilience import RetryPolicy, call_with_retries
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet
from repro.kafka.replication import ReplicatedTopic


class Producer:
    """A batching producer bound to one cluster."""

    def __init__(self, cluster: KafkaCluster, batch_size: int = 50,
                 compress: bool = False, compression_level: int = 6,
                 seed: int = 0, retry_policy: RetryPolicy | None = None,
                 retry_seed: int = 0, max_pending: int | None = None):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if max_pending is not None and max_pending < batch_size:
            raise ConfigurationError("max_pending must be >= batch_size")
        self.cluster = cluster
        self.batch_size = batch_size
        # backpressure bound: with max_pending set, send() refuses to
        # buffer past it (BackpressureError) instead of growing the
        # unacked backlog without limit while the cluster is down or
        # shedding — the caller must drain or slow down
        self.max_pending = max_pending
        self.compress = compress
        self.compression_level = compression_level
        self._rng = random.Random(seed)
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self.metrics = MetricsRegistry()
        # topic -> ReplicatedTopic for topics under leader/follower
        # replication; their produce path goes through the leader and
        # survives leader crashes via re-election between retries
        self._replicated: dict[str, ReplicatedTopic] = {}
        # (topic, partition) -> pending messages
        self._batches: dict[tuple[str, int], list[Message]] = {}
        self.messages_sent = 0
        self.messages_acked = 0
        self.bytes_on_wire = 0
        self.publish_requests = 0

    def attach_replicated(self, replicated: ReplicatedTopic) -> None:
        """Route this topic's publishes through its replication layer."""
        self._replicated[replicated.topic] = replicated

    def _partition_count(self, topic: str) -> int:
        replicated = self._replicated.get(topic)
        if replicated is not None:
            return len(replicated.partitions)
        return len(self.cluster.topic_layout(topic))

    def _choose_partition(self, topic: str, key: bytes | None) -> int:
        count = self._partition_count(topic)
        if key is None:
            return self._rng.randrange(count)
        digest = hashlib.md5(key).digest()
        return int.from_bytes(digest[:4], "big") % count

    def send(self, topic: str, payload: bytes,
             key: bytes | None = None) -> None:
        """Queue one message; batches flush automatically at batch_size.

        Raises :class:`BackpressureError` when ``max_pending`` messages
        are already buffered unacked."""
        self._check_backpressure(1)
        partition = self._choose_partition(topic, key)
        batch = self._batches.setdefault((topic, partition), [])
        batch.append(Message(payload))
        if len(batch) >= self.batch_size:
            self._publish(topic, partition)

    def send_set(self, topic: str, payloads: list[bytes],
                 key: bytes | None = None) -> None:
        """Publish several payloads as one request (the sample code's
        ``producer.send("topic1", set)``)."""
        self._check_backpressure(len(payloads))
        partition = self._choose_partition(topic, key)
        self._batches.setdefault((topic, partition), []).extend(
            Message(p) for p in payloads)
        self._publish(topic, partition)

    def _check_backpressure(self, incoming: int) -> None:
        if self.max_pending is None:
            return
        if self.pending + incoming > self.max_pending:
            self.metrics.counter("produce.backpressure").increment()
            raise BackpressureError(
                f"{self.pending} messages already pending (bound "
                f"{self.max_pending}); drain with flush() or slow down")

    def _produce_once(self, topic: str, partition: int,
                      message_set: MessageSet) -> None:
        replicated = self._replicated.get(topic)
        if replicated is not None:
            replicated.produce(partition, message_set)
        else:
            self.cluster.broker_for(topic, partition).produce(
                topic, partition, message_set)

    def _publish(self, topic: str, partition: int) -> None:
        batch = self._batches.pop((topic, partition), [])
        if not batch:
            return
        if self.compress:
            message_set = MessageSet.compressed(batch, self.compression_level)
        else:
            message_set = MessageSet(batch)

        replicated = self._replicated.get(topic)

        def on_retry(_retry_number, _exc):
            # repair before re-sending: elect a new leader from the ISR
            # so the retry targets a live broker
            if replicated is not None:
                replicated.handle_failures()

        try:
            call_with_retries(
                lambda: self._produce_once(topic, partition, message_set),
                clock=self.cluster.clock, policy=self.retry_policy,
                rng=self._retry_rng, retry_on=(NodeUnavailableError,),
                metrics=self.metrics, name="produce", on_retry=on_retry)
        except (NodeUnavailableError, OverloadError):
            # not acked: put the batch back so a later flush (after the
            # cluster heals or stops shedding) can deliver it — nothing
            # silently dropped.  Sheds are deliberately NOT retried
            # in-line here: re-sending into an overloaded broker is the
            # retry-amplification this layer exists to prevent.
            self._batches.setdefault((topic, partition), [])[:0] = batch
            raise
        self.messages_sent += len(batch)
        self.messages_acked += len(batch)
        self.bytes_on_wire += message_set.wire_size
        self.publish_requests += 1

    def flush(self) -> None:
        """Publish every pending batch."""
        for topic, partition in list(self._batches):
            self._publish(topic, partition)

    @property
    def pending(self) -> int:
        """Messages queued but not yet acknowledged by the cluster."""
        return sum(len(b) for b in self._batches.values())
