"""Consumers, consumer groups, and Zookeeper rebalancing (§V.B-C).

Key design points reproduced from the paper:

* consumption is **pull**: each fetch names an offset and a byte
  budget; "the consumer is issuing asynchronous pull requests to the
  broker to have a buffer of data ready";
* **consumer-held state**: "the information about how much each
  consumer has consumed is not maintained by the broker, but by the
  consumer itself" — offsets live with the consumer and are
  checkpointed to Zookeeper;
* **rewind**: "a consumer can deliberately rewind back to an old
  offset and re-consume data";
* **groups**: "each message is delivered to only one of the consumers
  within the group", the unit of parallelism is the partition, and
  rebalancing is coordinated through Zookeeper watches on broker and
  consumer membership (§V.C).

:class:`BrokerAckTracker` is the ablation baseline: broker-side
per-consumer acknowledgement state, to quantify what consumer-held
offsets avoid.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import (
    ConfigurationError,
    NodeUnavailableError,
    OffsetOutOfRangeError,
    RebalanceInProgressError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.resilience import RetryPolicy, call_with_retries
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import MessageAndOffset, iter_messages
from repro.kafka.replication import ReplicatedTopic
from repro.zookeeper import CreateMode, NodeExistsError, NoNodeError


@dataclass
class FetchedMessage:
    """What the stream hands to application code."""

    topic: str
    partition: int
    payload: bytes
    next_offset: int


class SimpleConsumer:
    """Offset-explicit consumption from one cluster (no group logic).

    Topics attached via :meth:`attach_replicated` are fetched through
    their replication layer: a fetch that lands on a dead leader is
    retried under the configured :class:`RetryPolicy`, triggering a
    leader re-election between attempts so the consumer follows the
    partition to its new leader.
    """

    def __init__(self, cluster: KafkaCluster, fetch_max_bytes: int = 300 * 1024,
                 retry_policy: RetryPolicy | None = None,
                 retry_seed: int = 0):
        self.cluster = cluster
        self.fetch_max_bytes = fetch_max_bytes
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self.metrics = MetricsRegistry()
        self._replicated: dict[str, ReplicatedTopic] = {}
        self.fetch_requests = 0
        self.bytes_fetched = 0

    def attach_replicated(self, replicated: ReplicatedTopic) -> None:
        """Route this topic's fetches through its replication layer."""
        self._replicated[replicated.topic] = replicated

    def _fetch_raw(self, topic: str, partition: int, offset: int) -> bytes:
        replicated = self._replicated.get(topic)
        if replicated is None:
            broker = self.cluster.broker_for(topic, partition)
            return broker.fetch(topic, partition, offset, self.fetch_max_bytes)

        def on_retry(_retry_number, _exc):
            replicated.handle_failures()

        return call_with_retries(
            lambda: replicated.fetch(partition, offset, self.fetch_max_bytes),
            clock=self.cluster.clock, policy=self.retry_policy,
            rng=self._retry_rng, retry_on=(NodeUnavailableError,),
            metrics=self.metrics, name="fetch", on_retry=on_retry)

    def fetch(self, topic: str, partition: int,
              offset: int) -> list[MessageAndOffset]:
        """One pull request: decoded messages from ``offset`` onward."""
        data = self._fetch_raw(topic, partition, offset)
        self.fetch_requests += 1
        self.bytes_fetched += len(data)
        return list(iter_messages(data, base_offset=offset))

    def earliest_offset(self, topic: str, partition: int) -> int:
        return self.cluster.broker_for(topic, partition).log(
            topic, partition).oldest_offset

    def latest_offset(self, topic: str, partition: int) -> int:
        return self.cluster.broker_for(topic, partition).log(
            topic, partition).high_watermark


class MessageStream:
    """The per-stream iterator of §V.A's sample consumer code.

    Iterates over every available message of the partitions assigned to
    it; when the log is exhausted the iterator stops yielding (a real
    deployment blocks — tests and benches re-iterate after producing
    more).  Offsets advance as messages are consumed and can be
    committed or rewound through the owning consumer.
    """

    def __init__(self, consumer: SimpleConsumer,
                 assignments: list[tuple[str, int]],
                 start_offsets: dict[tuple[str, int], int]):
        self._consumer = consumer
        self.assignments = list(assignments)
        self.offsets = dict(start_offsets)

    def __iter__(self):
        return self.poll_forever()

    def poll_forever(self):
        while True:
            batch = self.poll()
            if not batch:
                return
            for fetched in batch:
                yield fetched

    def poll(self, max_messages: int = 10_000) -> list[FetchedMessage]:
        """Fetch whatever is available, round-robin over partitions."""
        out: list[FetchedMessage] = []
        for topic, partition in self.assignments:
            if len(out) >= max_messages:
                break
            offset = self.offsets[(topic, partition)]
            try:
                messages = self._consumer.fetch(topic, partition, offset)
            except OffsetOutOfRangeError:
                # retention deleted our position; restart at the oldest
                offset = self._consumer.earliest_offset(topic, partition)
                self.offsets[(topic, partition)] = offset
                messages = self._consumer.fetch(topic, partition, offset)
            for decoded in messages:
                out.append(FetchedMessage(topic, partition,
                                          decoded.message.payload,
                                          decoded.next_offset))
                self.offsets[(topic, partition)] = decoded.next_offset
                if len(out) >= max_messages:
                    break
        return out

    def seek(self, topic: str, partition: int, offset: int) -> None:
        """Rewind (or fast-forward) one partition."""
        if (topic, partition) not in self.offsets:
            raise ConfigurationError(f"stream does not own {topic}-{partition}")
        self.offsets[(topic, partition)] = offset

    def lag(self) -> int:
        """Total unconsumed bytes across assigned partitions."""
        total = 0
        for topic, partition in self.assignments:
            head = self._consumer.latest_offset(topic, partition)
            total += head - self.offsets[(topic, partition)]
        return total


class ConsumerGroupMember:
    """One consumer process inside a group (§V.C).

    Registration, rebalance triggering, partition ownership and offset
    storage all go through Zookeeper, following the paper's three uses:
    membership detection, rebalance triggering, and offset tracking.
    """

    def __init__(self, cluster: KafkaCluster, group: str, consumer_id: str,
                 topics: list[str], fetch_max_bytes: int = 300 * 1024):
        if not topics:
            raise ConfigurationError("subscribe to at least one topic")
        self.cluster = cluster
        self.group = group
        self.consumer_id = consumer_id
        self.topics = list(topics)
        self._consumer = SimpleConsumer(cluster, fetch_max_bytes)
        self._zk = cluster.zookeeper.connect()
        self._needs_rebalance = True
        self.rebalances = 0
        self.stream: MessageStream | None = None
        self._register()

    # -- registration and watches ----------------------------------------------

    def _ids_path(self) -> str:
        return f"/consumers/{self.group}/ids"

    def _offsets_path(self, topic: str, partition: int) -> str:
        return f"/consumers/{self.group}/offsets/{topic}/{partition}"

    def _owner_path(self, topic: str, partition: int) -> str:
        return f"/consumers/{self.group}/owners/{topic}/{partition}"

    def _register(self) -> None:
        self._zk.ensure_path(self._ids_path())
        self._zk.create(f"{self._ids_path()}/{self.consumer_id}",
                        data=",".join(self.topics).encode(),
                        mode=CreateMode.EPHEMERAL)
        self._watch_membership()

    def _watch_membership(self) -> None:
        from repro.zookeeper.server import SessionExpiredError

        def on_change(_event):
            self._needs_rebalance = True
            try:
                self._watch_membership()
            except SessionExpiredError:
                pass  # we are shutting down; no more rebalances
        self._zk.get_children(self._ids_path(), watch=on_change)

    # -- rebalancing ----------------------------------------------------------------

    def _group_members(self) -> list[str]:
        return sorted(self._zk.get_children(self._ids_path()))

    def rebalance(self) -> list[tuple[str, int]]:
        """Deterministic range assignment: every member computes the
        same split, so no extra coordination is needed (§V.C)."""
        self.rebalances += 1
        self._release_ownership()
        members = self._group_members()
        assignments: list[tuple[str, int]] = []
        for topic in self.topics:
            partitions = sorted(tp.partition
                                for tp in self.cluster.topic_layout(topic))
            share = _range_assignment(partitions, members, self.consumer_id)
            assignments.extend((topic, p) for p in share)
        claimed: list[tuple[str, int]] = []
        try:
            for topic, partition in assignments:
                self._claim_ownership(topic, partition)
                claimed.append((topic, partition))
        except RebalanceInProgressError:
            # another member has not released yet; back off and retry on
            # the next poll, exactly like the real consumer's retry loop
            for topic, partition in claimed:
                self._zk.delete(self._owner_path(topic, partition))
            raise
        start_offsets = {
            (topic, partition): self._load_offset(topic, partition)
            for topic, partition in assignments
        }
        self._needs_rebalance = False
        self.stream = MessageStream(self._consumer, assignments, start_offsets)
        return assignments

    def _claim_ownership(self, topic: str, partition: int) -> None:
        self._zk.ensure_path(f"/consumers/{self.group}/owners/{topic}")
        try:
            self._zk.create(self._owner_path(topic, partition),
                            data=self.consumer_id.encode(),
                            mode=CreateMode.EPHEMERAL)
        except NodeExistsError as exc:
            raise RebalanceInProgressError(
                f"partition {topic}-{partition} still owned; "
                "previous owner has not released it") from exc

    def _release_ownership(self) -> None:
        if self.stream is None:
            return
        for topic, partition in self.stream.assignments:
            try:
                self._zk.delete(self._owner_path(topic, partition))
            except NoNodeError:
                pass
        self.stream = None

    # -- offsets ------------------------------------------------------------------------

    def _load_offset(self, topic: str, partition: int) -> int:
        try:
            data, _ = self._zk.get(self._offsets_path(topic, partition))
            return int(data)
        except NoNodeError:
            return self._consumer.earliest_offset(topic, partition)

    def commit_offsets(self) -> None:
        if self.stream is None:
            return
        for (topic, partition), offset in self.stream.offsets.items():
            path = self._offsets_path(topic, partition)
            self._zk.ensure_path(f"/consumers/{self.group}/offsets/{topic}")
            if self._zk.exists(path):
                self._zk.set(path, str(offset).encode())
            else:
                self._zk.create(path, str(offset).encode())

    # -- consumption ---------------------------------------------------------------------

    def poll(self, max_messages: int = 10_000) -> list[FetchedMessage]:
        if self._needs_rebalance:
            try:
                self.rebalance()
            except RebalanceInProgressError:
                return []  # retry on the next poll
        return self.stream.poll(max_messages)

    def close(self, commit: bool = True) -> None:
        if commit:
            self.commit_offsets()
        self._release_ownership()
        self._zk.close()


def _range_assignment(partitions: list[int], members: list[str],
                      me: str) -> list[int]:
    """Contiguous-range split of partitions over sorted members."""
    if me not in members:
        return []
    index = members.index(me)
    count = len(partitions)
    share = count // len(members)
    extra = count % len(members)
    start = index * share + min(index, extra)
    length = share + (1 if index < extra else 0)
    return partitions[start:start + length]


class BrokerAckTracker:
    """Ablation baseline: the broker tracks per-consumer delivery state.

    Traditional messaging systems acknowledge each message per
    consumer; the tracker materializes that cost (one bookkeeping entry
    per in-flight message per consumer) so the benchmark can compare it
    with Kafka's single integer per (consumer, partition).
    """

    def __init__(self):
        # (consumer, topic, partition) -> set of unacked message offsets
        self._unacked: dict[tuple[str, str, int], set[int]] = {}
        self.entries_tracked = 0

    def deliver(self, consumer: str, topic: str, partition: int,
                offset: int) -> None:
        key = (consumer, topic, partition)
        self._unacked.setdefault(key, set()).add(offset)
        self.entries_tracked += 1

    def acknowledge(self, consumer: str, topic: str, partition: int,
                    offset: int) -> None:
        self._unacked.get((consumer, topic, partition), set()).discard(offset)

    def outstanding(self, consumer: str, topic: str, partition: int) -> int:
        return len(self._unacked.get((consumer, topic, partition), set()))

    def total_state_entries(self) -> int:
        return sum(len(v) for v in self._unacked.values())
