"""The partition log: segment files addressed by byte offsets (§V.B).

"Each partition of a topic corresponds to a logical log.  Physically, a
log is implemented as a set of segment files of approximately the same
size. ... a message stored in Kafka doesn't have an explicit message
id.  Instead, each message is addressed by its logical offset in the
log.  This avoids the overhead of maintaining auxiliary index
structures. ... To compute the id of the next message, we have to add
the length of the current message to its id."

Semantics reproduced here:

* segment files named by their base offset; "the broker keeps in memory
  the initial offset of each segment file" and locates a fetch target
  with binary search over that list;
* **flush-before-visible**: appends buffer in memory and become
  consumable only after a flush, triggered by message count or elapsed
  time ("a message is only exposed to the consumers after it is
  flushed");
* **time-based retention**: whole segments are deleted once older than
  the retention period;
* no in-process message cache — reads hit the files and rely on the OS
  page cache, per the paper's double-buffering argument;
* **crash recovery**: every message frame already carries a CRC32
  (:mod:`repro.kafka.message`), so reopening a log scans the active
  segment frame by frame, truncates the torn tail at the first bad
  frame, and rebuilds the high watermark from what actually survived.
  Combined with fsync-on-flush this gives the durability contract of
  DESIGN.md §9: a produce is acknowledged only after its bytes are
  flushed *and fsynced*, so acked data survives a kill; unsynced data
  may be lost but never yields a half-visible record.

All file I/O goes through a :class:`~repro.simnet.disk.Disk`; the
default :class:`~repro.simnet.disk.LocalDisk` hits the real filesystem
while chaos tests inject a :class:`~repro.simnet.disk.SimDisk` to
crash brokers and corrupt segments deterministically.

:class:`MessageIdIndexedLog` is the ablation baseline: the same log
plus the explicit id->position index the paper's design avoids.
"""

from __future__ import annotations

import os
import struct
import zlib
from bisect import bisect_right
from dataclasses import dataclass

from repro.common.clock import Clock, WallClock
from repro.common.errors import ConfigurationError, OffsetOutOfRangeError
from repro.kafka.message import MessageSet
from repro.simnet.disk import Disk, LocalDisk

_MESSAGE_HEADER = struct.Struct("<II")   # length, crc (message framing)


def scan_valid_bytes(data: bytes) -> int:
    """Length of the valid CRC-framed prefix of a segment's bytes.

    Walks ``[length][crc][attributes+payload]`` frames and stops at the
    first incomplete or CRC-corrupt frame — the recovery truncation
    point.  Everything past a bad frame is unreachable (frames are not
    self-synchronizing), exactly the WAL torn-tail rule.
    """
    position = 0
    total = len(data)
    while position + _MESSAGE_HEADER.size <= total:
        length, crc = _MESSAGE_HEADER.unpack_from(data, position)
        end = position + _MESSAGE_HEADER.size + length
        if length < 1 or end > total:
            break
        if zlib.crc32(data[position + _MESSAGE_HEADER.size:end]) != crc:
            break
        position = end
    return position


@dataclass
class _Segment:
    base_offset: int
    path: str
    size: int
    created_at: float
    last_append_at: float


class PartitionLog:
    """One topic-partition's on-disk log."""

    def __init__(self, directory: str, segment_bytes: int = 1 << 20,
                 flush_interval_messages: int = 1,
                 flush_interval_seconds: float = 0.0,
                 clock: Clock | None = None,
                 disk: Disk | None = None,
                 fsync_on_flush: bool = True):
        if segment_bytes <= 0:
            raise ConfigurationError("segment_bytes must be positive")
        if flush_interval_messages < 1:
            raise ConfigurationError("flush_interval_messages must be >= 1")
        self.directory = directory
        self.disk = disk if disk is not None else LocalDisk()
        self.disk.makedirs(directory)
        self.segment_bytes = segment_bytes
        self.flush_interval_messages = flush_interval_messages
        self.flush_interval_seconds = flush_interval_seconds
        self.fsync_on_flush = fsync_on_flush
        self.clock = clock or WallClock()
        self._segments: list[_Segment] = []
        self._active_file = None
        self._pending = bytearray()      # appended but not flushed
        self._pending_messages = 0
        self._last_flush_at = self.clock.now()
        self.log_end_offset = 0          # next offset to assign
        self.high_watermark = 0          # flushed, consumer-visible end
        self.messages_appended = 0
        self.torn_bytes_truncated = 0    # dropped by the last recovery scan
        self._recover()
        if not self._segments:
            self._roll(base_offset=0)

    # -- recovery / segment management ----------------------------------------

    @staticmethod
    def _segment_name(base_offset: int) -> str:
        return f"{base_offset:020d}.kafka"

    def _recover(self) -> None:
        """Rebuild segment state from disk, CRC-scanning the active
        (last) segment: a crash can only tear the segment being
        appended to, so older segments are taken at face value and
        validated lazily at read time (:func:`iter_messages` raises
        :class:`ChecksumError` on a flipped bit)."""
        found = []
        for name in self.disk.listdir(self.directory):
            if name.endswith(".kafka"):
                base = int(name.split(".")[0])
                path = os.path.join(self.directory, name)
                size = self.disk.getsize(path)
                found.append(_Segment(base, path, size,
                                      created_at=self.clock.now(),
                                      last_append_at=self.clock.now()))
        found.sort(key=lambda s: s.base_offset)
        self._segments = found
        if found:
            last = found[-1]
            last.size = self._truncate_torn_tail(last)
            self.log_end_offset = last.base_offset + last.size
            self.high_watermark = self.log_end_offset
            self._active_file = self.disk.open(last.path, "ab")

    def _truncate_torn_tail(self, segment: _Segment) -> int:
        """CRC-scan one segment; cut it back to its valid prefix.
        Returns the surviving size."""
        with self.disk.open(segment.path, "rb") as f:
            data = f.read()
        good_end = scan_valid_bytes(data)
        if good_end < len(data):
            self.torn_bytes_truncated += len(data) - good_end
            with self.disk.open(segment.path, "rb+") as f:
                f.truncate(good_end)
                f.fsync()  # a re-crash must not resurrect the torn tail
        return good_end

    def _roll(self, base_offset: int) -> None:
        if self._active_file is not None:
            self._active_file.close()
        path = os.path.join(self.directory, self._segment_name(base_offset))
        self._active_file = self.disk.open(path, "ab")
        now = self.clock.now()
        self._segments.append(_Segment(base_offset, path, 0, now, now))

    @property
    def _active(self) -> _Segment:
        return self._segments[-1]

    def segment_base_offsets(self) -> list[int]:
        """The in-memory offset list used to locate fetch targets."""
        return [s.base_offset for s in self._segments]

    # -- append path ----------------------------------------------------------------

    def append(self, message_set: MessageSet) -> int:
        """Append a message set; returns the first assigned offset.

        The bytes are staged and only made consumer-visible by a flush
        (automatic when the configured thresholds trip).
        """
        if not message_set.messages:
            raise ConfigurationError("empty message set")
        first_offset = self.log_end_offset
        data = message_set.encode()
        self._pending.extend(data)
        self._pending_messages += len(message_set)
        self.log_end_offset += len(data)
        self.messages_appended += len(message_set)
        self.maybe_flush()
        return first_offset

    def maybe_flush(self) -> bool:
        """Flush if a threshold (message count or elapsed time) has
        tripped; returns whether a flush happened.

        Called from :meth:`append`, but also clock-driven from
        :meth:`Broker.tick` — without the tick, a quiet partition's
        staged tail would stay consumer-invisible until the *next*
        append, which for a low-traffic topic may never come.
        """
        if self._pending_messages == 0:
            return False
        if self._pending_messages >= self.flush_interval_messages:
            self.flush()
            return True
        if (self.flush_interval_seconds > 0
                and self.clock.now() - self._last_flush_at
                >= self.flush_interval_seconds):
            self.flush()
            return True
        return False

    def append_raw(self, data: bytes) -> int:
        """Append already-framed bytes (the replication path: followers
        copy the leader's log verbatim).  Returns the first offset."""
        if not data:
            raise ConfigurationError("empty raw append")
        first_offset = self.log_end_offset
        self._pending.extend(data)
        self.log_end_offset += len(data)
        return first_offset

    def flush(self) -> None:
        """Write pending bytes to the active segment and expose them.

        The high watermark — the acked, consumer-visible end — only
        advances after :meth:`DiskFile.fsync`, so everything a producer
        has been acked for survives a broker kill (acked ⇒ fsynced ⇒
        recoverable).
        """
        if self._pending:
            if self._active.size + len(self._pending) > self.segment_bytes \
                    and self._active.size > 0:
                self._roll(base_offset=self.high_watermark)
            # snapshot before the fsync yield: a concurrent append may
            # extend _pending while the disk write is in flight, and
            # those bytes are neither written nor durable yet
            flushed = bytes(self._pending)
            flushed_messages = self._pending_messages
            self._active_file.write(flushed)
            if self.fsync_on_flush:
                self._active_file.fsync()
            else:
                self._active_file.flush()
            self._active.size += len(flushed)
            self._active.last_append_at = self.clock.now()
            del self._pending[: len(flushed)]
            self._pending_messages -= flushed_messages
        # advance only over bytes actually flushed; anything still in
        # _pending was appended mid-flush and is not recoverable yet
        self.high_watermark = self.log_end_offset - len(self._pending)
        self._last_flush_at = self.clock.now()

    # -- fetch path ----------------------------------------------------------------------

    @property
    def oldest_offset(self) -> int:
        return self._segments[0].base_offset if self._segments else 0

    def read(self, offset: int, max_bytes: int = 300 * 1024) -> bytes:
        """Raw bytes starting at ``offset``, at most ``max_bytes``.

        Serves only flushed data; a fetch at the high watermark returns
        empty (the consumer's blocking iterator polls again).  The
        segment is located by binary search over base offsets.
        """
        if max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive")
        if offset == self.high_watermark:
            return b""
        if offset < self.oldest_offset or offset > self.high_watermark:
            raise OffsetOutOfRangeError(
                f"offset {offset} outside [{self.oldest_offset}, "
                f"{self.high_watermark}]")
        index = bisect_right([s.base_offset for s in self._segments], offset) - 1
        segment = self._segments[index]
        position = offset - segment.base_offset
        visible_end = min(segment.size,
                          self.high_watermark - segment.base_offset)
        length = min(max_bytes, visible_end - position)
        if length <= 0:
            return b""
        with self.disk.open(segment.path, "rb") as f:
            f.seek(position)
            return f.read(length)

    # -- retention ----------------------------------------------------------------------------

    def delete_old_segments(self, retention_seconds: float) -> int:
        """Time-based retention (§V.B): drop whole segments whose last
        append is older than the SLA; never the active segment."""
        now = self.clock.now()
        deleted = 0
        while len(self._segments) > 1:
            segment = self._segments[0]
            if now - segment.last_append_at <= retention_seconds:
                break
            self.disk.remove(segment.path)
            self._segments.pop(0)
            deleted += 1
        return deleted

    def delete_segments_below(self, offset: int) -> int:
        """Offset-based compaction support: drop leading whole segments
        that end at or below ``offset``; never the active segment.

        The streams changelog uses this once a durable snapshot covers
        the prefix — the snapshot *is* the last-value fold of every
        dropped record, so reads from ``offset`` onward are unaffected
        and ``oldest_offset`` advances to the first surviving segment.
        """
        deleted = 0
        while len(self._segments) > 1:
            segment = self._segments[0]
            segment_end = self._segments[1].base_offset
            if segment_end > offset:
                break
            self.disk.remove(segment.path)
            self._segments.pop(0)
            deleted += 1
        return deleted

    def size_bytes(self) -> int:
        return sum(s.size for s in self._segments) + len(self._pending)

    def close(self) -> None:
        if self._active_file is not None and not self._active_file.closed:
            self._active_file.close()


class MessageIdIndexedLog:
    """Ablation baseline: a log *with* the auxiliary message-id index
    Kafka deliberately avoids.

    Every message gets a sequential id; an in-memory dict maps id ->
    byte offset.  The benchmark compares its memory footprint and
    maintenance cost against offset addressing.
    """

    def __init__(self, directory: str, **log_kwargs):
        self.log = PartitionLog(directory, **log_kwargs)
        self.id_index: dict[int, int] = {}
        self.next_id = 0

    def append(self, message_set: MessageSet) -> list[int]:
        ids = []
        offset = self.log.append(message_set)
        for message in message_set.messages:
            self.id_index[self.next_id] = offset
            ids.append(self.next_id)
            self.next_id += 1
            offset += message.wire_size
        return ids

    def read_by_id(self, message_id: int, max_bytes: int = 300 * 1024) -> bytes:
        try:
            offset = self.id_index[message_id]
        except KeyError:
            raise OffsetOutOfRangeError(f"no message id {message_id}") from None
        return self.log.read(offset, max_bytes)

    def index_entries(self) -> int:
        return len(self.id_index)

    def close(self) -> None:
        self.log.close()
