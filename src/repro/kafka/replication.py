"""Intra-cluster replication — the paper's announced future work.

§V.D closes with: "One of the most important features that we plan to
add in the future is intra-cluster replication."  That feature shipped
as Kafka 0.8's leader/follower design; this module implements it in the
shape it took:

* each topic partition has one **leader** broker and N-1 **follower**
  brokers, each holding a full copy of the partition log;
* producers write to the leader only; followers *pull* from the leader
  (the same fetch path consumers use — replication is just another
  consumer);
* the **in-sync replica set (ISR)** contains the leader plus every
  follower within a bounded lag of the leader's log end;
* a message is **committed** once every ISR member has it; consumers
  only ever see committed messages;
* on leader failure a new leader is elected from the ISR, which is
  exactly why no committed message can be lost while at least one ISR
  member survives.

Election state lives in Zookeeper so the choice is visible to (and
driven by) a single controller, mirroring the real design.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.common.errors import (
    ConfigurationError,
    NodeUnavailableError,
    OffsetOutOfRangeError,
)
from repro.common.overload import PRIORITY_BULK
from repro.kafka.broker import Broker, KafkaCluster
from repro.kafka.message import MessageSet


class NotLeaderError(ConfigurationError):
    """A produce or fetch addressed a broker that is not the leader."""


class NotEnoughReplicasError(ConfigurationError):
    """The ISR shrank below the configured minimum for writes."""


@dataclass
class ReplicaState:
    broker_id: int
    log_end_offset: int = 0


class ReplicatedPartition:
    """One partition's replication state machine."""

    def __init__(self, cluster: KafkaCluster, topic: str, partition: int,
                 replica_ids: list[int], max_lag_bytes: int = 0,
                 min_insync_replicas: int = 1):
        if len(set(replica_ids)) != len(replica_ids) or not replica_ids:
            raise ConfigurationError("replicas must be distinct and non-empty")
        if min_insync_replicas > len(replica_ids):
            raise ConfigurationError("min ISR exceeds replica count")
        self.cluster = cluster
        self.topic = topic
        self.partition = partition
        self.replica_ids = list(replica_ids)
        self.max_lag_bytes = max_lag_bytes
        self.min_insync_replicas = min_insync_replicas
        self.leader_id = replica_ids[0]
        self.isr: set[int] = set(replica_ids)
        self.committed_offset = 0
        self._replicas = {broker_id: ReplicaState(broker_id)
                          for broker_id in replica_ids}
        for broker_id in replica_ids:
            self.cluster.brokers[broker_id].create_partition(topic, partition)

    # -- helpers ---------------------------------------------------------

    def _broker(self, broker_id: int) -> Broker:
        return self.cluster.brokers[broker_id]

    def _log(self, broker_id: int):
        return self._broker(broker_id).log(self.topic, self.partition)

    def _alive(self, broker_id: int) -> bool:
        return self._broker(broker_id).is_alive

    @property
    def leader_log_end(self) -> int:
        return self._log(self.leader_id).high_watermark

    # -- produce path -------------------------------------------------------

    def produce(self, message_set: MessageSet) -> int:
        """Append to the leader; returns the first assigned offset.

        Raises :class:`NotEnoughReplicasError` when the ISR is below the
        configured minimum — the durability guard.
        """
        if not self._alive(self.leader_id):
            raise NodeUnavailableError(
                f"leader {self.leader_id} of {self.topic}-{self.partition} "
                "is down; run handle_failures()")
        if len(self.isr) < self.min_insync_replicas:
            raise NotEnoughReplicasError(
                f"ISR {sorted(self.isr)} below minimum "
                f"{self.min_insync_replicas}")
        offset = self._broker(self.leader_id).produce(
            self.topic, self.partition, message_set)
        self._log(self.leader_id).flush()
        self._replicas[self.leader_id].log_end_offset = self.leader_log_end
        self._update_committed()
        return offset

    # -- replication pump ------------------------------------------------------

    def poll_replication(self, max_bytes: int = 1 << 20) -> int:
        """Followers pull from the leader; returns bytes replicated.

        Also recomputes ISR membership: a live follower rejoins the ISR
        once its lag is within ``max_lag_bytes``; an unreachable
        follower is dropped.
        """
        replicated = 0
        leader_end = self.leader_log_end
        leader_admission = self._broker(self.leader_id).admission
        for broker_id in self.replica_ids:
            if broker_id == self.leader_id:
                continue
            if not self._alive(broker_id):
                self.isr.discard(broker_id)
                continue
            state = self._replicas[broker_id]
            while state.log_end_offset < leader_end:
                # replication catch-up is bulk-class traffic on the
                # leader: under pressure the follower simply stays
                # lagged until the next poll, so live fetches and
                # produces keep their admission tokens
                if leader_admission is not None and \
                        not leader_admission.try_admit(PRIORITY_BULK):
                    break
                data = self._log(self.leader_id).read(
                    state.log_end_offset, max_bytes)
                if not data:
                    break
                follower_log = self._log(broker_id)
                follower_log.append_raw(data)
                follower_log.flush()
                state.log_end_offset += len(data)
                replicated += len(data)
            lag = leader_end - state.log_end_offset
            if lag <= self.max_lag_bytes:
                self.isr.add(broker_id)
            else:
                self.isr.discard(broker_id)
        self._update_committed()
        return replicated

    def _update_committed(self) -> None:
        """Committed = replicated to every in-sync replica."""
        isr_ends = [self._replicas[b].log_end_offset for b in self.isr
                    if self._alive(b)]
        if isr_ends:
            self.committed_offset = min(isr_ends)

    # -- fetch path ----------------------------------------------------------------

    def fetch(self, offset: int, max_bytes: int = 300 * 1024) -> bytes:
        """Consumer fetch from the leader, bounded by the committed
        offset — uncommitted tails are invisible."""
        if not self._alive(self.leader_id):
            raise NodeUnavailableError(
                f"leader {self.leader_id} of {self.topic}-{self.partition} "
                "is down; run handle_failures()")
        if offset > self.committed_offset:
            raise OffsetOutOfRangeError(
                f"offset {offset} beyond committed {self.committed_offset}")
        if offset == self.committed_offset:
            return b""
        log = self._log(self.leader_id)
        data = log.read(offset, max_bytes)
        visible = self.committed_offset - offset
        return data[:visible]

    # -- failure handling -------------------------------------------------------------

    def handle_failures(self) -> bool:
        """Re-elect a leader if the current one died; returns True when
        leadership changed.  The new leader must come from the ISR so no
        committed message is lost."""
        self.isr = {b for b in self.isr if self._alive(b)}
        if self._alive(self.leader_id):
            return False
        candidates = [b for b in self.replica_ids
                      if b in self.isr and self._alive(b)]
        if not candidates:
            raise NotEnoughReplicasError(
                f"{self.topic}-{self.partition}: no live in-sync replica "
                "to elect")
        self.leader_id = candidates[0]
        # truncate our view to what the new leader actually has; the
        # committed offset can only be <= the new leader's log end
        self._replicas[self.leader_id].log_end_offset = self.leader_log_end
        self._update_committed()
        return True


class ReplicatedTopic:
    """A topic whose partitions are leader/follower replicated."""

    def __init__(self, cluster: KafkaCluster, topic: str, partitions: int,
                 replication_factor: int, min_insync_replicas: int = 1):
        if replication_factor > len(cluster.brokers):
            raise ConfigurationError(
                "replication factor exceeds broker count")
        self.cluster = cluster
        self.topic = topic
        broker_ids = sorted(cluster.brokers)
        self.partitions: dict[int, ReplicatedPartition] = {}
        for partition in range(partitions):
            replicas = [broker_ids[(partition + i) % len(broker_ids)]
                        for i in range(replication_factor)]
            self.partitions[partition] = ReplicatedPartition(
                cluster, topic, partition, replicas,
                min_insync_replicas=min_insync_replicas)
        self._publish_state()

    def _publish_state(self) -> None:
        """Record leadership + ISR in Zookeeper (the controller's view)."""
        session = self.cluster.zookeeper.connect()
        session.ensure_path(f"/replicated-topics/{self.topic}")
        for partition, state in self.partitions.items():
            path = f"/replicated-topics/{self.topic}/{partition}"
            payload = json.dumps({
                "leader": state.leader_id,
                "isr": sorted(state.isr),
                "replicas": state.replica_ids,
            }).encode()
            if session.exists(path):
                session.set(path, payload)
            else:
                session.create(path, payload)
        session.close()

    def produce(self, partition: int, message_set: MessageSet) -> int:
        return self.partitions[partition].produce(message_set)

    def fetch(self, partition: int, offset: int,
              max_bytes: int = 300 * 1024) -> bytes:
        return self.partitions[partition].fetch(offset, max_bytes)

    def poll_replication(self) -> int:
        total = sum(p.poll_replication() for p in self.partitions.values())
        self._publish_state()
        return total

    def handle_failures(self) -> list[int]:
        """React to broker deaths; returns partitions whose leader moved."""
        moved = [partition for partition, state in self.partitions.items()
                 if state.handle_failures()]
        self._publish_state()
        return moved

    def leaders(self) -> dict[int, int]:
        return {p: s.leader_id for p, s in self.partitions.items()}

    def committed_offsets(self) -> dict[int, int]:
        return {p: s.committed_offset for p, s in self.partitions.items()}
