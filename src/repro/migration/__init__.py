"""Live migration: sqlstore → Espresso with no downtime (paper §IV).

The paper's deployment story — member profiles and InMail moving off
legacy RDBMS onto Espresso — implies a migration that runs while the
site keeps serving.  This subsystem is that playbook, executable:

* :mod:`repro.migration.backfill` — DBLog-style chunked snapshot
  reader: keyed chunks bracketed by low/high watermark events through
  the binlog/Databus stream, superseded rows discarded, no source lock;
* :mod:`repro.migration.dualwrite` — the dual-write proxy and
  shadow-read comparator with per-table mismatch accounting;
* :mod:`repro.migration.cutover` — the ramped-cutover state machine
  (BACKFILL → CATCHUP → SHADOW → RAMP(n%) → CUTOVER, automatic
  ROLLBACK on SLO breach) and its coordinator;
* :mod:`repro.migration.checkpoint` — the fsynced checkpoint journal
  that lets a crashed coordinator resume without re-reading chunks;
* :mod:`repro.migration.target` — the Espresso-side adapter: schema
  derivation, row↔document transforms, partition-master routing;
* :mod:`repro.migration.stack` — one-call wiring of all of the above.
"""

from repro.migration.backfill import (
    ChunkedBackfill,
    ChunkResult,
    LiveReplicator,
)
from repro.migration.checkpoint import (
    MigrationCheckpoint,
    MigrationJournal,
)
from repro.migration.cutover import (
    MigrationCoordinator,
    MigrationPhase,
    MigrationSlo,
)
from repro.migration.dualwrite import (
    DualWriteProxy,
    ShadowReadStats,
    ramp_bucket,
)
from repro.migration.stack import MigrationStack
from repro.migration.target import (
    EspressoTarget,
    RowTransform,
    document_schema_for,
    espresso_schema_for,
)

__all__ = [
    "ChunkedBackfill",
    "ChunkResult",
    "LiveReplicator",
    "MigrationCheckpoint",
    "MigrationJournal",
    "MigrationCoordinator",
    "MigrationPhase",
    "MigrationSlo",
    "DualWriteProxy",
    "ShadowReadStats",
    "ramp_bucket",
    "MigrationStack",
    "EspressoTarget",
    "RowTransform",
    "document_schema_for",
    "espresso_schema_for",
]
