"""The migration coordinator: a clock-driven ramped-cutover state machine.

    BACKFILL → CATCHUP → SHADOW → RAMP(5%) → … → RAMP(100%) → CUTOVER
         \\________________________________________________/
                              ↓ on SLO breach
                           ROLLBACK

Phases:

* **BACKFILL** — run DBLog watermark chunks (``chunks_per_tick`` per
  tick) until every table is fully copied; live changes replicate
  through the Databus stream the whole time.
* **CATCHUP** — backfill done; drain the stream until replication lag
  (source binlog head SCN minus client checkpoint) is zero.  If the
  lag hasn't converged by ``catchup_deadline``, the writes are landing
  faster than the stream can drain — SLO breach, roll back.
* **SHADOW** — pause CDC, enable synchronous dual-writes, and compare
  every read against the target.  CDC must pause here: a paused-at-zero
  stream plus idempotent dual-writes keeps exactly one writer per row,
  while a live stream racing the proxy could reorder a row backwards.
* **RAMP(n%)** — serve reads from the target for the n% of keys whose
  hash bucket is below the ramp, stepping up the schedule after each
  ``ramp_step_duration`` with no mismatch-rate breach.
* **CUTOVER** — final gate: a full row-by-row comparison of both
  stores.  Identical → the target becomes the store of record
  (``serve_target_only``).  Any difference → roll back instead.
* **ROLLBACK** — dual-writes off, ramp to 0%, reads/writes back on the
  source, and CDC resumes from its checkpoint to re-heal the target
  (replayed writes are idempotent upserts, so healing is safe).

Every transition — and every completed backfill chunk — is journaled
(append + fsync) *before* the coordinator acts on it, so a coordinator
crash at any point resumes from the last checkpoint without re-reading
completed chunks and without skipping a stream window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.common.atomic import atomic_section
from repro.common.clock import Clock
from repro.common.errors import ConfigurationError
from repro.common.metrics import MetricsRegistry
from repro.migration.backfill import ChunkedBackfill, ChunkResult
from repro.migration.checkpoint import MigrationCheckpoint, MigrationJournal
from repro.migration.dualwrite import DualWriteProxy


class MigrationPhase(Enum):
    BACKFILL = "backfill"
    CATCHUP = "catchup"
    SHADOW = "shadow"
    RAMP = "ramp"
    CUTOVER = "cutover"
    ROLLBACK = "rollback"


#: phases in which the migration is finished (tick() is a no-op)
TERMINAL_PHASES = (MigrationPhase.CUTOVER, MigrationPhase.ROLLBACK)


@dataclass(frozen=True)
class MigrationSlo:
    """The service-level objectives that gate each transition."""

    max_mismatch_rate: float = 0.0    # any disagreement is a breach
    min_shadow_reads: int = 20        # observations before SHADOW can pass
    shadow_duration: float = 10.0     # seconds spent in SHADOW at minimum
    ramp_steps: tuple[int, ...] = (5, 25, 50, 100)
    ramp_step_duration: float = 10.0  # seconds per ramp step at minimum
    catchup_deadline: float = 60.0    # seconds for the lag to reach zero
    chunks_per_tick: int = 1

    def __post_init__(self):
        if not self.ramp_steps or self.ramp_steps[-1] != 100:
            raise ConfigurationError("ramp schedule must end at 100%")
        if any(not 0 < p <= 100 for p in self.ramp_steps):
            raise ConfigurationError("ramp percentages must be in (0, 100]")
        if list(self.ramp_steps) != sorted(self.ramp_steps):
            raise ConfigurationError("ramp schedule must be non-decreasing")
        if self.chunks_per_tick <= 0:
            raise ConfigurationError("chunks_per_tick must be positive")


@dataclass
class TransitionRecord:
    """One observed phase change, for tests and operators."""

    at: float
    phase: MigrationPhase
    reason: str = ""
    extra: dict = field(default_factory=dict)


class MigrationCoordinator:
    """Owns the phase state machine and its durable checkpoint journal."""

    def __init__(self, proxy: DualWriteProxy, backfill: ChunkedBackfill,
                 journal: MigrationJournal, clock: Clock,
                 slo: MigrationSlo | None = None,
                 metrics: MetricsRegistry | None = None,
                 cutover_check: Callable[[], list] | None = None):
        self.proxy = proxy
        self.backfill = backfill
        # the final verification gate: a callable returning a list of
        # discrepancies (empty == safe).  Defaults to the proxy's ad-hoc
        # row comparison; pass repro.audit.wiring.cutover_check(proxy)
        # to gate on declared constraints instead (same data, but the
        # differences come back as structured Violation records).  The
        # coordinator never imports audit — the layering contract points
        # the other way — so the constraint arrives as a plain callable.
        self.cutover_check = cutover_check
        self.client = backfill.client
        self.capture = backfill.capture
        self.journal = journal
        self.clock = clock
        self.slo = slo if slo is not None else MigrationSlo()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.phase = MigrationPhase.BACKFILL
        self.ramp_index = 0
        self.entered_at = clock.now()
        self.rollback_reason: str | None = None
        self.transitions: list[TransitionRecord] = []
        self.ticks = 0
        restored = journal.load_latest()
        if restored is not None:
            self._resume(restored)
        else:
            self._journal()

    # -- resume ------------------------------------------------------------

    @atomic_section
    def _resume(self, checkpoint: MigrationCheckpoint) -> None:
        """Rebuild in-memory state from the last durable checkpoint.

        Declared atomic: if the rebuild could yield partway through,
        an interleaved tick would observe a phase whose proxy flags
        have not been restored yet.
        """
        self.phase = MigrationPhase(checkpoint.phase)
        self.ramp_index = checkpoint.ramp_index
        self.entered_at = checkpoint.entered_at
        self.client.checkpoint = checkpoint.stream_scn
        self.client.has_state = checkpoint.stream_scn > 0
        self.backfill.restore_progress(checkpoint.backfill_progress)
        if self.phase in (MigrationPhase.SHADOW, MigrationPhase.RAMP):
            self.proxy.dual_writes_enabled = True
        if self.phase is MigrationPhase.RAMP:
            self.proxy.ramp_percent = self.slo.ramp_steps[self.ramp_index]
        if self.phase is MigrationPhase.CUTOVER:
            self.proxy.serve_target_only = True
        self.metrics.counter("migration.resumes").increment()

    # -- observability -----------------------------------------------------

    @property
    def replication_lag(self) -> int:
        """Source binlog head SCN minus the stream checkpoint."""
        return max(0, self.proxy.source.binlog.last_scn
                   - self.client.checkpoint)

    @property
    def complete(self) -> bool:
        return self.phase in TERMINAL_PHASES

    def _journal(self) -> None:
        self.journal.record(MigrationCheckpoint(
            phase=self.phase.value, stream_scn=self.client.checkpoint,
            ramp_index=self.ramp_index,
            backfill_progress=dict(self.backfill.progress),
            entered_at=self.entered_at))

    def _transition(self, phase: MigrationPhase, reason: str = "") -> None:
        # the phase triple must update as one unit — a yield between
        # these stores could journal a half-entered phase
        # repro-atomic: begin
        self.phase = phase
        self.entered_at = self.clock.now()
        self.transitions.append(
            TransitionRecord(self.entered_at, phase, reason))
        # repro-atomic: end
        self.metrics.counter(f"migration.enter.{phase.value}").increment()
        self._journal()

    # -- the tick loop -----------------------------------------------------

    def tick(self) -> MigrationPhase:
        """Advance the state machine one step; returns the phase after."""
        self.ticks += 1
        if self.phase is MigrationPhase.BACKFILL:
            self._tick_backfill()
        elif self.phase is MigrationPhase.CATCHUP:
            self._tick_catchup()
        elif self.phase is MigrationPhase.SHADOW:
            self._tick_shadow()
        elif self.phase is MigrationPhase.RAMP:
            self._tick_ramp()
        # CUTOVER / ROLLBACK: terminal, nothing to drive
        return self.phase

    def run_to_completion(self, max_ticks: int = 10_000,
                          tick_interval: float = 1.0) -> MigrationPhase:
        """Drive ticks (advancing a SimClock in between) until terminal."""
        for _ in range(max_ticks):
            if self.complete:
                return self.phase
            self.tick()
            advance = getattr(self.clock, "advance", None)
            if advance is not None:
                advance(tick_interval)
        raise ConfigurationError(
            f"migration did not finish within {max_ticks} ticks "
            f"(stuck in {self.phase.value})")

    # -- per-phase behaviour ----------------------------------------------

    def _tick_backfill(self) -> None:
        for _ in range(self.slo.chunks_per_tick):
            result = self.backfill.run_one_chunk()
            if result is None:
                break
            self._on_chunk(result)
        if self.backfill.complete:
            self._transition(MigrationPhase.CATCHUP, "all tables copied")

    def _on_chunk(self, result: ChunkResult) -> None:
        """A chunk landed on the target; checkpoint it so a crash never
        re-reads it."""
        self.metrics.counter("migration.chunks").increment()
        del result  # progress/stream position are read off live state
        self._journal()

    def _tick_catchup(self) -> None:
        if self.capture is not None:
            self.capture.poll()
        self.client.poll()
        if self.replication_lag == 0:
            # one writer per row from here on: stream drained and paused,
            # every new write now lands through the dual-write proxy
            self.proxy.dual_writes_enabled = True
            self.proxy.shadow.reset()
            self._transition(MigrationPhase.SHADOW, "lag reached zero")
        elif self.clock.now() - self.entered_at > self.slo.catchup_deadline:
            self.rollback(
                f"replication lag {self.replication_lag} did not converge "
                f"within {self.slo.catchup_deadline}s")

    def _breached(self) -> bool:
        shadow = self.proxy.shadow
        return (shadow.total_reads > 0
                and shadow.mismatch_rate() > self.slo.max_mismatch_rate)

    def _tick_shadow(self) -> None:
        if self._breached():
            self.rollback(
                f"shadow mismatch rate {self.proxy.shadow.mismatch_rate():.4f} "
                f"exceeds SLO {self.slo.max_mismatch_rate:.4f}")
            return
        enough_reads = self.proxy.shadow.total_reads >= self.slo.min_shadow_reads
        enough_time = (self.clock.now() - self.entered_at
                       >= self.slo.shadow_duration)
        if enough_reads and enough_time:
            self.ramp_index = 0
            self.proxy.ramp_percent = self.slo.ramp_steps[0]
            self._transition(
                MigrationPhase.RAMP,
                f"shadow SLO met; ramping to {self.proxy.ramp_percent}%")

    def _tick_ramp(self) -> None:
        if self._breached():
            self.rollback(
                f"mismatch rate {self.proxy.shadow.mismatch_rate():.4f} at "
                f"ramp {self.slo.ramp_steps[self.ramp_index]}% exceeds SLO")
            return
        if self.clock.now() - self.entered_at < self.slo.ramp_step_duration:
            return
        if self.ramp_index + 1 < len(self.slo.ramp_steps):
            self.ramp_index += 1
            self.proxy.ramp_percent = self.slo.ramp_steps[self.ramp_index]
            self.entered_at = self.clock.now()
            self.metrics.counter("migration.ramp_steps").increment()
            self._journal()
        else:
            self._enter_cutover()

    def _enter_cutover(self) -> None:
        """The final gate: both stores must be row-for-row identical."""
        if self.cutover_check is not None:
            differences = list(self.cutover_check())
        else:
            differences = self.proxy.full_comparison()
        if differences:
            first = differences[0]
            # a full_comparison difference is (table, key, src, dst);
            # trim the row images.  Constraint Violations render whole.
            preview = (first[:2] if isinstance(first, tuple)
                       else getattr(first, "render", lambda: repr(first))())
            self.rollback(
                f"cutover verification found {len(differences)} differing "
                f"rows (first: {preview})")
            return
        self.proxy.serve_target_only = True
        self.proxy.dual_writes_enabled = False
        self._transition(MigrationPhase.CUTOVER,
                         "full comparison clean; target is store of record")

    # -- rollback ----------------------------------------------------------

    def rollback(self, reason: str) -> None:
        """Abort: source stays the store of record, CDC resumes from its
        checkpoint and re-heals the target in the background."""
        self.rollback_reason = reason
        self.proxy.dual_writes_enabled = False
        self.proxy.ramp_percent = 0
        self.proxy.serve_target_only = False
        self.metrics.counter("migration.rollbacks").increment()
        # journal the ROLLBACK *before* resuming CDC: the poll and the
        # catch-up below are yield points, and a crash there with the
        # journal still reading RAMP would make _resume re-enable dual
        # writes against a target the stream has already moved past
        self._transition(MigrationPhase.ROLLBACK, reason)
        if self.capture is not None:
            self.capture.poll()
        self.client.run_to_head()
