"""Dual-write proxy and shadow-read comparator.

The middle phases of the migration playbook: once the backfill has
converged, the application's write path goes through this proxy, which
applies every write to **both** stores synchronously; the read path
still serves from the source but *shadow-reads* the target and records
whether the two agree.  Only after the mismatch rate stays under the
SLO does the coordinator start ramping real reads to the target, a few
percent of keys at a time — the ramp bucket is a deterministic hash of
the key, so one key's reads move together and a rollback is exact.

While dual-writes are on, the CDC replicator must be paused (the
coordinator owns that): applying the same write twice is harmless —
upserts are idempotent — but applying it *late*, after a newer
dual-write landed, would roll the target row backwards.  One writer
per row at a time; the stream and the proxy never interleave.
"""

from __future__ import annotations

import hashlib

from repro.common.metrics import MetricsRegistry
from repro.migration.target import EspressoTarget
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Row


def ramp_bucket(table: str, source_key: tuple) -> int:
    """Deterministic 0–99 bucket for ramped read routing; a key's
    bucket never changes, so its reads cut over exactly once."""
    material = repr((table, source_key)).encode()
    return int.from_bytes(hashlib.md5(material).digest()[:4], "big") % 100


class ShadowReadStats:
    """Per-table agreement bookkeeping for shadow reads."""

    def __init__(self):
        self._matches: dict[str, int] = {}
        self._mismatches: dict[str, int] = {}

    def record(self, table: str, matched: bool) -> None:
        bucket = self._matches if matched else self._mismatches
        bucket[table] = bucket.get(table, 0) + 1

    def reset(self) -> None:
        """Start a fresh observation window (e.g. entering SHADOW)."""
        self._matches.clear()
        self._mismatches.clear()

    @property
    def total_reads(self) -> int:
        return sum(self._matches.values()) + sum(self._mismatches.values())

    @property
    def total_mismatches(self) -> int:
        return sum(self._mismatches.values())

    def mismatch_rate(self, table: str | None = None) -> float:
        if table is None:
            matches = sum(self._matches.values())
            mismatches = sum(self._mismatches.values())
        else:
            matches = self._matches.get(table, 0)
            mismatches = self._mismatches.get(table, 0)
        reads = matches + mismatches
        return mismatches / reads if reads else 0.0

    def by_table(self) -> dict[str, dict[str, int]]:
        tables = sorted(set(self._matches) | set(self._mismatches))
        return {t: {"matches": self._matches.get(t, 0),
                    "mismatches": self._mismatches.get(t, 0)}
                for t in tables}


class DualWriteProxy:
    """The application-facing store API during a migration.

    Writes: source always; target too when ``dual_writes_enabled``.
    The source commit happens first — it is still the system of record —
    and the target apply follows immediately; if the target write path
    raises, the exception propagates *after* the source committed, and
    the row heals on the next CDC catch-up or shadow-read repair pass.

    Reads: compare source and target whenever dual-writes are on, then
    serve from whichever side the ramp assigns this key (always source
    at 0%, always target at 100% or after cutover).
    """

    def __init__(self, source: SqlDatabase, target: EspressoTarget,
                 metrics: MetricsRegistry | None = None):
        self.source = source
        self.target = target
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.shadow = ShadowReadStats()
        self.dual_writes_enabled = False
        self.ramp_percent = 0
        self.serve_target_only = False   # post-cutover: source is retired
        self.writes = 0
        self.reads = 0
        self.target_serves = 0
        self.mismatch_log: list[tuple[str, tuple, dict | None, dict | None]] = []

    # -- write path ---------------------------------------------------------

    def upsert(self, table: str, row: Row) -> int:
        """Write one row; returns the source commit SCN (0 post-cutover)."""
        scn = 0
        if not self.serve_target_only:
            txn = self.source.begin()
            txn.upsert(table, row)
            scn = txn.commit()
        if self.dual_writes_enabled or self.serve_target_only:
            self.target.put_row(table, row)
            self.metrics.counter(f"dualwrite.{table}.puts").increment()
        self.writes += 1
        return scn

    def delete(self, table: str, source_key: tuple) -> int:
        scn = 0
        if not self.serve_target_only:
            txn = self.source.begin()
            txn.delete(table, source_key)
            scn = txn.commit()
        if self.dual_writes_enabled or self.serve_target_only:
            self.target.delete_row(table, source_key)
            self.metrics.counter(f"dualwrite.{table}.deletes").increment()
        self.writes += 1
        return scn

    # -- read path ----------------------------------------------------------

    def _source_row(self, table: str, source_key: tuple) -> Row | None:
        t = self.source.table(table)
        return dict(t.get(source_key)) if t.contains(source_key) else None

    def read(self, table: str, source_key: tuple) -> Row | None:
        """Serve a row, shadow-comparing both stores while dual-writes
        are on.  Missing-on-both-sides counts as agreement."""
        self.reads += 1
        if self.serve_target_only:
            self.target_serves += 1
            return self.target.get_row(table, source_key)
        source_row = self._source_row(table, source_key)
        if not self.dual_writes_enabled:
            return source_row
        expected = (None if source_row is None
                    else self.target.transform.document_of(table, source_row))
        actual = self.target.get_document(table, source_key)
        matched = expected == actual
        self.shadow.record(table, matched)
        name = "match" if matched else "mismatch"
        self.metrics.counter(f"shadow.{table}.{name}").increment()
        if not matched:
            self.mismatch_log.append((table, source_key, expected, actual))
        if ramp_bucket(table, source_key) < self.ramp_percent:
            self.target_serves += 1
            return self.target.get_row(table, source_key)
        return source_row

    # -- verification --------------------------------------------------------

    def full_comparison(self, tables: list[str] | None = None
                        ) -> list[tuple[str, tuple, dict | None, dict | None]]:
        """Row-by-row source↔target comparison; returns every
        disagreement as (table, key, source document, target document).
        Empty list == stores are identical (the cutover gate)."""
        differences = []
        transform = self.target.transform
        for table in sorted(tables if tables is not None
                            else self.source.table_names()):
            schema = self.source.table(table).schema
            source_docs = {schema.key_of(row):
                           transform.document_of(table, row)
                           for row in self.source.table(table).scan()}
            target_docs = self.target.dump(table)
            for key in sorted(set(source_docs) | set(target_docs), key=repr):
                expected = source_docs.get(key)
                actual = target_docs.get(key)
                if expected != actual:
                    differences.append((table, key, expected, actual))
        return differences
