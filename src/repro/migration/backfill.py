"""DBLog-style chunked backfill interleaved with the live change stream.

The problem (PAPER.md §III): bootstrap a target with a *consistent*
copy of a source database "while the online data change stream
continues" — without locking the source or stopping writes.  The
DBLog algorithm (Andreakis et al., 2020) does it with watermarks
instead of locks:

1. write a **low watermark** into the source's commit stream;
2. read one keyed chunk of rows (no lock — writers keep committing);
3. write a **high watermark**;
4. process the change stream in order: every live change applies to
   the target as usual, and when the high watermark arrives, the chunk
   is applied **minus any key that changed between the watermarks** —
   those chunk rows are stale by construction and the live events for
   them are newer or equal.

Because the chunk is applied *at the stream position of its high
watermark*, every target write lands in a single serial order
consistent with source commit order: live events before the low
watermark precede the chunk, the chunk excludes in-flight keys, and
events after the high watermark follow it.  Chunks are re-runnable —
upserts are idempotent — so a crash mid-chunk just repeats that chunk
from its recorded start key with fresh watermarks.

:class:`LiveReplicator` is the Databus consumer that plays both roles
(live applier + chunk applier); :class:`ChunkedBackfill` drives the
chunk loop and pages the source with ``SqlDatabase.scan_chunk``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.metrics import MetricsRegistry
from repro.common.serialization import SchemaRegistry, decode_record
from repro.databus.client import DatabusClient, DatabusConsumer
from repro.databus.events import DatabusEvent, watermark_label
from repro.migration.target import EspressoTarget
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Row

#: Watermark label prefixes; the low label encodes only the table (the
#: watermark's own SCN identifies the chunk), the high label repeats the
#: low SCN so the replicator can match the bracket pair exactly.
LOW_PREFIX = "chunk-low"
HIGH_PREFIX = "chunk-high"


def low_label(table: str) -> str:
    return f"{LOW_PREFIX}:{table}"


def high_label(table: str, low_scn: int) -> str:
    return f"{HIGH_PREFIX}:{table}:{low_scn}"


@dataclass
class ArmedChunk:
    """One in-flight chunk waiting for its high watermark."""

    table: str
    low_scn: int
    rows_by_key: dict[tuple, Row]
    on_applied: Callable[["ChunkResult"], None] | None
    touched: set = field(default_factory=set)
    opened: bool = False    # saw our low watermark in the stream


@dataclass(frozen=True)
class ChunkResult:
    """What one completed chunk did."""

    table: str
    low_scn: int
    high_scn: int
    rows_read: int
    rows_applied: int
    rows_discarded: int
    last_key: tuple | None   # highest source key read (resume point)


class LiveReplicator(DatabusConsumer):
    """The migration's Databus consumer: applies live changes to the
    target and lands armed chunks at their high-watermark position.

    Replay-safe: re-delivered data events are idempotent upserts, and
    watermark events for chunks that are not armed (a pre-crash run's
    brackets, or another table's) are ignored.
    """

    def __init__(self, source: SqlDatabase, target: EspressoTarget,
                 schemas: SchemaRegistry,
                 metrics: MetricsRegistry | None = None):
        self.source = source
        self.target = target
        self.schemas = schemas
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._armed: dict[tuple[str, int], ArmedChunk] = {}
        self.events_applied = 0
        self.chunks_applied = 0
        self.completed: list[ChunkResult] = []

    # -- chunk arming --------------------------------------------------------

    def arm_chunk(self, table: str, low_scn: int, rows: list[Row],
                  on_applied: Callable[[ChunkResult], None] | None = None
                  ) -> None:
        """Hand the replicator a freshly read chunk, keyed by the SCN of
        the low watermark that preceded the read."""
        schema = self.target.transform.schema(table)
        key = (table, low_scn)
        if key in self._armed:
            raise ConfigurationError(f"chunk {key} already armed")
        self._armed[key] = ArmedChunk(
            table, low_scn,
            {schema.key_of(row): row for row in rows}, on_applied)

    @property
    def armed_chunks(self) -> int:
        return len(self._armed)

    # -- consumer callbacks --------------------------------------------------

    def on_data_event(self, event: DatabusEvent) -> None:
        if event.is_control:
            self._on_control(event)
            return
        schema = self.schemas.get(event.source, event.schema_version)
        row = decode_record(schema, event.payload)
        source_key = self.target.transform.schema(event.source).key_of(row)
        # record in-flight keys for every open chunk bracket on this table
        for chunk in self._armed.values():
            if chunk.table == event.source and chunk.opened:
                chunk.touched.add(source_key)
        if event.kind is ChangeKind.DELETE:
            self.target.delete_row(event.source, source_key)
        else:
            self.target.put_row(event.source, row)
        self.events_applied += 1
        self.metrics.counter("migration.live_events").increment()

    def _on_control(self, event: DatabusEvent) -> None:
        label = watermark_label(event)
        parts = label.split(":")
        if parts[0] == LOW_PREFIX and len(parts) == 2:
            chunk = self._armed.get((parts[1], event.scn))
            if chunk is not None:
                chunk.opened = True
        elif parts[0] == HIGH_PREFIX and len(parts) == 3:
            chunk = self._armed.pop((parts[1], int(parts[2])), None)
            if chunk is not None:
                self._apply_chunk(chunk, high_scn=event.scn)
        # anything else: a stale bracket from a previous run, or some
        # other subsystem's watermark — not ours, pass over it

    def _apply_chunk(self, chunk: ArmedChunk, high_scn: int) -> None:
        """Land a chunk at its high watermark: drop superseded rows,
        bulk-apply the rest."""
        survivors = [row for key, row in chunk.rows_by_key.items()
                     if key not in chunk.touched]
        if survivors:
            self.target.bulk_apply_rows(chunk.table, survivors)
        keys = list(chunk.rows_by_key)
        result = ChunkResult(
            table=chunk.table, low_scn=chunk.low_scn, high_scn=high_scn,
            rows_read=len(chunk.rows_by_key), rows_applied=len(survivors),
            rows_discarded=len(chunk.rows_by_key) - len(survivors),
            last_key=max(keys) if keys else None)
        self.chunks_applied += 1
        self.completed.append(result)
        self.metrics.counter(f"backfill.{chunk.table}.rows_applied") \
            .increment(result.rows_applied)
        self.metrics.counter(f"backfill.{chunk.table}.rows_discarded") \
            .increment(result.rows_discarded)
        if chunk.on_applied is not None:
            chunk.on_applied(result)


#: per-table backfill progress: a resume key, or DONE
DONE = "done"


class ChunkedBackfill:
    """Drives the chunk loop over every source table, in table-name
    order, pumping the Databus client so each chunk's high watermark is
    consumed (and the chunk therefore applied) before the next begins.

    ``progress`` maps table → last completed chunk's highest key (the
    next ``scan_chunk`` resume point) or :data:`DONE`; restoring that
    dict from a checkpoint resumes the backfill without re-reading any
    completed chunk.
    """

    def __init__(self, source: SqlDatabase, replicator: LiveReplicator,
                 client: DatabusClient, capture=None, chunk_size: int = 64,
                 tables: list[str] | None = None,
                 on_chunk_read: Callable[[str, tuple | None], None] | None = None,
                 on_chunk_complete: Callable[[str, tuple | None], None] | None = None):
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        self.source = source
        self.replicator = replicator
        self.client = client
        self.capture = capture   # binlog→relay pump (capture_from_binlog)
        self.chunk_size = chunk_size
        self.tables = sorted(tables if tables is not None
                             else source.table_names())
        self.progress: dict[str, object] = {t: None for t in self.tables}
        self.on_chunk_read = on_chunk_read
        self.on_chunk_complete = on_chunk_complete
        self.chunks_run = 0

    # -- state -------------------------------------------------------------

    @property
    def complete(self) -> bool:
        return all(self.progress[t] == DONE for t in self.tables)

    def _next_table(self) -> str | None:
        for table in self.tables:
            if self.progress[table] != DONE:
                return table
        return None

    def restore_progress(self, progress: dict[str, object]) -> None:
        """Resume from a checkpointed progress map (crash recovery)."""
        for table, position in progress.items():
            if table in self.progress:
                self.progress[table] = position

    # -- the chunk loop ----------------------------------------------------

    def run_one_chunk(self) -> ChunkResult | None:
        """One full DBLog bracket: low watermark, chunk read, high
        watermark, then pump the stream past the high watermark so the
        chunk lands.  Returns the result, or None when backfill is
        already complete."""
        table = self._next_table()
        if table is None:
            return None
        after_key = self.progress[table]
        if self.on_chunk_read is not None:
            self.on_chunk_read(table, after_key)
        low_scn = self.source.write_watermark(low_label(table))
        rows = self.source.scan_chunk(table, after_key, self.chunk_size)
        landed: list[ChunkResult] = []
        self.replicator.arm_chunk(table, low_scn, rows, landed.append)
        high_scn = self.source.write_watermark(high_label(table, low_scn))
        self._pump_to(high_scn)
        if not landed:
            raise ConfigurationError(
                f"chunk ({table}, {low_scn}) did not land by SCN {high_scn}; "
                "is the relay filtering control events?")
        result = landed[0]
        self.chunks_run += 1
        if result.rows_read < self.chunk_size:
            # everything present at scan time is copied; rows committed
            # later reach the target through the live stream
            advanced: object = DONE
        else:
            advanced = result.last_key
        if self.progress[table] == after_key:
            # only advance if nobody reset the cursor while the pump
            # yielded; the copied chunk is idempotent, so a racing
            # restore_progress() owner simply re-scans it
            self.progress[table] = advanced
        if self.on_chunk_complete is not None:
            self.on_chunk_complete(table, after_key)
        return result

    def _pump_to(self, scn: int) -> None:
        while self.client.checkpoint < scn:
            if self.capture is not None:
                self.capture.poll()
            delivered = self.client.poll()
            if delivered == 0 and self.client.checkpoint < scn:
                raise ConfigurationError(
                    f"stream stalled at SCN {self.client.checkpoint} "
                    f"before reaching {scn}")
