"""Durable migration checkpoints.

The coordinator journals a :class:`MigrationCheckpoint` at every phase
transition and after every completed backfill chunk.  The journal is a
CRC-framed write-ahead log on the coordinator's disk — append, fsync,
*then* act — so a coordinator that crashes mid-chunk restarts from the
last checkpoint: the stream resumes from ``stream_scn`` (window-
boundary at-least-once, like any Databus consumer) and the backfill
resumes from ``backfill_progress`` without re-reading a completed
chunk.  The chunk that was in flight at the crash is simply re-run
with fresh watermarks; its upserts are idempotent.

Frames are ``repr``-encoded and read back with
:func:`ast.literal_eval` — the same trick the bootstrap server uses
for keys: deterministic, human-inspectable, and no serializer
dependency.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.storage import Disk
from repro.common.wal import WriteAheadLog


@dataclass(frozen=True)
class MigrationCheckpoint:
    """Everything needed to resume the migration after a crash."""

    phase: str                    # MigrationPhase value
    stream_scn: int               # Databus client checkpoint
    ramp_index: int = 0           # position in the ramp schedule
    backfill_progress: dict = field(default_factory=dict)
    entered_at: float = 0.0       # clock time the phase was entered

    def encode(self) -> bytes:
        return repr((self.phase, self.stream_scn, self.ramp_index,
                     self.backfill_progress, self.entered_at)).encode()

    @classmethod
    def decode(cls, payload: bytes) -> "MigrationCheckpoint":
        phase, scn, ramp, progress, entered = \
            ast.literal_eval(payload.decode())
        return cls(phase=phase, stream_scn=scn, ramp_index=ramp,
                   backfill_progress=progress, entered_at=entered)


class MigrationJournal:
    """Append-only checkpoint log; the last frame wins on recovery."""

    LOG_NAME = "migration.ckpt"

    def __init__(self, disk: Disk, name: str = LOG_NAME):
        self._wal = WriteAheadLog(name, disk=disk)
        self.records_written = 0

    def record(self, checkpoint: MigrationCheckpoint) -> None:
        """Persist one checkpoint: framed, appended, fsynced before the
        coordinator takes the action the checkpoint describes."""
        self._wal.append(checkpoint.encode())
        self._wal.fsync()
        self.records_written += 1

    def load_latest(self) -> MigrationCheckpoint | None:
        """The most recent intact checkpoint, or None on first boot.
        A torn tail frame (crash mid-append) is dropped by the WAL's
        CRC scan, falling back to the previous record."""
        latest = None
        for payload in self._wal.replay():
            latest = MigrationCheckpoint.decode(payload)
        return latest

    def history(self) -> list[MigrationCheckpoint]:
        """Every surviving checkpoint, oldest first (for audits/tests)."""
        return [MigrationCheckpoint.decode(p) for p in self._wal.replay()]

    def close(self) -> None:
        self._wal.close()


def require_checkpoint(journal: MigrationJournal) -> MigrationCheckpoint:
    """Load-or-fail helper for resume paths that must find state."""
    checkpoint = journal.load_latest()
    if checkpoint is None:
        raise ConfigurationError("journal holds no migration checkpoint")
    return checkpoint
