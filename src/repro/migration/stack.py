"""One-call wiring for a complete migration stack.

The subsystem spans four layers — sqlstore source, Databus pipeline,
Espresso target, and the coordinator on top — and every test, example,
and benchmark needs the same ten objects wired the same way.
:meth:`MigrationStack.build` does that wiring; ``build`` again with the
same source/cluster/disk (after a simulated coordinator crash) makes a
fresh coordinator that resumes from the journal on the shared disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.clock import Clock
from repro.common.metrics import MetricsRegistry
from repro.common.storage import Disk
from repro.databus.client import DatabusClient
from repro.databus.relay import Relay, capture_from_binlog
from repro.espresso.cluster import EspressoCluster
from repro.migration.backfill import ChunkedBackfill, LiveReplicator
from repro.migration.checkpoint import MigrationJournal
from repro.migration.cutover import MigrationCoordinator, MigrationSlo
from repro.migration.dualwrite import DualWriteProxy
from repro.migration.target import (
    EspressoTarget,
    RowTransform,
    espresso_schema_for,
)
from repro.sqlstore.database import SqlDatabase


@dataclass
class MigrationStack:
    """All the moving parts of one live migration, pre-wired."""

    source: SqlDatabase
    cluster: EspressoCluster
    relay: Relay
    capture: capture_from_binlog
    client: DatabusClient
    replicator: LiveReplicator
    target: EspressoTarget
    proxy: DualWriteProxy
    journal: MigrationJournal
    coordinator: MigrationCoordinator
    metrics: MetricsRegistry

    @classmethod
    def build(cls, source: SqlDatabase, disk: Disk, clock: Clock,
              slo: MigrationSlo | None = None, chunk_size: int = 64,
              cluster: EspressoCluster | None = None,
              num_nodes: int = 3, num_partitions: int = 8,
              replication_factor: int = 2,
              cutover_check: Callable[["DualWriteProxy"],
                                      Callable[[], list]] | None = None
              ) -> "MigrationStack":
        """Wire a full stack.

        ``disk`` holds the coordinator's checkpoint journal — reuse the
        same disk (and ``cluster``) across builds to model a coordinator
        process restart that resumes mid-migration.

        ``cutover_check`` is a *factory* taking the built proxy and
        returning the coordinator's verification gate (the proxy does
        not exist until build time) — pass
        ``repro.audit.wiring.cutover_check`` to verify the cutover with
        declared constraints.
        """
        if cluster is None:
            cluster = EspressoCluster(
                espresso_schema_for(source, num_partitions=num_partitions,
                                    replication_factor=replication_factor),
                num_nodes=num_nodes, clock=clock)
            cluster.start()
        metrics = MetricsRegistry()
        transform = RowTransform(source)
        target = EspressoTarget(cluster, transform)
        relay = Relay(f"{source.name}-migration-relay")
        capture = capture_from_binlog(source, relay)
        replicator = LiveReplicator(source, target, relay.schemas, metrics)
        client = DatabusClient(replicator, relay, clock=clock,
                               client_name=f"{source.name}-migration")
        backfill = ChunkedBackfill(source, replicator, client,
                                   capture=capture, chunk_size=chunk_size)
        proxy = DualWriteProxy(source, target, metrics)
        journal = MigrationJournal(disk)
        coordinator = MigrationCoordinator(
            proxy, backfill, journal, clock, slo=slo, metrics=metrics,
            cutover_check=(cutover_check(proxy)
                           if cutover_check is not None else None))
        return cls(source=source, cluster=cluster, relay=relay,
                   capture=capture, client=client, replicator=replicator,
                   target=target, proxy=proxy, journal=journal,
                   coordinator=coordinator, metrics=metrics)
