"""The migration target: an Espresso cluster fronted by an adapter.

The paper's arc is moving source-of-truth data off legacy SQL stores
onto Espresso (PAPER.md §IV), so the migration subsystem's target is a
running :class:`~repro.espresso.cluster.EspressoCluster`.  The adapter
owns the *shape translation* between the two worlds:

* a source primary key ``(member_id,)`` (ints or strings) becomes an
  Espresso resource key ``("123",)`` — Espresso URIs are strings;
* a source row becomes a document holding the non-key columns, encoded
  against a document schema derived from the source table schema;
* writes route to the master of the key's partition via the cluster's
  external view, so Helix failover is transparent to the migration;
* chunk loads use the storage node's :meth:`bulk_apply` path — one
  commit window per partition per chunk instead of one per row.

Everything the comparator needs — the row→document transform and the
key stringification — lives here too, so the dual-write proxy and the
backfill agree byte-for-byte on what "equal" means.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, KeyNotFoundError
from repro.common.serialization import Field, RecordSchema
from repro.espresso.cluster import EspressoCluster
from repro.espresso.schema import DatabaseSchema, EspressoTableSchema
from repro.espresso.storage import EspressoStorageNode
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Row, TableSchema

_TYPE_MAP = {str: "string", int: "long", float: "double",
             bytes: "bytes", bool: "boolean"}
_KEY_TYPES = (str, int)   # key columns we can round-trip through strings


def document_schema_for(table_schema: TableSchema,
                        version: int = 1) -> RecordSchema:
    """The Espresso document schema for one source table: its non-key
    columns as an Avro-style record named after the table."""
    fields = []
    key_columns = set(table_schema.primary_key)
    for column in table_schema.columns:
        if column.name in key_columns:
            continue
        avro_type = _TYPE_MAP.get(column.type, "bytes")
        if column.nullable:
            fields.append(Field(column.name, ["null", avro_type]))
        else:
            fields.append(Field(column.name, avro_type))
    if not fields:
        raise ConfigurationError(
            f"table {table_schema.name}: no non-key columns to migrate")
    return RecordSchema(table_schema.name, fields, version=version)


def espresso_schema_for(source: SqlDatabase, num_partitions: int = 8,
                        replication_factor: int = 2) -> DatabaseSchema:
    """An Espresso database schema mirroring every source table: same
    table names, key fields named after the source primary-key columns."""
    tables = []
    for table_name in source.table_names():
        schema = source.table(table_name).schema
        for pk in schema.primary_key:
            if schema.column(pk).type not in _KEY_TYPES:
                raise ConfigurationError(
                    f"table {table_name}: key column {pk!r} has type "
                    f"{schema.column(pk).type.__name__}; migration keys "
                    "must be str or int to round-trip through Espresso "
                    "resource paths")
        tables.append(EspressoTableSchema(table_name, schema.primary_key))
    return DatabaseSchema(f"{source.name}-espresso",
                          num_partitions=num_partitions,
                          replication_factor=replication_factor,
                          tables=tuple(tables))


class RowTransform:
    """Deterministic source-row ↔ target-document translation for one
    source database.  Both the backfill and the shadow-read comparator
    use this one object, so "source == target" has a single meaning."""

    def __init__(self, source: SqlDatabase):
        self._schemas = {name: source.table(name).schema
                         for name in source.table_names()}

    def schema(self, table: str) -> TableSchema:
        try:
            return self._schemas[table]
        except KeyError:
            raise ConfigurationError(f"unknown table {table!r}") from None

    def target_key(self, table: str, source_key: tuple) -> tuple[str, ...]:
        """Source primary key → Espresso resource key (stringified)."""
        del table  # every table stringifies the same way
        return tuple(str(part) for part in source_key)

    def source_key(self, table: str, target_key: tuple[str, ...]) -> tuple:
        """Espresso resource key → typed source primary key."""
        schema = self.schema(table)
        out = []
        for name, part in zip(schema.primary_key, target_key):
            out.append(schema.column(name).type(part))
        return tuple(out)

    def document_of(self, table: str, row: Row) -> dict:
        """The non-key columns of a source row, in schema column order."""
        schema = self.schema(table)
        key_columns = set(schema.primary_key)
        return {c.name: row[c.name] for c in schema.columns
                if c.name not in key_columns and c.name in row}

    def row_of(self, table: str, target_key: tuple[str, ...],
               document: dict) -> Row:
        """Rebuild a source-shaped row from a target document."""
        schema = self.schema(table)
        row = dict(zip(schema.primary_key,
                       self.source_key(table, target_key)))
        row.update(document)
        return row


class EspressoTarget:
    """Routes migration reads/writes to the cluster's partition masters.

    Deletes are idempotent: the live stream may replay a delete for a
    row the backfill never copied (or replay one it already applied),
    and neither case is an error — convergence, not strictness, is the
    contract on the target side of a migration.
    """

    def __init__(self, cluster: EspressoCluster, transform: RowTransform):
        self.cluster = cluster
        self.transform = transform
        self.puts = 0
        self.deletes = 0
        self.bulk_rows = 0
        for table_name in cluster.database.table_names():
            if not cluster.schemas.has_schema(cluster.database.name,
                                              table_name):
                cluster.post_document_schema(
                    table_name,
                    document_schema_for(self.transform.schema(table_name)))

    # -- write path ---------------------------------------------------------

    def _master_for(self, resource_id: str) -> EspressoStorageNode:
        return self.cluster.node_for_resource(resource_id)

    def put_row(self, table: str, row: Row) -> None:
        """Upsert one source-shaped row (live replication / dual write)."""
        schema = self.transform.schema(table)
        key = self.transform.target_key(table, schema.key_of(row))
        document = self.transform.document_of(table, row)
        self._master_for(key[0]).put_document(table, key, document)
        self.puts += 1

    def delete_row(self, table: str, source_key: tuple) -> None:
        key = self.transform.target_key(table, source_key)
        try:
            self._master_for(key[0]).delete_document(table, key)
        except KeyNotFoundError:
            return  # already absent: replayed or never-backfilled delete
        self.deletes += 1

    def bulk_apply_rows(self, table: str, rows: list[Row]) -> int:
        """Land one backfill chunk through the bulk path: rows grouped
        by partition master, one commit window per partition each."""
        schema = self.transform.schema(table)
        by_node: dict[str, list[tuple[tuple[str, ...], dict]]] = {}
        node_of: dict[str, EspressoStorageNode] = {}
        for row in rows:
            key = self.transform.target_key(table, schema.key_of(row))
            node = self._master_for(key[0])
            node_of[node.instance_name] = node
            by_node.setdefault(node.instance_name, []).append(
                (key, self.transform.document_of(table, row)))
        for instance_name in sorted(by_node):
            node_of[instance_name].bulk_apply(table, by_node[instance_name])
        self.bulk_rows += len(rows)
        return len(rows)

    # -- read path ----------------------------------------------------------

    def get_document(self, table: str, source_key: tuple) -> dict | None:
        """The stored document for a source key, or None when absent."""
        key = self.transform.target_key(table, source_key)
        try:
            node = self._master_for(key[0])
            return node.get_document(table, key).document
        except KeyNotFoundError:
            return None

    def get_row(self, table: str, source_key: tuple) -> Row | None:
        """A source-shaped row served from the target, or None."""
        document = self.get_document(table, source_key)
        if document is None:
            return None
        key = self.transform.target_key(table, source_key)
        return self.transform.row_of(table, key, document)

    # -- verification --------------------------------------------------------

    def dump(self, table: str) -> dict[tuple, dict]:
        """Every stored document keyed by *source* key, for full
        comparison against the source table."""
        out: dict[tuple, dict] = {}
        database = self.cluster.database
        resource_field = database.table(table).resource_field
        for partition in range(database.num_partitions):
            node = self.cluster.master_node(partition)
            if node is None:
                raise ConfigurationError(
                    f"partition {partition} has no master; converge the "
                    "cluster before verifying")
            for row in node.local.table(table).scan():
                if database.partition_for(row[resource_field]) != partition:
                    continue  # this node only masters `partition` here
                record = node.get_document(
                    table, tuple(row[k]
                                 for k in database.table(table).key_fields))
                out[self.transform.source_key(table, record.key)] = \
                    record.document
        return out
