"""Scripted, deterministic fault plans plus durability invariant checkers.

A :class:`FaultPlan` is a reproducible chaos schedule: kill/restart/
corrupt actions pinned to simulated timestamps on a
:class:`~repro.common.clock.SimClock`, executed against a
:class:`~repro.simnet.disk.SimDisk` and whatever component lifecycle
handlers the test registers.  Because the clock, the disk RNG, and the
schedule itself are all seeded and sorted, running the same plan twice
produces a byte-identical fault trace — the property the chaos tests
assert.

The checkers encode the DESIGN.md §9 contract as data:

* :class:`AckLedger` — every acknowledged write must read back intact
  after recovery (acked ⇒ fsynced ⇒ recoverable);
* :class:`ScnAuditor` — per node and partition, commit SCNs advance
  densely: no window applied twice, none skipped;
* :func:`offsets_within_watermark` — a consumer's resume offset never
  points past what the broker durably exposes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import SimClock
from repro.simnet.disk import SimDisk


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault."""

    at: float
    kind: str                 # "kill" | "restart" | "torn_write" | "bit_flip" | "call"
    node: str = ""
    path: str | None = None
    keep_bytes: int | None = None
    offset: int | None = None
    label: str = ""
    fn: Callable[[], None] | None = field(default=None, compare=False)


class FaultPlan:
    """A deterministic kill/restart/corrupt schedule.

    Usage::

        plan = FaultPlan(clock, disk, seed=7)
        plan.on_kill(lambda node: cluster.kill_node(node))
        plan.on_restart(lambda node: cluster.restart_node(node))
        plan.torn_write(at=4.9, node="node-1")   # arm before the kill
        plan.kill(at=5.0, node="node-1")
        plan.restart(at=8.0, node="node-1")
        plan.run(until=10.0)

    ``executed`` records ``(time, kind, node, detail)`` tuples in firing
    order; together with ``disk.trace_bytes()`` it forms the replayable
    fault trace.
    """

    def __init__(self, clock: SimClock, disk: SimDisk, seed: int = 0):
        self.clock = clock
        self.disk = disk
        self.rng = random.Random(seed)
        self._actions: list[FaultAction] = []
        self._kill_handlers: list[Callable[[str], None]] = []
        self._restart_handlers: list[Callable[[str], None]] = []
        self.executed: list[tuple[float, str, str, str]] = []

    # -- lifecycle handlers --------------------------------------------------

    def on_kill(self, handler: Callable[[str], None]) -> None:
        """Register a handler invoked with the node name on every kill
        (typically the cluster's own kill method, which crashes the
        node's disk scope and network endpoint)."""
        self._kill_handlers.append(handler)

    def on_restart(self, handler: Callable[[str], None]) -> None:
        self._restart_handlers.append(handler)

    # -- schedule construction ------------------------------------------------

    def kill(self, at: float, node: str) -> None:
        self._actions.append(FaultAction(at, "kill", node))

    def restart(self, at: float, node: str) -> None:
        self._actions.append(FaultAction(at, "restart", node))

    def torn_write(self, at: float, node: str, path: str | None = None,
                   keep_bytes: int | None = None) -> None:
        """Arm a torn write: the node's *next* crash cuts its unsynced
        tail mid-record instead of dropping it cleanly."""
        self._actions.append(FaultAction(at, "torn_write", node, path=path,
                                         keep_bytes=keep_bytes))

    def bit_flip(self, at: float, node: str, path: str,
                 offset: int | None = None) -> None:
        self._actions.append(FaultAction(at, "bit_flip", node, path=path,
                                         offset=offset))

    def call(self, at: float, label: str, fn: Callable[[], None]) -> None:
        """Schedule arbitrary workload (writes, reads, checks) between
        faults so the plan captures the whole scenario in one place."""
        self._actions.append(FaultAction(at, "call", label=label, fn=fn))

    # -- execution -------------------------------------------------------------

    def _fire(self, action: FaultAction) -> None:
        now = round(self.clock.now(), 9)
        if action.kind == "kill":
            for handler in self._kill_handlers:
                handler(action.node)
            self.executed.append((now, "kill", action.node, ""))
        elif action.kind == "restart":
            for handler in self._restart_handlers:
                handler(action.node)
            self.executed.append((now, "restart", action.node, ""))
        elif action.kind == "torn_write":
            self.disk.arm_torn_write(action.node, path=action.path,
                                     keep_bytes=action.keep_bytes)
            self.executed.append((now, "torn_write", action.node,
                                  action.path or "<largest-unsynced>"))
        elif action.kind == "bit_flip":
            offset = self.disk.flip_bit(action.node, action.path,
                                        offset=action.offset)
            self.executed.append((now, "bit_flip", action.node,
                                  f"{action.path}@{offset}"))
        elif action.kind == "call":
            action.fn()
            self.executed.append((now, "call", "", action.label))
        else:  # pragma: no cover - schedule constructors gate the kinds
            raise ValueError(f"unknown fault kind {action.kind!r}")

    def run(self, until: float | None = None) -> list[tuple[float, str, str, str]]:
        """Schedule every action on the clock and advance through them.

        Actions sharing a timestamp fire in the order they were added
        (the clock breaks ties by scheduling order), so a plan is fully
        determined by its construction sequence.
        """
        horizon = until
        for action in self._actions:
            if horizon is None or action.at > horizon:
                horizon = action.at
            self.clock.call_at(action.at,
                               lambda action=action: self._fire(action))
        if horizon is not None:
            self.clock.run_until(horizon)
        return self.executed

    def trace_lines(self) -> list[str]:
        """The executed schedule as repr lines, for byte-compare."""
        return [repr(entry) for entry in self.executed]


class AckLedger:
    """Tracks acknowledged writes and verifies they survive recovery.

    ``record`` is called the moment a write is acked (the system said
    "durable"); ``verify`` is called after kills and restarts with a
    reader function mapping the recorded key to the recovered value.
    """

    def __init__(self):
        self._acked: dict[tuple[str, object], object] = {}

    def record(self, system: str, key: object, value: object) -> None:
        self._acked[(system, key)] = value

    def __len__(self) -> int:
        return len(self._acked)

    def verify(self, system: str,
               reader: Callable[[object], object]) -> list[str]:
        """Read every acked key of ``system`` back; returns violations.

        The reader raises or returns a different value ⇒ acked-write
        loss, the one thing DESIGN.md §9 forbids outright.
        """
        violations = []
        for (sys_name, key), expected in sorted(self._acked.items(),
                                                key=lambda item: repr(item[0])):
            if sys_name != system:
                continue
            try:
                actual = reader(key)
            except Exception as exc:  # noqa: BLE001 - any failure is a loss
                violations.append(
                    f"{system}: acked key {key!r} unreadable after "
                    f"recovery: {type(exc).__name__}: {exc}")
                continue
            if actual != expected:
                violations.append(
                    f"{system}: acked key {key!r} recovered as "
                    f"{actual!r}, expected {expected!r}")
        return violations


class ScnAuditor:
    """Checks per-(node, partition) SCN streams for duplicates and gaps.

    Plug :meth:`hook` into ``EspressoStorageNode(on_apply=...)``; after
    a crash-recovery, call :meth:`observe_recovery` with the node's
    recovered ``partition_scn`` so catch-up resuming at ``scn + 1`` is
    not misread as a gap.
    """

    def __init__(self):
        self._last: dict[tuple[str, int], int] = {}
        self.violations: list[str] = []
        self.windows_seen = 0

    def hook(self, node: str) -> Callable[[int, int], None]:
        def on_apply(partition: int, scn: int) -> None:
            self.windows_seen += 1
            key = (node, partition)
            last = self._last.get(key, 0)
            if scn <= last:
                self.violations.append(
                    f"{node}: partition {partition} applied SCN {scn} "
                    f"twice (already at {last})")
            elif scn > last + 1:
                self.violations.append(
                    f"{node}: partition {partition} skipped SCNs "
                    f"{last + 1}..{scn - 1}")
            self._last[key] = scn
        return on_apply

    def observe_recovery(self, node: str,
                         partition_scn: dict[int, int]) -> None:
        """A recovered node resumes from its durable SCNs; re-baseline
        so the auditor demands density from there onward."""
        for partition, scn in sorted(partition_scn.items()):
            key = (node, partition)
            self._last[key] = max(self._last.get(key, 0), scn)


class ChunkLedger:
    """Checks that a crash-resumed backfill never re-reads a completed
    chunk (the migration checkpoint contract).

    Wire the two methods into ``ChunkedBackfill(on_chunk_read=...,
    on_chunk_complete=...)`` — the backfill takes plain callables, so
    migration code never imports this module.  A chunk is identified by
    its start position ``(table, after_key)``: re-reading the position
    that was *in flight* at a crash is legal (it never completed, and
    its upserts are idempotent), but re-reading a position whose chunk
    completed means the coordinator resumed from a stale checkpoint and
    is repeating durable work.
    """

    def __init__(self):
        self._completed: set[tuple[str, str]] = set()
        self.reads = 0
        self.completions = 0
        self.violations: list[str] = []

    def _position(self, table: str, after_key: object) -> tuple[str, str]:
        return (table, repr(after_key))

    def on_read(self, table: str, after_key: object) -> None:
        self.reads += 1
        if self._position(table, after_key) in self._completed:
            self.violations.append(
                f"{table}: chunk after {after_key!r} read again after "
                "completing — resume ignored a durable checkpoint")

    def on_complete(self, table: str, after_key: object) -> None:
        self.completions += 1
        position = self._position(table, after_key)
        if position in self._completed:
            self.violations.append(
                f"{table}: chunk after {after_key!r} completed twice")
        self._completed.add(position)


def offsets_within_watermark(offsets: dict[tuple[str, int], int],
                             watermark_of: Callable[[str, int], int]
                             ) -> list[str]:
    """Check saved consumer offsets against broker high watermarks.

    A recovered broker may have truncated a torn (never-acked) tail, but
    a consumer's resume offset must still be at or below what the broker
    now exposes — otherwise the consumer would skip or re-read garbage.
    """
    violations = []
    for (topic, partition), offset in sorted(offsets.items()):
        watermark = watermark_of(topic, partition)
        if offset > watermark:
            violations.append(
                f"{topic}-{partition}: consumer offset {offset} beyond "
                f"high watermark {watermark}")
    return violations
