"""Scripted, deterministic fault plans plus durability invariant checkers.

A :class:`FaultPlan` is a reproducible chaos schedule: kill/restart/
corrupt actions pinned to simulated timestamps on a
:class:`~repro.common.clock.SimClock`, executed against a
:class:`~repro.simnet.disk.SimDisk` and whatever component lifecycle
handlers the test registers.  Because the clock, the disk RNG, and the
schedule itself are all seeded and sorted, running the same plan twice
produces a byte-identical fault trace — the property the chaos tests
assert.

The checkers encode the DESIGN.md §9 contract as data:

* :class:`AckLedger` — every acknowledged write must read back intact
  after recovery (acked ⇒ fsynced ⇒ recoverable);
* :class:`ScnAuditor` — per node and partition, commit SCNs advance
  densely: no window applied twice, none skipped;
* :func:`offsets_within_watermark` — a consumer's resume offset never
  points past what the broker durably exposes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.simnet.disk import SimDisk


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault."""

    at: float
    kind: str                 # "kill" | "restart" | "torn_write" | "bit_flip"
                              # | "kill_container" | "restart_container"
                              # | "call" | "inject" | "limp" | "heal_limp"
                              # | "net_crash" | "net_recover" | "set_link"
                              # | "clear_link" | "block" | "heal_blocks"
    node: str = ""
    path: str | None = None
    keep_bytes: int | None = None
    offset: int | None = None
    label: str = ""
    fn: Callable[[], None] | None = field(default=None, compare=False)
    # gray-failure fields
    factor: float | None = None
    src: str = ""
    dst: str = ""
    groups: tuple = ()
    latency_model: Callable | None = field(default=None, compare=False)
    loss_rate: float = 0.0


class FaultPlan:
    """A deterministic kill/restart/corrupt schedule.

    Usage::

        plan = FaultPlan(clock, disk, seed=7)
        plan.on_kill(lambda node: cluster.kill_node(node))
        plan.on_restart(lambda node: cluster.restart_node(node))
        plan.torn_write(at=4.9, node="node-1")   # arm before the kill
        plan.kill(at=5.0, node="node-1")
        plan.restart(at=8.0, node="node-1")
        plan.run(until=10.0)

    ``executed`` records ``(time, kind, node, detail)`` tuples in firing
    order; together with ``disk.trace_bytes()`` it forms the replayable
    fault trace.
    """

    def __init__(self, clock: SimClock, disk: SimDisk, seed: int = 0,
                 network=None):
        self.clock = clock
        self.disk = disk
        # gray-failure actions (limp, links, one-way blocks, flapping)
        # drive a SimNetwork's FailureInjector; plans without network
        # faults need not attach one
        self.network = network
        self.rng = random.Random(seed)
        self._actions: list[FaultAction] = []
        self._kill_handlers: list[Callable[[str], None]] = []
        self._restart_handlers: list[Callable[[str], None]] = []
        self._kill_container_handlers: list[Callable[[str], None]] = []
        self._restart_container_handlers: list[Callable[[str], None]] = []
        self.executed: list[tuple[float, str, str, str]] = []

    def _require_network(self, kind: str) -> None:
        if self.network is None:
            raise ConfigurationError(
                f"{kind} actions need a network attached to the plan")

    # -- lifecycle handlers --------------------------------------------------

    def on_kill(self, handler: Callable[[str], None]) -> None:
        """Register a handler invoked with the node name on every kill
        (typically the cluster's own kill method, which crashes the
        node's disk scope and network endpoint)."""
        self._kill_handlers.append(handler)

    def on_restart(self, handler: Callable[[str], None]) -> None:
        self._restart_handlers.append(handler)

    def on_kill_container(self, handler: Callable[[str], None]) -> None:
        """Register a handler invoked with the *container* name on every
        ``kill_container`` action.  Containers (stream-processing worker
        processes) die differently from storage nodes: their ephemeral
        coordination state vanishes but their node's disk survives, so
        they get their own handler list and trace kind rather than
        reusing :meth:`on_kill`."""
        self._kill_container_handlers.append(handler)

    def on_restart_container(self, handler: Callable[[str], None]) -> None:
        self._restart_container_handlers.append(handler)

    # -- schedule construction ------------------------------------------------

    def kill(self, at: float, node: str) -> None:
        self._actions.append(FaultAction(at, "kill", node))

    def restart(self, at: float, node: str) -> None:
        self._actions.append(FaultAction(at, "restart", node))

    def kill_container(self, at: float, container: str) -> None:
        """Kill one stream container mid-flight: in-memory task state is
        lost without a final commit, ephemeral znodes vanish, durable
        files survive."""
        self._actions.append(FaultAction(at, "kill_container", container))

    def restart_container(self, at: float, container: str) -> None:
        self._actions.append(FaultAction(at, "restart_container", container))

    def torn_write(self, at: float, node: str, path: str | None = None,
                   keep_bytes: int | None = None) -> None:
        """Arm a torn write: the node's *next* crash cuts its unsynced
        tail mid-record instead of dropping it cleanly."""
        self._actions.append(FaultAction(at, "torn_write", node, path=path,
                                         keep_bytes=keep_bytes))

    def bit_flip(self, at: float, node: str, path: str,
                 offset: int | None = None) -> None:
        self._actions.append(FaultAction(at, "bit_flip", node, path=path,
                                         offset=offset))

    def call(self, at: float, label: str, fn: Callable[[], None]) -> None:
        """Schedule arbitrary workload (writes, reads, checks) between
        faults so the plan captures the whole scenario in one place."""
        self._actions.append(FaultAction(at, "call", label=label, fn=fn))

    def inject(self, at: float, label: str, fn: Callable[[], None]) -> None:
        """Schedule a *seeded violation plant* (see
        :class:`repro.audit.inject.ViolationInjector`).  Behaves like
        :meth:`call` but is recorded under its own kind, so the executed
        trace distinguishes planted corruptions from ordinary workload —
        the ground truth the auditor's recall is scored against."""
        self._actions.append(FaultAction(at, "inject", label=label, fn=fn))

    # -- gray-failure schedule constructors -----------------------------------

    def limp(self, at: float, node: str, factor: float) -> None:
        """Slow-node onset: inflate the node's service and hop times."""
        self._require_network("limp")
        self._actions.append(FaultAction(at, "limp", node, factor=factor))

    def heal_limp(self, at: float, node: str) -> None:
        """Slow-node recovery."""
        self._require_network("heal_limp")
        self._actions.append(FaultAction(at, "heal_limp", node))

    def net_crash(self, at: float, node: str) -> None:
        """Network-level crash (the injector's, not the cluster's)."""
        self._require_network("net_crash")
        self._actions.append(FaultAction(at, "net_crash", node))

    def net_recover(self, at: float, node: str) -> None:
        self._require_network("net_recover")
        self._actions.append(FaultAction(at, "net_recover", node))

    def flap(self, at: float, node: str, period: float, cycles: int) -> None:
        """Flapping: ``cycles`` crash/recover pairs, one ``period``
        apart, starting with a crash at ``at``.  Expanded into plain
        net_crash/net_recover actions at construction time, so the
        schedule (and its trace) is fully explicit."""
        self._require_network("flap")
        if period <= 0 or cycles < 1:
            raise ConfigurationError("flap needs period > 0 and cycles >= 1")
        for cycle in range(cycles):
            start = at + cycle * period
            self._actions.append(FaultAction(start, "net_crash", node))
            self._actions.append(
                FaultAction(start + period / 2, "net_recover", node))

    def set_link(self, at: float, src: str, dst: str,
                 latency_model: Callable | None = None,
                 loss_rate: float = 0.0) -> None:
        """Degrade one directed link (extra latency and/or loss)."""
        self._require_network("set_link")
        self._actions.append(FaultAction(
            at, "set_link", src=src, dst=dst,
            latency_model=latency_model, loss_rate=loss_rate))

    def clear_link(self, at: float, src: str, dst: str) -> None:
        self._require_network("clear_link")
        self._actions.append(FaultAction(at, "clear_link", src=src, dst=dst))

    def block(self, at: float, src_group: list[str],
              dst_group: list[str]) -> None:
        """Asymmetric partition: src→dst traffic drops, dst→src flows."""
        self._require_network("block")
        self._actions.append(FaultAction(
            at, "block", groups=(tuple(src_group), tuple(dst_group))))

    def heal_blocks(self, at: float) -> None:
        self._require_network("heal_blocks")
        self._actions.append(FaultAction(at, "heal_blocks"))

    def spike(self, at: float, duration: float, label: str,
              start: Callable[[], None], stop: Callable[[], None]) -> None:
        """A traffic spike: ``start`` fires at ``at``, ``stop`` at
        ``at + duration`` — the callables adjust the workload's arrival
        rate, so the spike's shape lives in the plan's trace."""
        if duration <= 0:
            raise ConfigurationError("spike duration must be positive")
        self._actions.append(
            FaultAction(at, "call", label=f"spike_start:{label}", fn=start))
        self._actions.append(
            FaultAction(at + duration, "call", label=f"spike_end:{label}",
                        fn=stop))

    # -- execution -------------------------------------------------------------

    def _fire(self, action: FaultAction) -> None:
        now = round(self.clock.now(), 9)
        if action.kind == "kill":
            for handler in self._kill_handlers:
                handler(action.node)
            self.executed.append((now, "kill", action.node, ""))
        elif action.kind == "restart":
            for handler in self._restart_handlers:
                handler(action.node)
            self.executed.append((now, "restart", action.node, ""))
        elif action.kind == "kill_container":
            for handler in self._kill_container_handlers:
                handler(action.node)
            self.executed.append((now, "kill_container", action.node, ""))
        elif action.kind == "restart_container":
            for handler in self._restart_container_handlers:
                handler(action.node)
            self.executed.append((now, "restart_container", action.node, ""))
        elif action.kind == "torn_write":
            self.disk.arm_torn_write(action.node, path=action.path,
                                     keep_bytes=action.keep_bytes)
            self.executed.append((now, "torn_write", action.node,
                                  action.path or "<largest-unsynced>"))
        elif action.kind == "bit_flip":
            offset = self.disk.flip_bit(action.node, action.path,
                                        offset=action.offset)
            self.executed.append((now, "bit_flip", action.node,
                                  f"{action.path}@{offset}"))
        elif action.kind == "call":
            action.fn()
            self.executed.append((now, "call", "", action.label))
        elif action.kind == "inject":
            action.fn()
            self.executed.append((now, "inject", "", action.label))
        elif action.kind == "limp":
            self.network.failures.limp(action.node, action.factor)
            self.executed.append((now, "limp", action.node,
                                  f"x{action.factor}"))
        elif action.kind == "heal_limp":
            self.network.failures.heal_limp(action.node)
            self.executed.append((now, "heal_limp", action.node, ""))
        elif action.kind == "net_crash":
            self.network.failures.crash(action.node)
            self.executed.append((now, "net_crash", action.node, ""))
        elif action.kind == "net_recover":
            self.network.failures.recover(action.node)
            self.executed.append((now, "net_recover", action.node, ""))
        elif action.kind == "set_link":
            self.network.set_link(action.src, action.dst,
                                  latency_model=action.latency_model,
                                  loss_rate=action.loss_rate)
            self.executed.append((now, "set_link",
                                  f"{action.src}->{action.dst}",
                                  f"loss={action.loss_rate}"))
        elif action.kind == "clear_link":
            self.network.clear_link(action.src, action.dst)
            self.executed.append((now, "clear_link",
                                  f"{action.src}->{action.dst}", ""))
        elif action.kind == "block":
            src_group, dst_group = action.groups
            self.network.failures.block(list(src_group), list(dst_group))
            self.executed.append((now, "block",
                                  ",".join(sorted(src_group)),
                                  ",".join(sorted(dst_group))))
        elif action.kind == "heal_blocks":
            self.network.failures.heal_blocks()
            self.executed.append((now, "heal_blocks", "", ""))
        else:  # pragma: no cover - schedule constructors gate the kinds
            raise ConfigurationError(f"unknown fault kind {action.kind!r}")

    def run(self, until: float | None = None) -> list[tuple[float, str, str, str]]:
        """Schedule every action on the clock and advance through them.

        Actions sharing a timestamp fire in the order they were added
        (the clock breaks ties by scheduling order), so a plan is fully
        determined by its construction sequence.
        """
        horizon = until
        for action in self._actions:
            if horizon is None or action.at > horizon:
                horizon = action.at
            self.clock.call_at(action.at,
                               lambda action=action: self._fire(action))
        if horizon is not None:
            self.clock.run_until(horizon)
        return self.executed

    def trace_lines(self) -> list[str]:
        """The executed schedule as repr lines, for byte-compare."""
        return [repr(entry) for entry in self.executed]


class AckLedger:
    """Tracks acknowledged writes and verifies they survive recovery.

    ``record`` is called the moment a write is acked (the system said
    "durable"); ``verify`` is called after kills and restarts with a
    reader function mapping the recorded key to the recovered value.
    """

    def __init__(self):
        self._acked: dict[tuple[str, object], object] = {}

    def record(self, system: str, key: object, value: object) -> None:
        self._acked[(system, key)] = value

    def __len__(self) -> int:
        return len(self._acked)

    def acked(self, system: str) -> dict[object, object]:
        """The acked ``{key: value}`` map for one system — the
        ground-truth side of a declared audit constraint (the ledger is
        "produced", the recovered store is "consumed")."""
        return {key: value for (sys_name, key), value in self._acked.items()
                if sys_name == system}

    def verify(self, system: str,
               reader: Callable[[object], object]) -> list[str]:
        """Read every acked key of ``system`` back; returns violations.

        The reader raises or returns a different value ⇒ acked-write
        loss, the one thing DESIGN.md §9 forbids outright.
        """
        violations = []
        for (sys_name, key), expected in sorted(self._acked.items(),
                                                key=lambda item: repr(item[0])):
            if sys_name != system:
                continue
            try:
                actual = reader(key)
            except Exception as exc:  # noqa: BLE001 - any failure is a loss
                violations.append(
                    f"{system}: acked key {key!r} unreadable after "
                    f"recovery: {type(exc).__name__}: {exc}")
                continue
            if actual != expected:
                violations.append(
                    f"{system}: acked key {key!r} recovered as "
                    f"{actual!r}, expected {expected!r}")
        return violations


class ScnAuditor:
    """Checks per-(node, partition) SCN streams for duplicates and gaps.

    Plug :meth:`hook` into ``EspressoStorageNode(on_apply=...)``; after
    a crash-recovery, call :meth:`observe_recovery` with the node's
    recovered ``partition_scn`` so catch-up resuming at ``scn + 1`` is
    not misread as a gap.
    """

    def __init__(self):
        self._last: dict[tuple[str, int], int] = {}
        self.violations: list[str] = []
        self.windows_seen = 0

    def hook(self, node: str) -> Callable[[int, int], None]:
        def on_apply(partition: int, scn: int) -> None:
            self.windows_seen += 1
            key = (node, partition)
            last = self._last.get(key, 0)
            if scn <= last:
                self.violations.append(
                    f"{node}: partition {partition} applied SCN {scn} "
                    f"twice (already at {last})")
            elif scn > last + 1:
                self.violations.append(
                    f"{node}: partition {partition} skipped SCNs "
                    f"{last + 1}..{scn - 1}")
            self._last[key] = scn
        return on_apply

    def observe_recovery(self, node: str,
                         partition_scn: dict[int, int]) -> None:
        """A recovered node resumes from its durable SCNs; re-baseline
        so the auditor demands density from there onward."""
        for partition, scn in sorted(partition_scn.items()):
            key = (node, partition)
            self._last[key] = max(self._last.get(key, 0), scn)


class ChunkLedger:
    """Checks that a crash-resumed backfill never re-reads a completed
    chunk (the migration checkpoint contract).

    Wire the two methods into ``ChunkedBackfill(on_chunk_read=...,
    on_chunk_complete=...)`` — the backfill takes plain callables, so
    migration code never imports this module.  A chunk is identified by
    its start position ``(table, after_key)``: re-reading the position
    that was *in flight* at a crash is legal (it never completed, and
    its upserts are idempotent), but re-reading a position whose chunk
    completed means the coordinator resumed from a stale checkpoint and
    is repeating durable work.
    """

    def __init__(self):
        self._completed: set[tuple[str, str]] = set()
        self.reads = 0
        self.completions = 0
        self.violations: list[str] = []

    def _position(self, table: str, after_key: object) -> tuple[str, str]:
        return (table, repr(after_key))

    def on_read(self, table: str, after_key: object) -> None:
        self.reads += 1
        if self._position(table, after_key) in self._completed:
            self.violations.append(
                f"{table}: chunk after {after_key!r} read again after "
                "completing — resume ignored a durable checkpoint")

    def on_complete(self, table: str, after_key: object) -> None:
        self.completions += 1
        position = self._position(table, after_key)
        if position in self._completed:
            self.violations.append(
                f"{table}: chunk after {after_key!r} completed twice")
        self._completed.add(position)


def offsets_within_watermark(offsets: dict[tuple[str, int], int],
                             watermark_of: Callable[[str, int], int]
                             ) -> list[str]:
    """Check saved consumer offsets against broker high watermarks.

    A recovered broker may have truncated a torn (never-acked) tail, but
    a consumer's resume offset must still be at or below what the broker
    now exposes — otherwise the consumer would skip or re-read garbage.
    """
    violations = []
    for (topic, partition), offset in sorted(offsets.items()):
        watermark = watermark_of(topic, partition)
        if offset > watermark:
            violations.append(
                f"{topic}-{partition}: consumer offset {offset} beyond "
                f"high watermark {watermark}")
    return violations
