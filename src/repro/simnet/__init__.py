"""Deterministic network/disk simulation and failure injection."""

from repro.simnet.disk import Disk, DiskFile, DiskScope, LocalDisk, SimDisk
from repro.simnet.faultplan import (
    AckLedger,
    ChunkLedger,
    FaultAction,
    FaultPlan,
    ScnAuditor,
    offsets_within_watermark,
)
from repro.simnet.network import (
    FailureInjector,
    LatencyModel,
    ServerQueue,
    SimNetwork,
    fixed_latency,
    lognormal_latency,
    uniform_latency,
)

__all__ = [
    "AckLedger",
    "ChunkLedger",
    "Disk",
    "DiskFile",
    "DiskScope",
    "FailureInjector",
    "FaultAction",
    "FaultPlan",
    "LatencyModel",
    "LocalDisk",
    "ScnAuditor",
    "ServerQueue",
    "SimDisk",
    "SimNetwork",
    "fixed_latency",
    "lognormal_latency",
    "offsets_within_watermark",
    "uniform_latency",
]
