"""Deterministic network simulation and failure injection."""

from repro.simnet.network import (
    FailureInjector,
    LatencyModel,
    SimNetwork,
    fixed_latency,
    lognormal_latency,
    uniform_latency,
)

__all__ = [
    "FailureInjector",
    "LatencyModel",
    "SimNetwork",
    "fixed_latency",
    "lognormal_latency",
    "uniform_latency",
]
