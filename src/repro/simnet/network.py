"""A deterministic message-passing substrate for the simulated clusters.

The paper's distributed behaviours — quorum writes racing a node crash,
hinted handoff draining after recovery, slaves catching up from a relay
during failover — depend on message latency and failure timing.  Real
sockets would make those tests flaky; instead every inter-node call in
the simulated clusters goes through :class:`SimNetwork`, which

* samples a latency for each hop from a configurable, seeded model;
* applies failure rules (crashed nodes, transient error probability,
  network partitions) before delivering;
* models *gray* failures — nodes that are up but wrong: per-node
  service-time inflation ("limping" hardware), per-link latency/loss
  overrides, asymmetric (one-way) partitions;
* models server capacity: an optional bounded queue per node adds
  deterministic queueing delay to every request it serves and
  fast-rejects (:class:`~repro.common.errors.ServerOverloadedError`)
  once the backlog would exceed its bound — the substrate the
  overload-robustness layer (DESIGN.md §12) is tested against;
* accumulates per-request latency so callers can report end-to-end
  simulated service times.

Components that run purely in-process for throughput benchmarks (the
Kafka log, Voldemort storage engines) bypass this layer; it exists for
*behavioural* fidelity, not wall-clock measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import Clock, SimClock
from repro.common.errors import (
    ConfigurationError,
    NodeUnavailableError,
    RequestTimeoutError,
    ServerOverloadedError,
    TransientNetworkError,
    UnsupportedTypeError,
)

#: A latency model maps the network's seeded RNG to one *one-way* hop
#: delay in seconds.  :meth:`SimNetwork.invoke` samples it once and
#: doubles the value (request + response hops); :meth:`SimNetwork.send`
#: uses the single sample as the in-flight delivery delay.
LatencyModel = Callable[[random.Random], float]


def fixed_latency(seconds: float) -> LatencyModel:
    """Every hop takes exactly ``seconds``."""
    def model(_rng: random.Random) -> float:
        return seconds
    return model


def uniform_latency(low: float, high: float) -> LatencyModel:
    if low < 0 or high < low:
        raise ConfigurationError("require 0 <= low <= high")
    def model(rng: random.Random) -> float:
        return rng.uniform(low, high)
    return model


def lognormal_latency(median: float, sigma: float = 0.5) -> LatencyModel:
    """Heavy-tailed latency typical of datacenter RPC distributions."""
    import math
    mu = math.log(median)
    def model(rng: random.Random) -> float:
        return rng.lognormvariate(mu, sigma)
    return model


@dataclass
class FailureInjector:
    """Mutable failure state consulted on every delivery attempt.

    ``transient_error_rate`` models the "frequent transient and
    short-term failures" the paper says dominate production datacenters
    (Voldemort §II.A, citing [FLP+10]).

    Fault-assertion/heal semantics (each mutator also fires
    ``on_change``, which :class:`SimNetwork` wires into its event trace
    so a seeded chaos schedule is part of the byte-compared record):

    * ``crash``/``recover`` — binary liveness; a crashed node neither
      sends nor receives.
    * ``partition(*groups)`` — *replaces* the symmetric partition set:
      traffic flows only within a group (a node in two groups bridges
      them; ungrouped nodes reach each other but no grouped node).
      ``add_partition(*groups)`` is *additive*: it appends groups to
      the current set without disturbing existing ones.
      ``heal_partition`` clears every symmetric group.
    * ``block(src_group, dst_group)`` — an *asymmetric* (one-way)
      partition: messages from ``src_group`` to ``dst_group`` are
      dropped while the reverse direction still flows (the classic
      gray failure where A can reach B but B's replies vanish).
      Blocks are additive; ``heal_blocks`` clears them all.
    * ``limp(node, factor)`` — gray degradation: every hop touching
      ``node`` (and its service time, when the node has a server
      queue) is inflated by ``factor``.  ``heal_limp`` restores 1.0.
    """

    crashed: set[str] = field(default_factory=set)
    transient_error_rate: float = 0.0
    _partition_groups: list[frozenset[str]] = field(default_factory=list)
    _oneway_blocks: list[tuple[frozenset[str], frozenset[str]]] = \
        field(default_factory=list)
    _limping: dict[str, float] = field(default_factory=dict)
    #: observer hook (kind, detail) fired on every fault mutation;
    #: SimNetwork installs one so fault schedules land in the trace
    on_change: Callable[[str, str], None] | None = \
        field(default=None, repr=False, compare=False)

    def _notify(self, kind: str, detail: str) -> None:
        if self.on_change is not None:
            self.on_change(kind, detail)

    def crash(self, node: str) -> None:
        self.crashed.add(node)
        self._notify("crash", node)

    def recover(self, node: str) -> None:
        self.crashed.discard(node)
        self._notify("recover", node)

    def partition(self, *groups: set[str]) -> None:
        """Split the cluster: traffic only flows within a group.
        Replaces any previous symmetric partition set."""
        self._partition_groups = [frozenset(g) for g in groups]
        self._notify("partition", _groups_repr(self._partition_groups))

    def add_partition(self, *groups: set[str]) -> None:
        """Additively append partition groups (the previous cut stays)."""
        self._partition_groups.extend(frozenset(g) for g in groups)
        self._notify("add_partition", _groups_repr(self._partition_groups))

    def heal_partition(self) -> None:
        self._partition_groups = []
        self._notify("heal_partition", "")

    # -- asymmetric (one-way) partitions --------------------------------

    def block(self, src_group: set[str], dst_group: set[str]) -> None:
        """Drop traffic *from* ``src_group`` *to* ``dst_group`` only;
        the reverse direction keeps flowing.  Additive."""
        pair = (frozenset(src_group), frozenset(dst_group))
        self._oneway_blocks.append(pair)
        self._notify("block", _groups_repr(list(pair)))

    def heal_blocks(self) -> None:
        self._oneway_blocks = []
        self._notify("heal_blocks", "")

    # -- gray degradation ------------------------------------------------

    def limp(self, node: str, factor: float) -> None:
        """Inflate every hop (and queued service) touching ``node``."""
        if factor < 1.0:
            raise ConfigurationError(
                f"limp factor must be >= 1.0, got {factor}")
        self._limping[node] = factor
        self._notify("limp", f"{node}x{factor:g}")

    def heal_limp(self, node: str) -> None:
        self._limping.pop(node, None)
        self._notify("heal_limp", node)

    def slowdown(self, node: str) -> float:
        """Service/latency inflation factor for ``node`` (1.0 = healthy)."""
        return self._limping.get(node, 1.0)

    def reachable(self, src: str, dst: str) -> bool:
        if dst in self.crashed or src in self.crashed:
            return False
        for blocked_src, blocked_dst in self._oneway_blocks:
            if src in blocked_src and dst in blocked_dst:
                return False
        if not self._partition_groups:
            return True
        for group in self._partition_groups:
            if src in group and dst in group:
                return True
        # nodes absent from every group can reach each other
        in_any_src = any(src in g for g in self._partition_groups)
        in_any_dst = any(dst in g for g in self._partition_groups)
        return not in_any_src and not in_any_dst


def _groups_repr(groups: list[frozenset[str]]) -> str:
    """Canonical (sorted) rendering of group sets for trace entries."""
    return "|".join(",".join(sorted(g)) for g in groups)


class ServerQueue:
    """A bounded single-server queue in front of one simulated node.

    The server is modelled as one deterministic service line: work
    booked so far ends at ``busy_until``; a request arriving now waits
    ``busy_until - now`` before its own ``service_time`` starts.  When
    the backlog already holds ``capacity`` requests the new arrival is
    rejected instantly — the fast, cheap rejection that keeps bounded
    queues stable where unbounded ones melt down (queueing delay climbs
    past every client timeout while the server keeps grinding through
    work nobody is waiting for any more).

    Note the deliberate asymmetry: a request that is *admitted* books
    its service time even if the caller's timeout later expires — the
    server has no way to know the client hung up, so overload wastes
    real capacity.  Only rejection is free.  This is what makes naive
    retry storms metastable in the benchmark and shedding stabilizing.
    """

    def __init__(self, clock: Clock, service_time: float, capacity: int):
        if service_time <= 0:
            raise ConfigurationError("service_time must be positive")
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.clock = clock
        self.service_time = service_time
        self.capacity = capacity
        self.busy_until = 0.0
        self.accepted = 0
        self.rejected = 0

    def depth(self) -> int:
        """Requests currently queued or in service (by base service time)."""
        backlog = self.busy_until - self.clock.now()
        if backlog <= 0:
            return 0
        return int(backlog / self.service_time + 0.999999)

    def admit(self, service_time: float) -> float | None:
        """Book one request; returns its queueing delay, or None when
        the queue is full (fast rejection, no capacity consumed)."""
        if self.depth() >= self.capacity:
            self.rejected += 1
            return None
        now = self.clock.now()
        start = max(now, self.busy_until)
        self.busy_until = start + service_time
        self.accepted += 1
        return start - now


class SimNetwork:
    """Point-to-point messaging with latency sampling and fault injection."""

    def __init__(self, clock: Clock | None = None, seed: int = 0,
                 latency_model: LatencyModel | None = None,
                 default_timeout: float = 0.5):
        self.clock = clock if clock is not None else SimClock()
        self.rng = random.Random(seed)
        self.latency_model = latency_model or fixed_latency(0.0005)
        self.default_timeout = default_timeout
        self.failures = FailureInjector()
        # fault assertions/heals are part of the replayable record
        self.failures.on_change = self._record_fault
        # per-link overrides: (src, dst) -> (latency model | None, loss rate)
        self._links: dict[tuple[str, str], tuple[LatencyModel | None, float]] = {}
        # bounded per-node server queues (None for queueless nodes)
        self._server_queues: dict[str, ServerQueue] = {}
        self.hops_delivered = 0
        self.hops_failed = 0
        self.requests_shed = 0
        self.bytes_sent = 0
        # optional event trace (see start_trace); None = tracing off
        self.trace: list[tuple] | None = None

    # -- event tracing ---------------------------------------------------

    def start_trace(self) -> None:
        """Record every network event from now on.

        Each entry is ``(kind, sim_time, src, dst, outcome, latency)``;
        :meth:`trace_bytes` serializes the log so two runs of the same
        seeded scenario can be compared byte for byte.  The determinism
        replay test uses this to catch dynamic nondeterminism — hash-
        order fan-out, unseeded draws reached only under failure — that
        static analysis cannot see.
        """
        self.trace = []

    def _record(self, kind: str, src: str, dst: str, outcome: str,
                latency: float = 0.0) -> None:
        if self.trace is not None:
            self.trace.append(
                (kind, round(self.clock.now(), 9), src, dst, outcome,
                 round(latency, 9)))

    def _record_fault(self, kind: str, detail: str) -> None:
        """Fault assertions and heals enter the trace as events too, so
        two same-seed chaos runs must apply the same schedule to
        byte-compare equal."""
        self._record("fault", kind, detail, "applied")

    def trace_bytes(self) -> bytes:
        """The trace as canonical bytes (one ``repr`` line per event)."""
        if self.trace is None:
            raise ConfigurationError(
                "tracing is not enabled; call start_trace()")
        return "\n".join(repr(event) for event in self.trace).encode()

    # -- per-link overrides and server queues ----------------------------

    def set_link(self, src: str, dst: str,
                 latency_model: LatencyModel | None = None,
                 loss_rate: float = 0.0) -> None:
        """Override one directed link: its own latency model and/or an
        independent loss probability (lost hops raise/drop like
        transient failures).  Directed — set both directions for a
        symmetric degradation."""
        if not 0.0 <= loss_rate <= 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1]")
        self._links[(src, dst)] = (latency_model, loss_rate)
        self._record_fault("set_link", f"{src}->{dst} loss={loss_rate:g}")

    def clear_link(self, src: str, dst: str) -> None:
        self._links.pop((src, dst), None)
        self._record_fault("clear_link", f"{src}->{dst}")

    def add_server_queue(self, node: str, service_time: float,
                         capacity: int) -> ServerQueue:
        """Put a bounded queue in front of ``node``: every ``invoke``
        serviced by it gains queueing delay, and arrivals beyond
        ``capacity`` are fast-rejected with
        :class:`ServerOverloadedError`."""
        queue = ServerQueue(self.clock, service_time, capacity)
        self._server_queues[node] = queue
        return queue

    def server_queue(self, node: str) -> ServerQueue | None:
        return self._server_queues.get(node)

    def queue_depth(self, node: str) -> int:
        """Current backlog of ``node`` (0 for queueless nodes) — the
        load signal least-loaded replica selection sorts by."""
        queue = self._server_queues.get(node)
        return 0 if queue is None else queue.depth()

    def _link(self, src: str, dst: str) -> tuple[LatencyModel | None, float]:
        return self._links.get((src, dst), (None, 0.0))

    def _sample_hop(self, src: str, dst: str,
                    model: LatencyModel | None) -> float:
        """One one-way hop delay, with gray-failure inflation applied
        for either limping endpoint."""
        sample = (model or self.latency_model)(self.rng)
        return sample * self.failures.slowdown(src) * \
            self.failures.slowdown(dst)

    # -- synchronous request/response -----------------------------------

    def invoke(self, src: str, dst: str, func: Callable, *args,
               timeout: float | None = None, payload_bytes: int = 0, **kwargs):
        """Simulate a round trip: returns ``(result, simulated_latency)``.

        Raises :class:`TransientNetworkError` on an injected transient
        fault (or per-link loss), :class:`NodeUnavailableError` when
        ``dst`` is crashed or partitioned away,
        :class:`ServerOverloadedError` when ``dst`` has a bounded
        server queue that is full (a fast rejection — no server
        capacity consumed), and :class:`RequestTimeoutError` when the
        total round-trip latency — including ``dst``'s queueing delay
        and service time when it has a queue, both inflated for limping
        endpoints — exceeds the timeout.  A timed-out request that was
        *admitted* to a server queue still occupies the server (the
        client gave up; the server doesn't know), which is what makes
        unprotected retry storms metastable.  On failure, the time
        burned (up to the timeout) is still reported via the
        exception's ``simulated_latency`` attribute, so callers can
        account for it.
        """
        timeout = self.default_timeout if timeout is None else timeout
        if not self.failures.reachable(src, dst):
            self.hops_failed += 1
            self._record("invoke", src, dst, "unreachable", timeout)
            exc = NodeUnavailableError(f"{dst} unreachable from {src}")
            exc.simulated_latency = timeout
            raise exc
        link_model, loss_rate = self._link(src, dst)
        if loss_rate > 0 and self.rng.random() < loss_rate:
            self.hops_failed += 1
            burned = self._sample_hop(src, dst, link_model)
            self._record("invoke", src, dst, "lost", burned)
            exc = TransientNetworkError(f"link {src}->{dst} lost the request")
            exc.simulated_latency = burned
            raise exc
        if self.failures.transient_error_rate > 0 and \
                self.rng.random() < self.failures.transient_error_rate:
            self.hops_failed += 1
            burned = self._sample_hop(src, dst, link_model)
            self._record("invoke", src, dst, "transient", burned)
            exc = TransientNetworkError(f"transient failure calling {dst}")
            exc.simulated_latency = burned
            raise exc
        hop = self._sample_hop(src, dst, link_model)
        latency = hop * 2  # request + response hops
        queue = self._server_queues.get(dst)
        if queue is not None:
            service = queue.service_time * self.failures.slowdown(dst)
            queue_delay = queue.admit(service)
            if queue_delay is None:
                # fast rejection: one round trip, no service booked
                self.hops_failed += 1
                self.requests_shed += 1
                self._record("invoke", src, dst, "shed", latency)
                exc = ServerOverloadedError(
                    f"{dst} queue full ({queue.capacity} deep)",
                    retry_after=queue.capacity * queue.service_time)
                exc.simulated_latency = latency
                raise exc
            if queue_delay > 0:
                self._record("queue", src, dst, "wait", queue_delay)
            latency += queue_delay + service
        if latency > timeout:
            self.hops_failed += 1
            self._record("invoke", src, dst, "timeout", timeout)
            exc = RequestTimeoutError(f"call to {dst} exceeded {timeout}s")
            exc.simulated_latency = timeout
            raise exc
        result = func(*args, **kwargs)
        self.hops_delivered += 1
        self.bytes_sent += payload_bytes
        self._record("invoke", src, dst, "ok", latency)
        return result, latency

    # -- asynchronous one-way delivery -----------------------------------

    def send(self, src: str, dst: str, callback: Callable[[], None],
             payload_bytes: int = 0) -> bool:
        """Queue a one-way message for delivery after one sampled
        :data:`LatencyModel` delay (one hop — no response leg, unlike
        :meth:`invoke`).  Requires a :class:`SimClock`.

        Failure rules are applied twice.  At *send* time the transient-
        error rate and the current ``(src, dst)`` reachability (crashes,
        partitions) decide whether the message enters the network at
        all; ``False`` means it was dropped on the floor and the caller
        may account for it.  A ``True`` return only means the message
        is in flight: at *delivery* time reachability is re-checked for
        the same ``(src, dst)`` pair, so a crash or partition that forms
        while the message is in the air still loses it — the callback
        runs only if the pair is reachable when the delay elapses.
        In-flight drops count toward ``hops_failed`` and are invisible
        to the sender, exactly like a lost datagram.
        """
        if not isinstance(self.clock, SimClock):
            raise UnsupportedTypeError("async send requires a SimClock")
        if not self.failures.reachable(src, dst):
            self.hops_failed += 1
            self._record("send", src, dst, "unreachable")
            return False
        link_model, loss_rate = self._link(src, dst)
        if loss_rate > 0 and self.rng.random() < loss_rate:
            self.hops_failed += 1
            self._record("send", src, dst, "lost")
            return False
        if self.failures.transient_error_rate > 0 and \
                self.rng.random() < self.failures.transient_error_rate:
            self.hops_failed += 1
            self._record("send", src, dst, "transient")
            return False
        delay = self._sample_hop(src, dst, link_model)

        def deliver():
            # re-check the real (src, dst) pair at delivery time: either
            # endpoint may have crashed, or a partition may have formed,
            # while the message was in flight
            if self.failures.reachable(src, dst):
                self.hops_delivered += 1
                self._record("deliver", src, dst, "ok", delay)
                callback()
            else:
                self.hops_failed += 1
                self._record("deliver", src, dst, "dropped", delay)

        self.clock.call_later(delay, deliver)
        self.bytes_sent += payload_bytes
        self._record("send", src, dst, "queued", delay)
        return True
