"""A deterministic message-passing substrate for the simulated clusters.

The paper's distributed behaviours — quorum writes racing a node crash,
hinted handoff draining after recovery, slaves catching up from a relay
during failover — depend on message latency and failure timing.  Real
sockets would make those tests flaky; instead every inter-node call in
the simulated clusters goes through :class:`SimNetwork`, which

* samples a latency for each hop from a configurable, seeded model;
* applies failure rules (crashed nodes, transient error probability,
  network partitions) before delivering;
* accumulates per-request latency so callers can report end-to-end
  simulated service times.

Components that run purely in-process for throughput benchmarks (the
Kafka log, Voldemort storage engines) bypass this layer; it exists for
*behavioural* fidelity, not wall-clock measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import Clock, SimClock
from repro.common.errors import (
    NodeUnavailableError,
    RequestTimeoutError,
    TransientNetworkError,
)

LatencyModel = Callable[[random.Random], float]


def fixed_latency(seconds: float) -> LatencyModel:
    """Every hop takes exactly ``seconds``."""
    def model(_rng: random.Random) -> float:
        return seconds
    return model


def uniform_latency(low: float, high: float) -> LatencyModel:
    if low < 0 or high < low:
        raise ValueError("require 0 <= low <= high")
    def model(rng: random.Random) -> float:
        return rng.uniform(low, high)
    return model


def lognormal_latency(median: float, sigma: float = 0.5) -> LatencyModel:
    """Heavy-tailed latency typical of datacenter RPC distributions."""
    import math
    mu = math.log(median)
    def model(rng: random.Random) -> float:
        return rng.lognormvariate(mu, sigma)
    return model


@dataclass
class FailureInjector:
    """Mutable failure state consulted on every delivery attempt.

    ``transient_error_rate`` models the "frequent transient and
    short-term failures" the paper says dominate production datacenters
    (Voldemort §II.A, citing [FLP+10]).
    """

    crashed: set[str] = field(default_factory=set)
    transient_error_rate: float = 0.0
    _partition_groups: list[frozenset[str]] = field(default_factory=list)

    def crash(self, node: str) -> None:
        self.crashed.add(node)

    def recover(self, node: str) -> None:
        self.crashed.discard(node)

    def partition(self, *groups: set[str]) -> None:
        """Split the cluster: traffic only flows within a group."""
        self._partition_groups = [frozenset(g) for g in groups]

    def heal_partition(self) -> None:
        self._partition_groups = []

    def reachable(self, src: str, dst: str) -> bool:
        if dst in self.crashed or src in self.crashed:
            return False
        if not self._partition_groups:
            return True
        for group in self._partition_groups:
            if src in group and dst in group:
                return True
        # nodes absent from every group can reach each other
        in_any_src = any(src in g for g in self._partition_groups)
        in_any_dst = any(dst in g for g in self._partition_groups)
        return not in_any_src and not in_any_dst


class SimNetwork:
    """Point-to-point messaging with latency sampling and fault injection."""

    def __init__(self, clock: Clock | None = None, seed: int = 0,
                 latency_model: LatencyModel | None = None,
                 default_timeout: float = 0.5):
        self.clock = clock if clock is not None else SimClock()
        self.rng = random.Random(seed)
        self.latency_model = latency_model or fixed_latency(0.0005)
        self.default_timeout = default_timeout
        self.failures = FailureInjector()
        self.hops_delivered = 0
        self.hops_failed = 0
        self.bytes_sent = 0

    # -- synchronous request/response -----------------------------------

    def invoke(self, src: str, dst: str, func: Callable, *args,
               timeout: float | None = None, payload_bytes: int = 0, **kwargs):
        """Simulate a round trip: returns ``(result, simulated_latency)``.

        Raises :class:`TransientNetworkError` on an injected transient
        fault, :class:`NodeUnavailableError` when ``dst`` is crashed or
        partitioned away, and :class:`RequestTimeoutError` when the
        sampled round-trip latency exceeds the timeout.  On failure, the
        time burned (up to the timeout) is still reported via the
        exception's ``simulated_latency`` attribute, so callers can
        account for it.
        """
        timeout = self.default_timeout if timeout is None else timeout
        if not self.failures.reachable(src, dst):
            self.hops_failed += 1
            exc = NodeUnavailableError(f"{dst} unreachable from {src}")
            exc.simulated_latency = timeout
            raise exc
        if self.failures.transient_error_rate > 0 and \
                self.rng.random() < self.failures.transient_error_rate:
            self.hops_failed += 1
            exc = TransientNetworkError(f"transient failure calling {dst}")
            exc.simulated_latency = self.latency_model(self.rng)
            raise exc
        latency = self.latency_model(self.rng) * 2  # request + response hops
        if latency > timeout:
            self.hops_failed += 1
            exc = RequestTimeoutError(f"call to {dst} exceeded {timeout}s")
            exc.simulated_latency = timeout
            raise exc
        result = func(*args, **kwargs)
        self.hops_delivered += 1
        self.bytes_sent += payload_bytes
        return result, latency

    # -- asynchronous one-way delivery -----------------------------------

    def send(self, src: str, dst: str, callback: Callable[[], None],
             payload_bytes: int = 0) -> bool:
        """Deliver a one-way message after a sampled delay.

        Returns ``False`` (message dropped) when the destination is
        unreachable at send time.  Requires a :class:`SimClock`.
        """
        if not isinstance(self.clock, SimClock):
            raise TypeError("async send requires a SimClock")
        if not self.failures.reachable(src, dst):
            self.hops_failed += 1
            return False
        if self.failures.transient_error_rate > 0 and \
                self.rng.random() < self.failures.transient_error_rate:
            self.hops_failed += 1
            return False
        delay = self.latency_model(self.rng)

        def deliver():
            # re-check the real (src, dst) pair at delivery time: either
            # endpoint may have crashed, or a partition may have formed,
            # while the message was in flight
            if self.failures.reachable(src, dst):
                self.hops_delivered += 1
                callback()
            else:
                self.hops_failed += 1

        self.clock.call_later(delay, deliver)
        self.bytes_sent += payload_bytes
        return True
