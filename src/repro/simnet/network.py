"""A deterministic message-passing substrate for the simulated clusters.

The paper's distributed behaviours — quorum writes racing a node crash,
hinted handoff draining after recovery, slaves catching up from a relay
during failover — depend on message latency and failure timing.  Real
sockets would make those tests flaky; instead every inter-node call in
the simulated clusters goes through :class:`SimNetwork`, which

* samples a latency for each hop from a configurable, seeded model;
* applies failure rules (crashed nodes, transient error probability,
  network partitions) before delivering;
* accumulates per-request latency so callers can report end-to-end
  simulated service times.

Components that run purely in-process for throughput benchmarks (the
Kafka log, Voldemort storage engines) bypass this layer; it exists for
*behavioural* fidelity, not wall-clock measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import Clock, SimClock
from repro.common.errors import (
    NodeUnavailableError,
    RequestTimeoutError,
    TransientNetworkError,
)

#: A latency model maps the network's seeded RNG to one *one-way* hop
#: delay in seconds.  :meth:`SimNetwork.invoke` samples it once and
#: doubles the value (request + response hops); :meth:`SimNetwork.send`
#: uses the single sample as the in-flight delivery delay.
LatencyModel = Callable[[random.Random], float]


def fixed_latency(seconds: float) -> LatencyModel:
    """Every hop takes exactly ``seconds``."""
    def model(_rng: random.Random) -> float:
        return seconds
    return model


def uniform_latency(low: float, high: float) -> LatencyModel:
    if low < 0 or high < low:
        raise ValueError("require 0 <= low <= high")
    def model(rng: random.Random) -> float:
        return rng.uniform(low, high)
    return model


def lognormal_latency(median: float, sigma: float = 0.5) -> LatencyModel:
    """Heavy-tailed latency typical of datacenter RPC distributions."""
    import math
    mu = math.log(median)
    def model(rng: random.Random) -> float:
        return rng.lognormvariate(mu, sigma)
    return model


@dataclass
class FailureInjector:
    """Mutable failure state consulted on every delivery attempt.

    ``transient_error_rate`` models the "frequent transient and
    short-term failures" the paper says dominate production datacenters
    (Voldemort §II.A, citing [FLP+10]).
    """

    crashed: set[str] = field(default_factory=set)
    transient_error_rate: float = 0.0
    _partition_groups: list[frozenset[str]] = field(default_factory=list)

    def crash(self, node: str) -> None:
        self.crashed.add(node)

    def recover(self, node: str) -> None:
        self.crashed.discard(node)

    def partition(self, *groups: set[str]) -> None:
        """Split the cluster: traffic only flows within a group."""
        self._partition_groups = [frozenset(g) for g in groups]

    def heal_partition(self) -> None:
        self._partition_groups = []

    def reachable(self, src: str, dst: str) -> bool:
        if dst in self.crashed or src in self.crashed:
            return False
        if not self._partition_groups:
            return True
        for group in self._partition_groups:
            if src in group and dst in group:
                return True
        # nodes absent from every group can reach each other
        in_any_src = any(src in g for g in self._partition_groups)
        in_any_dst = any(dst in g for g in self._partition_groups)
        return not in_any_src and not in_any_dst


class SimNetwork:
    """Point-to-point messaging with latency sampling and fault injection."""

    def __init__(self, clock: Clock | None = None, seed: int = 0,
                 latency_model: LatencyModel | None = None,
                 default_timeout: float = 0.5):
        self.clock = clock if clock is not None else SimClock()
        self.rng = random.Random(seed)
        self.latency_model = latency_model or fixed_latency(0.0005)
        self.default_timeout = default_timeout
        self.failures = FailureInjector()
        self.hops_delivered = 0
        self.hops_failed = 0
        self.bytes_sent = 0
        # optional event trace (see start_trace); None = tracing off
        self.trace: list[tuple] | None = None

    # -- event tracing ---------------------------------------------------

    def start_trace(self) -> None:
        """Record every network event from now on.

        Each entry is ``(kind, sim_time, src, dst, outcome, latency)``;
        :meth:`trace_bytes` serializes the log so two runs of the same
        seeded scenario can be compared byte for byte.  The determinism
        replay test uses this to catch dynamic nondeterminism — hash-
        order fan-out, unseeded draws reached only under failure — that
        static analysis cannot see.
        """
        self.trace = []

    def _record(self, kind: str, src: str, dst: str, outcome: str,
                latency: float = 0.0) -> None:
        if self.trace is not None:
            self.trace.append(
                (kind, round(self.clock.now(), 9), src, dst, outcome,
                 round(latency, 9)))

    def trace_bytes(self) -> bytes:
        """The trace as canonical bytes (one ``repr`` line per event)."""
        if self.trace is None:
            raise ValueError("tracing is not enabled; call start_trace()")
        return "\n".join(repr(event) for event in self.trace).encode()

    # -- synchronous request/response -----------------------------------

    def invoke(self, src: str, dst: str, func: Callable, *args,
               timeout: float | None = None, payload_bytes: int = 0, **kwargs):
        """Simulate a round trip: returns ``(result, simulated_latency)``.

        Raises :class:`TransientNetworkError` on an injected transient
        fault, :class:`NodeUnavailableError` when ``dst`` is crashed or
        partitioned away, and :class:`RequestTimeoutError` when the
        sampled round-trip latency exceeds the timeout.  On failure, the
        time burned (up to the timeout) is still reported via the
        exception's ``simulated_latency`` attribute, so callers can
        account for it.
        """
        timeout = self.default_timeout if timeout is None else timeout
        if not self.failures.reachable(src, dst):
            self.hops_failed += 1
            self._record("invoke", src, dst, "unreachable", timeout)
            exc = NodeUnavailableError(f"{dst} unreachable from {src}")
            exc.simulated_latency = timeout
            raise exc
        if self.failures.transient_error_rate > 0 and \
                self.rng.random() < self.failures.transient_error_rate:
            self.hops_failed += 1
            burned = self.latency_model(self.rng)
            self._record("invoke", src, dst, "transient", burned)
            exc = TransientNetworkError(f"transient failure calling {dst}")
            exc.simulated_latency = burned
            raise exc
        latency = self.latency_model(self.rng) * 2  # request + response hops
        if latency > timeout:
            self.hops_failed += 1
            self._record("invoke", src, dst, "timeout", timeout)
            exc = RequestTimeoutError(f"call to {dst} exceeded {timeout}s")
            exc.simulated_latency = timeout
            raise exc
        result = func(*args, **kwargs)
        self.hops_delivered += 1
        self.bytes_sent += payload_bytes
        self._record("invoke", src, dst, "ok", latency)
        return result, latency

    # -- asynchronous one-way delivery -----------------------------------

    def send(self, src: str, dst: str, callback: Callable[[], None],
             payload_bytes: int = 0) -> bool:
        """Queue a one-way message for delivery after one sampled
        :data:`LatencyModel` delay (one hop — no response leg, unlike
        :meth:`invoke`).  Requires a :class:`SimClock`.

        Failure rules are applied twice.  At *send* time the transient-
        error rate and the current ``(src, dst)`` reachability (crashes,
        partitions) decide whether the message enters the network at
        all; ``False`` means it was dropped on the floor and the caller
        may account for it.  A ``True`` return only means the message
        is in flight: at *delivery* time reachability is re-checked for
        the same ``(src, dst)`` pair, so a crash or partition that forms
        while the message is in the air still loses it — the callback
        runs only if the pair is reachable when the delay elapses.
        In-flight drops count toward ``hops_failed`` and are invisible
        to the sender, exactly like a lost datagram.
        """
        if not isinstance(self.clock, SimClock):
            raise TypeError("async send requires a SimClock")
        if not self.failures.reachable(src, dst):
            self.hops_failed += 1
            self._record("send", src, dst, "unreachable")
            return False
        if self.failures.transient_error_rate > 0 and \
                self.rng.random() < self.failures.transient_error_rate:
            self.hops_failed += 1
            self._record("send", src, dst, "transient")
            return False
        delay = self.latency_model(self.rng)

        def deliver():
            # re-check the real (src, dst) pair at delivery time: either
            # endpoint may have crashed, or a partition may have formed,
            # while the message was in flight
            if self.failures.reachable(src, dst):
                self.hops_delivered += 1
                self._record("deliver", src, dst, "ok", delay)
                callback()
            else:
                self.hops_failed += 1
                self._record("deliver", src, dst, "dropped", delay)

        self.clock.call_later(delay, deliver)
        self.bytes_sent += payload_bytes
        self._record("send", src, dst, "queued", delay)
        return True
