"""A deterministic simulated disk with injectable storage faults.

:class:`~repro.simnet.network.SimNetwork` gave the reproduction the
*network* half of the chaos story: crashes, partitions, transient
errors.  This module supplies the *storage* half.  Every durable
component (Kafka partition logs, Voldemort's log-structured engine and
slop store, Espresso commit logs, the Databus bootstrap store) writes
through a :class:`Disk`, of which there are two implementations:

* :class:`LocalDisk` — a thin pass-through to the real filesystem, used
  by default so benchmarks keep measuring genuine I/O;
* :class:`SimDisk` — a fully in-memory filesystem with an explicit
  ``fsync`` boundary and injectable faults: **lost unsynced writes** on
  crash (the default crash semantic — whatever was written but never
  fsynced vanishes, like an OS page cache on power loss), **torn
  writes** (a crash preserves only a prefix of the unsynced tail, cut
  at an arbitrary byte offset), and **bit flips** (a byte of a stored
  file is silently corrupted, to be caught by CRC validation at
  recovery or read time).

Determinism contract: fault byte offsets are drawn from a seeded
``random.Random``; timestamps come from an injected
:class:`~repro.common.clock.Clock`; and every disk event can be traced
through the same ``start_trace`` / ``trace_bytes`` machinery as the
network, so a seeded fault scenario replays byte-identically.

Files are namespaced per node (``disk.scope("node-0")``) so one
:class:`SimDisk` can back a whole cluster while crashes stay surgical:
``crash_node`` drops one node's unsynced bytes and invalidates its open
handles without touching its peers.

The :class:`Disk` / :class:`DiskFile` protocols and the real-filesystem
:class:`LocalDisk` live in :mod:`repro.common.storage` (the layering
contract keeps ``common`` at the bottom of the stack); they are
re-exported here because every durable component historically imported
them from this module.
"""

from __future__ import annotations

import io
import os
import random

from repro.common.clock import Clock, SimClock
from repro.common.errors import ConfigurationError, FileMissingError
from repro.common.storage import (  # noqa: F401  (compat re-exports)
    Disk,
    DiskFile,
    LocalDisk,
    _LocalFile,
)

__all__ = ["Disk", "DiskFile", "LocalDisk", "DiskScope", "SimDisk"]


# -- simulated filesystem ----------------------------------------------------


class _FileState:
    """One simulated file: current bytes plus the last-fsynced image."""

    __slots__ = ("data", "synced")

    def __init__(self):
        self.data = bytearray()   # what readers (and the page cache) see
        self.synced = b""         # what survives a crash

    @property
    def unsynced_bytes(self) -> int:
        return max(0, len(self.data) - len(self.synced))


class _SimFile(DiskFile):
    """A handle onto a :class:`_FileState`; invalidated by node crash."""

    def __init__(self, disk: "SimDisk", path: str, state: _FileState,
                 readable: bool, writable: bool, append: bool):
        self._disk = disk
        self._path = path
        self._state = state
        self._readable = readable
        self._writable = writable
        self._append = append
        self._pos = len(state.data) if append else 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"I/O on closed simulated file {self._path!r}")

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if not self._readable:
            raise io.UnsupportedOperation("file not open for reading")
        data = self._state.data
        end = len(data) if size < 0 else min(len(data), self._pos + size)
        out = bytes(data[self._pos:end])
        self._pos = end
        return out

    def write(self, data: bytes) -> int:
        self._check_open()
        if not self._writable:
            raise io.UnsupportedOperation("file not open for writing")
        state = self._state.data
        if self._append:
            self._pos = len(state)
        end = self._pos + len(data)
        if self._pos == len(state):
            state.extend(data)
        else:
            if end > len(state):
                state.extend(b"\x00" * (end - len(state)))
            state[self._pos:end] = data
        self._disk._record("write", self._path, str(self._pos), len(data))
        self._pos = end
        return len(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        self._check_open()
        if whence == os.SEEK_SET:
            self._pos = offset
        elif whence == os.SEEK_CUR:
            self._pos += offset
        elif whence == os.SEEK_END:
            self._pos = len(self._state.data) + offset
        else:
            raise ValueError(f"bad whence {whence}")
        return self._pos

    def tell(self) -> int:
        self._check_open()
        return self._pos

    def truncate(self, size: int) -> int:
        self._check_open()
        if not self._writable:
            raise io.UnsupportedOperation("file not open for writing")
        del self._state.data[size:]
        self._pos = min(self._pos, size)
        self._disk._record("truncate", self._path, "", size)
        return size

    def flush(self) -> None:
        # writes land in the simulated page cache immediately; only
        # fsync moves the durability line
        self._check_open()

    def fsync(self) -> None:
        self._check_open()
        self._state.synced = bytes(self._state.data)
        self._disk._record("fsync", self._path, "", len(self._state.synced))

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class DiskScope(Disk):
    """A per-node view of a :class:`SimDisk`: every path is prefixed
    with the node name, so components address files exactly as they
    would on a private filesystem."""

    def __init__(self, disk: "SimDisk", node: str):
        self.disk = disk
        self.node = node

    def _abs(self, path: str) -> str:
        return f"{self.node}/{path}"

    def open(self, path: str, mode: str = "rb") -> DiskFile:
        return self.disk.open(self._abs(path), mode)

    def exists(self, path: str) -> bool:
        return self.disk.exists(self._abs(path))

    def listdir(self, path: str) -> list[str]:
        return self.disk.listdir(self._abs(path))

    def getsize(self, path: str) -> int:
        return self.disk.getsize(self._abs(path))

    def remove(self, path: str) -> None:
        self.disk.remove(self._abs(path))

    def replace(self, src: str, dst: str) -> None:
        self.disk.replace(self._abs(src), self._abs(dst))

    def makedirs(self, path: str) -> None:
        self.disk.makedirs(self._abs(path))


class SimDisk(Disk):
    """The cluster-wide simulated filesystem with fault injection.

    Paths are ``node/relative/file`` strings; :meth:`scope` hands a
    component a per-node view.  All fault decisions that need
    randomness (a torn write's cut point, a bit flip's target byte)
    come from the seeded RNG, so a fault scenario is a pure function of
    ``(seed, script)``.
    """

    def __init__(self, clock: Clock | None = None, seed: int = 0):
        self.clock = clock if clock is not None else SimClock()
        self.rng = random.Random(seed)
        self._files: dict[str, _FileState] = {}
        self._dirs: set[str] = set()
        self._handles: dict[str, list[_SimFile]] = {}
        # armed torn-write faults: node -> (path-or-None, keep_bytes-or-None)
        self._torn: dict[str, tuple[str | None, int | None]] = {}
        self.writes = 0
        self.fsyncs = 0
        self.crashes = 0
        self.bytes_lost = 0
        self.trace: list[tuple] | None = None

    # -- event tracing ----------------------------------------------------

    def start_trace(self) -> None:
        """Record every disk event from now on; same contract as
        :meth:`SimNetwork.start_trace` — two runs of a seeded fault
        scenario must produce byte-identical traces."""
        self.trace = []

    def _record(self, kind: str, path: str, detail: str, value: int) -> None:
        if kind == "write":
            self.writes += 1
        elif kind == "fsync":
            self.fsyncs += 1
        if self.trace is not None:
            self.trace.append(
                (kind, round(self.clock.now(), 9), path, detail, value))

    def trace_bytes(self) -> bytes:
        """The trace as canonical bytes (one ``repr`` line per event)."""
        if self.trace is None:
            raise ConfigurationError(
                "tracing is not enabled; call start_trace()")
        return "\n".join(repr(event) for event in self.trace).encode()

    # -- Disk protocol ----------------------------------------------------

    def scope(self, node: str) -> DiskScope:
        return DiskScope(self, node)

    def open(self, path: str, mode: str = "rb") -> DiskFile:
        if mode not in ("rb", "ab", "ab+", "wb", "rb+"):
            raise ConfigurationError(f"unsupported mode {mode!r}")
        state = self._files.get(path)
        if state is None:
            if mode == "rb":
                raise FileMissingError(path)
            state = _FileState()
            self._files[path] = state
            parent = path.rsplit("/", 1)[0] if "/" in path else ""
            self._dirs.add(parent)
        if mode == "wb":
            state.data.clear()
        handle = _SimFile(
            self, path, state,
            readable=mode in ("rb", "ab+", "rb+"),
            writable=mode != "rb",
            append=mode in ("ab", "ab+"))
        self._handles.setdefault(path, []).append(handle)
        self._record("open", path, mode, len(state.data))
        return handle

    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self, path: str) -> list[str]:
        prefix = path.rstrip("/") + "/"
        names = {p[len(prefix):].split("/", 1)[0]
                 for p in self._files if p.startswith(prefix)}
        return sorted(names)

    def getsize(self, path: str) -> int:
        try:
            return len(self._files[path].data)
        except KeyError:
            raise FileMissingError(path) from None

    def remove(self, path: str) -> None:
        if path not in self._files:
            raise FileMissingError(path)
        for handle in self._handles.pop(path, []):
            handle.close()
        del self._files[path]
        self._record("remove", path, "", 0)

    def replace(self, src: str, dst: str) -> None:
        """Atomic rename; modeled as immediately durable (a real
        implementation would fsync the directory)."""
        if src not in self._files:
            raise FileMissingError(src)
        for handle in self._handles.pop(dst, []):
            handle.close()
        state = self._files.pop(src)
        state.synced = bytes(state.data)
        self._files[dst] = state
        self._handles[dst] = self._handles.pop(src, [])
        for handle in self._handles[dst]:
            handle._path = dst
        self._record("replace", src, dst, len(state.data))

    def makedirs(self, path: str) -> None:
        self._dirs.add(path.rstrip("/"))

    # -- fault injection --------------------------------------------------

    def _node_paths(self, node: str) -> list[str]:
        prefix = node + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def unsynced_bytes(self, node: str) -> int:
        """Bytes currently at risk (written but not fsynced) on a node."""
        return sum(self._files[p].unsynced_bytes for p in self._node_paths(node))

    def arm_torn_write(self, node: str, path: str | None = None,
                       keep_bytes: int | None = None) -> None:
        """Arm a torn write for ``node``'s next crash: instead of losing
        its whole unsynced tail, the matched file keeps a *prefix* of it
        — ``keep_bytes`` long, or a seeded-random cut if None — leaving
        a partial frame for recovery to detect and truncate.

        ``path`` is node-relative; None means "the file with the most
        unsynced bytes at crash time".
        """
        self._torn[node] = (path, keep_bytes)

    def flip_bit(self, node: str, path: str, offset: int | None = None,
                 bit: int | None = None) -> int:
        """Silently corrupt one stored byte (media corruption).  The
        flip hits both the live bytes and the synced image, so it
        survives crashes; CRC validation must catch it.  Returns the
        corrupted byte offset."""
        full = f"{node}/{path}"
        try:
            state = self._files[full]
        except KeyError:
            raise FileMissingError(full) from None
        if not state.data:
            raise ConfigurationError(f"cannot flip a bit in empty {full!r}")
        if offset is None:
            offset = self.rng.randrange(len(state.data))
        if bit is None:
            bit = self.rng.randrange(8)
        state.data[offset] ^= 1 << bit
        if offset < len(state.synced):
            synced = bytearray(state.synced)
            synced[offset] ^= 1 << bit
            state.synced = bytes(synced)
        self._record("flip", full, f"bit={bit}", offset)
        return offset

    def crash_node(self, node: str) -> int:
        """Power-cut one node: every file reverts to its last fsynced
        image (plus an armed torn prefix), and every open handle dies.
        Returns the number of bytes lost."""
        torn = self._torn.pop(node, None)
        torn_target: str | None = None
        torn_keep: int | None = None
        if torn is not None:
            torn_path, torn_keep = torn
            if torn_path is not None:
                torn_target = f"{node}/{torn_path}"
            else:
                # the file with the most at-risk bytes takes the tear
                candidates = [p for p in self._node_paths(node)
                              if self._files[p].unsynced_bytes > 0]
                if candidates:
                    torn_target = max(
                        candidates,
                        key=lambda p: (self._files[p].unsynced_bytes, p))
        lost = 0
        for path in self._node_paths(node):
            state = self._files[path]
            tail = bytes(state.data[len(state.synced):])
            state.data = bytearray(state.synced)
            keep = b""
            if path == torn_target and tail:
                cut = torn_keep if torn_keep is not None \
                    else self.rng.randrange(1, len(tail) + 1)
                keep = tail[:min(cut, len(tail))]
                state.data.extend(keep)
                self._record("torn", path, "", len(keep))
            lost += len(tail) - len(keep)
            for handle in self._handles.pop(path, []):
                handle.close()
        self.crashes += 1
        self.bytes_lost += lost
        self._record("crash", node, "", lost)
        return lost

    def restart_node(self, node: str) -> None:
        """Bookkeeping marker: the node is booting from its surviving
        files.  Recorded in the trace so fault scenarios replay with
        their full kill/restart schedule visible."""
        self._record("restart", node, "", 0)
