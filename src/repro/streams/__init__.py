"""Samza-style stream processing over Kafka (§V; ROADMAP item 4).

A *job* is a DAG of stages; each stage runs ``partitions`` stateful
tasks; task ``i`` owns partition ``i`` of every input topic.  Local
keyed state is made durable twice over: a **changelog topic** carries
every mutation as an idempotent upsert, and periodic **snapshots** on
the container's disk bound replay.  A killed container recovers by
snapshot-load + changelog replay to its checkpointed input offsets —
the log+snapshot bootstrap shape Databus already uses (DESIGN.md §9),
applied to stream compute.  Placement is plain Helix: containers are
participants, tasks are ONLINE_OFFLINE partitions.
"""

from repro.streams.state import (
    KeyedStateStore,
    load_snapshot,
    write_snapshot,
)
from repro.streams.changelog import (
    ChangelogWriter,
    changelog_topic,
    compact_changelog,
    replay_changelog,
)
from repro.streams.task import (
    Envelope,
    MessageCollector,
    SEEN_PREFIX,
    StageSpec,
    StreamTask,
    TaskContext,
    TaskInstance,
    encode_stream_message,
    route_key,
)
from repro.streams.job import JobCoordinator, StreamJobSpec
from repro.streams.container import StreamContainer

__all__ = [
    "KeyedStateStore",
    "load_snapshot",
    "write_snapshot",
    "ChangelogWriter",
    "changelog_topic",
    "compact_changelog",
    "replay_changelog",
    "Envelope",
    "MessageCollector",
    "SEEN_PREFIX",
    "StageSpec",
    "StreamTask",
    "TaskContext",
    "TaskInstance",
    "encode_stream_message",
    "route_key",
    "JobCoordinator",
    "StreamJobSpec",
    "StreamContainer",
]
