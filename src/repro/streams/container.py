"""Containers: the worker processes that host stream tasks.

A container is a Helix participant.  It does no placement of its own:
the controller tells it which ``stage:partition`` tasks to run via
ONLINE/OFFLINE transitions, and the container reacts —

* ``OFFLINE -> ONLINE``: open a :class:`TaskInstance`, which recovers
  its state (snapshot + changelog replay) and input offsets before the
  first poll;
* ``ONLINE -> OFFLINE``: final commit, then close — the clean handoff
  that lets the next owner resume exactly where this one stopped.

A **kill** is the opposite of a handoff: tasks are dropped with no
final commit (uncommitted state and staged outputs are lost, exactly
what the recovery contract must absorb), and the container's ZK
sessions close so its ephemerals — Helix liveness and the consumer
group id — vanish.  A restart reconnects with empty hands; the
controller's next rebalance hands tasks back.
"""

from __future__ import annotations

from repro.common.clock import Clock
from repro.common.errors import ConfigurationError
from repro.common.metrics import MetricsRegistry
from repro.common.storage import Disk
from repro.helix.participant import Participant
from repro.helix.statemodel import Transition
from repro.kafka.broker import KafkaCluster
from repro.streams.job import StreamJobSpec
from repro.streams.task import TaskInstance
from repro.zookeeper import CreateMode, ZooKeeperServer, ZooKeeperSession


class StreamContainer:
    """One worker process: a Helix participant hosting TaskInstances."""

    def __init__(self, name: str, spec: StreamJobSpec,
                 cluster: KafkaCluster, zookeeper: ZooKeeperServer,
                 clock: Clock, disk: Disk, data_dir: str,
                 snapshot_interval_commits: int = 8,
                 fetch_max_bytes: int = 1 << 20):
        if not name:
            raise ConfigurationError("container needs a name")
        self.name = name
        self.spec = spec
        self.cluster = cluster
        self.zookeeper = zookeeper
        self.clock = clock
        self.disk = disk
        self.data_dir = data_dir
        self.snapshot_interval_commits = snapshot_interval_commits
        self.fetch_max_bytes = fetch_max_bytes
        self.metrics = MetricsRegistry()
        self.participant = Participant(name, spec.helix_cluster, zookeeper,
                                       handler=self._on_transition)
        self._zk: ZooKeeperSession | None = None
        # (stage, partition) -> live task
        self.tasks: dict[tuple[str, int], TaskInstance] = {}
        self.alive = False
        self.kills = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Join the cluster: Helix liveness plus a consumer-group id, so
        group tooling sees stream containers like any other member."""
        if self.alive:
            return
        self._zk = self.zookeeper.connect()
        ids_path = f"/consumers/{self.spec.group}/ids"
        self._zk.ensure_path(ids_path)
        topics = sorted({topic for stage in self.spec.stages
                         for topic in stage.inputs})
        self._zk.create(f"{ids_path}/{self.name}",
                        data=",".join(topics).encode(),
                        mode=CreateMode.EPHEMERAL)
        self.participant.connect()
        self.alive = True

    def stop(self) -> None:
        """Graceful shutdown: commit everything, then leave."""
        if not self.alive:
            return
        for key in sorted(self.tasks):
            self.tasks[key].commit()
        self.tasks.clear()
        self.participant.disconnect()
        self._close_session()
        self.alive = False

    def kill(self) -> None:
        """Crash: no final commit.  In-memory state, staged outputs and
        unflushed changelog mutations are gone; ephemerals vanish with
        the sessions; durable files (snapshots, logs) survive on disk.
        """
        if not self.alive:
            return
        self.tasks.clear()
        self.participant.disconnect()
        self._close_session()
        self.alive = False
        self.kills += 1
        self.metrics.counter("kills").increment()

    def restart(self) -> None:
        """Come back empty; the controller re-places tasks afterwards."""
        if self.alive:
            return
        self.start()

    def _close_session(self) -> None:
        if self._zk is not None:
            self._zk.close()
            self._zk = None

    # -- transition handling ------------------------------------------------

    def _on_transition(self, transition: Transition) -> None:
        key = (transition.resource, transition.partition)
        if transition.to_state == "ONLINE":
            stage = self.spec.stage_named(transition.resource)
            self.tasks[key] = TaskInstance(
                self.spec.name, stage, transition.partition, self.cluster,
                self._zk, self.clock, self.disk, self.data_dir,
                group=self.spec.group, topic_partitions=self.spec.partitions,
                snapshot_interval_commits=self.snapshot_interval_commits,
                fetch_max_bytes=self.fetch_max_bytes)
            self.metrics.counter("tasks_opened").increment()
        elif transition.from_state == "ONLINE":
            task = self.tasks.pop(key, None)
            if task is not None:
                task.commit()
                self.metrics.counter("tasks_closed").increment()

    # -- the processing loop ------------------------------------------------

    def task(self, stage: str, partition: int) -> TaskInstance:
        try:
            return self.tasks[(stage, partition)]
        except KeyError:
            raise ConfigurationError(
                f"container {self.name!r} does not host "
                f"{stage}:{partition}") from None

    def poll(self, max_messages: int = 10_000) -> int:
        handled = 0
        for key in sorted(self.tasks):
            handled += self.tasks[key].poll(max_messages)
        return handled

    def commit(self) -> int:
        """Commit every hosted task; returns output records flushed."""
        flushed = 0
        for key in sorted(self.tasks):
            flushed += self.tasks[key].commit()
        return flushed

    def run_cycle(self, max_messages: int = 10_000) -> int:
        """One poll + commit over every hosted task; returns messages
        handled plus output records flushed by the commit.  A zero
        return therefore means real quiescence: ``while
        sum(c.run_cycle() for c in fleet)`` cannot exit while a task
        that polled under an earlier uncommitted cycle still owes
        staged repartition records to a downstream stage."""
        handled = self.poll(max_messages)
        return handled + self.commit()

    def lag(self) -> int:
        return sum(self.tasks[key].lag() for key in sorted(self.tasks))
