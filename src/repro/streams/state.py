"""Task-local keyed state: a dict image, a changelog hook, and
WAL-framed snapshots on the container's disk.

Samza's state story (SNIPPETS.md §8) is reproduced structurally:

* the *store* is task-local and in-memory — reads and writes never
  leave the process, which is what makes stateful stream compute fast;
* every mutation is reported to an ``on_mutation`` hook, which the
  owning task wires to its **changelog topic** partition — the store
  itself never talks to Kafka (layering: state below, transport above);
* durability of the local image is a **snapshot**: the full key/value
  map plus the changelog offset it covers, written as CRC-framed
  records through :class:`~repro.common.wal.WriteAheadLog` to a temp
  file and atomically renamed into place.  Recovery loads the snapshot
  and replays the changelog *suffix* from the snapshot's offset — the
  log+snapshot bootstrap shape Databus already uses (DESIGN.md §9).

Values are JSON-serializable objects; keys are strings.  Mutations are
**idempotent upserts**: a changelog record carries the absolute new
value (or a tombstone), never a delta, so replaying a record twice is
harmless — the property the at-least-once recovery contract leans on.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator

from repro.common.errors import ConfigurationError
from repro.common.storage import Disk
from repro.common.wal import WriteAheadLog

MutationHook = Callable[[str, object], None]


class KeyedStateStore:
    """One named key/value store owned by exactly one task."""

    def __init__(self, name: str, on_mutation: MutationHook | None = None):
        if not name:
            raise ConfigurationError("store needs a name")
        self.name = name
        self._data: dict[str, object] = {}
        self._on_mutation = on_mutation
        self.puts = 0
        self.deletes = 0
        self.gets = 0

    # -- read path --------------------------------------------------------

    def get(self, key: str) -> object | None:
        self.gets += 1
        return self._data.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> list[str]:
        """Keys in sorted order — iteration never leaks dict history."""
        return sorted(self._data)

    def items(self) -> list[tuple[str, object]]:
        return sorted(self._data.items())

    def range(self, prefix: str) -> Iterator[tuple[str, object]]:
        """Sorted (key, value) pairs whose key starts with ``prefix`` —
        the windowed-counter scans the serving API runs."""
        for key in self.keys():
            if key.startswith(prefix):
                yield key, self._data[key]

    # -- write path -------------------------------------------------------

    def put(self, key: str, value: object) -> None:
        """Upsert: the absolute new value is logged, never a delta."""
        if value is None:
            raise ConfigurationError(
                "None is the tombstone; use delete() to remove a key")
        self._data[key] = value
        self.puts += 1
        if self._on_mutation is not None:
            self._on_mutation(key, value)

    def delete(self, key: str) -> None:
        if key in self._data:
            del self._data[key]
        self.deletes += 1
        if self._on_mutation is not None:
            self._on_mutation(key, None)

    # -- replay path ------------------------------------------------------

    def apply(self, key: str, value: object | None) -> None:
        """Apply one changelog/snapshot record without re-logging it."""
        if value is None:
            self._data.pop(key, None)
        else:
            self._data[key] = value

    def clear(self) -> None:
        self._data.clear()

    # -- fingerprinting ---------------------------------------------------

    def fingerprint(self, exclude_prefix: str | None = None) -> bytes:
        """Canonical bytes of the image — what the chaos suite
        byte-compares between a failure run and its clean twin.

        ``exclude_prefix`` filters out bookkeeping keys (the dedupe
        watermarks) whose values track physical log offsets: those
        legitimately differ between a failure run and a clean run even
        when the application state is byte-identical.
        """
        entries = self.items()
        if exclude_prefix is not None:
            entries = [(key, value) for key, value in entries
                       if not key.startswith(exclude_prefix)]
        return json.dumps(entries, sort_keys=True,
                          separators=(",", ":")).encode()


# -- snapshots -------------------------------------------------------------

_SNAPSHOT_VERSION = 1


def write_snapshot(disk: Disk, path: str, store: KeyedStateStore,
                   changelog_offset: int) -> int:
    """Write the store image + covered changelog offset, atomically.

    Frames go to ``path + ".tmp"`` through a :class:`WriteAheadLog`
    (header frame, then one frame per key in sorted order), are fsynced
    *before* the rename, and the rename is atomic — so a crash at any
    point leaves either the old snapshot or the new one, never a torn
    mix.  Returns the number of entries written.
    """
    tmp_path = path + ".tmp"
    if disk.exists(tmp_path):
        disk.remove(tmp_path)  # a previous attempt died mid-write
    wal = WriteAheadLog(tmp_path, disk=disk)
    header = {"version": _SNAPSHOT_VERSION, "store": store.name,
              "changelog_offset": changelog_offset}
    wal.append(json.dumps(header, sort_keys=True).encode())
    entries = store.items()
    for key, value in entries:
        wal.append(json.dumps({"k": key, "v": value},
                              sort_keys=True).encode())
    wal.fsync()
    wal.close()
    disk.replace(tmp_path, path)
    return len(entries)


def load_snapshot(disk: Disk, path: str,
                  store: KeyedStateStore) -> int | None:
    """Load a snapshot into ``store`` (replacing its contents).

    Returns the changelog offset the snapshot covers, or ``None`` when
    no usable snapshot exists (missing file, empty file, wrong store) —
    the caller then falls back to a full changelog replay.  A torn tail
    inside the snapshot WAL is truncated by the WAL's own recovery
    scan; entries after the tear are simply missing, which is safe
    because the changelog replay from the *header's* offset would
    re-create them — so a snapshot with a valid header but torn entries
    is rejected entirely rather than half-loaded.
    """
    if not disk.exists(path):
        return None
    wal = WriteAheadLog(path, disk=disk)
    try:
        frames = list(wal.replay())
    finally:
        wal.close()
    if not frames:
        return None
    header = json.loads(frames[0])
    if header.get("store") != store.name:
        return None
    if wal.truncated_bytes:
        # entries were torn off the tail: the image is incomplete and
        # the header's offset would skip their changelog records —
        # reject and replay the changelog from scratch instead
        return None
    store.clear()
    for payload in frames[1:]:
        record = json.loads(payload)
        store.apply(record["k"], record["v"])
    return int(header["changelog_offset"])
