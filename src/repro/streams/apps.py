"""The two paper-adjacent stream applications (SNIPPETS.md §11, §4).

**Who Viewed Your Profile** — the paper's marquee Kafka consumer: a
real-time counter of profile views per member.  The activity stream is
partitioned by *viewer* (the actor who generated the event), so the
job first repartitions by *viewee* and then keeps windowed counters in
changelog-backed state, queryable through a serving facade that routes
by the job's own placement.

**Feed fan-out** — connection events joined against activity events:
the fan-out stage folds connection events into a local adjacency store
and, for each activity event, emits one inbox entry per connection of
the actor; the inbox stage appends them into capped per-member
inboxes.  The hop between the two stages is a repartition topic keyed
by *recipient*, and its consumer-side dedupe is what turns crash
redelivery into effective exactly-once for inbox state.

Both jobs are pure topology + task logic; everything operational
(recovery, placement, chaos) is the generic machinery underneath.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, NodeUnavailableError
from repro.streams.job import StreamJobSpec
from repro.streams.task import Envelope, MessageCollector, StreamTask, \
    TaskContext, route_key

#: inbox entries kept per member (oldest evicted first)
INBOX_CAP = 50


# -- Who Viewed Your Profile ------------------------------------------------

class ViewRouterTask(StreamTask):
    """Repartition hop: viewer-keyed events out, viewee-keyed events in.

    The event value carries the viewee; re-emitting under that key
    moves the event to the partition whose counter task owns the
    member.  Stateless — redelivery is absorbed downstream.
    """

    def __init__(self, output_topic: str):
        self.output_topic = output_topic

    def process(self, envelope: Envelope,
                collector: MessageCollector) -> None:
        viewee = envelope.value["viewee"]
        collector.send(self.output_topic, viewee,
                       {"viewer": envelope.key, "ts": envelope.timestamp})


class ProfileViewCounterTask(StreamTask):
    """Windowed per-member view counters in the ``views`` store.

    Keys: ``<member>:w<window>`` per time window and ``<member>:total``
    — both absolute counts, so every changelog record is an idempotent
    upsert and crash replay converges byte-for-byte.
    """

    def __init__(self, window_s: float = 3600.0):
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.window_s = window_s

    def init(self, context: TaskContext) -> None:
        self.views = context.store("views")

    def process(self, envelope: Envelope,
                collector: MessageCollector) -> None:
        member = envelope.key
        window = int(envelope.value["ts"] // self.window_s)
        window_key = f"{member}:w{window:08d}"
        self.views.put(window_key, (self.views.get(window_key) or 0) + 1)
        total_key = f"{member}:total"
        self.views.put(total_key, (self.views.get(total_key) or 0) + 1)


def who_viewed_your_profile_job(partitions: int,
                                input_topic: str = "profile-views",
                                window_s: float = 3600.0) -> StreamJobSpec:
    """Topology: input → repartition by viewee → windowed counters."""
    spec = StreamJobSpec("wvyp", partitions)
    by_viewee = spec.repartition("by-viewee")
    spec.stage("route-views", [input_topic],
               lambda: ViewRouterTask(by_viewee))
    spec.stage("count-views", [by_viewee],
               lambda: ProfileViewCounterTask(window_s), stores=["views"])
    return spec


class WhoViewedYourProfileService:
    """Serving facade: route a member query to the task that owns it.

    The router is a Helix spectator — it reads the coordinator's
    external view, exactly how the paper's serving layers find
    partition owners (§IV.B 'Service discovery').
    """

    def __init__(self, coordinator, containers):
        self.coordinator = coordinator
        self._containers = {c.name: c for c in containers}

    def _owning_task(self, member: str):
        partition = route_key(member, self.coordinator.spec.partitions)
        owner = self.coordinator.owner_of("count-views", partition)
        if owner is None:
            raise NodeUnavailableError(
                f"count-views:{partition} is unplaced")
        container = self._containers[owner]
        if not container.alive:
            raise NodeUnavailableError(f"container {owner} is down")
        return container.task("count-views", partition)

    def total_views(self, member: str) -> int:
        task = self._owning_task(member)
        return int(task.stores["views"].get(f"{member}:total") or 0)

    def views_by_window(self, member: str) -> dict[int, int]:
        task = self._owning_task(member)
        prefix = f"{member}:w"
        return {int(key[len(prefix):]): int(count)
                for key, count in task.stores["views"].range(prefix)}


# -- feed fan-out -----------------------------------------------------------

class ConnectionFanoutTask(StreamTask):
    """Join connections against activity; fan out to recipients.

    Both inputs are keyed by the acting member, so they are
    co-partitioned: this task sees every connection event *and* every
    activity event of the members it owns.  Connection events fold
    into the ``graph`` store (``conn:<member>`` → sorted list);
    activity events fan out one inbox entry per connection, keyed by
    recipient, onto the repartition topic.
    """

    def __init__(self, output_topic: str):
        self.output_topic = output_topic

    def init(self, context: TaskContext) -> None:
        self.graph = context.store("graph")

    def process(self, envelope: Envelope,
                collector: MessageCollector) -> None:
        member = envelope.key
        if "other" in envelope.value:                  # connection event
            key = f"conn:{member}"
            connections = list(self.graph.get(key) or [])
            other = envelope.value["other"]
            if other not in connections:
                connections.append(other)
                self.graph.put(key, sorted(connections))
            return
        entry = {"actor": member,                      # activity event
                 "kind": envelope.value["kind"],
                 "id": envelope.value["id"],
                 "ts": envelope.timestamp}
        for connection in self.graph.get(f"conn:{member}") or []:
            collector.send(self.output_topic, connection, entry)


class InboxTask(StreamTask):
    """Capped per-member inbox: ordered by event time, oldest evicted.

    The whole inbox is the stored value, so each append is one
    idempotent upsert of the full list — list state survives crash
    replay the same way counters do.  Entries are kept sorted by
    (event time, actor, id) rather than arrival order: after a crash,
    re-emitted entries interleave differently with other producers'
    traffic in the repartition topic, and event-time order makes the
    stored inbox independent of that interleaving.
    """

    def init(self, context: TaskContext) -> None:
        self.inbox = context.store("inbox")

    def process(self, envelope: Envelope,
                collector: MessageCollector) -> None:
        entries = list(self.inbox.get(envelope.key) or [])
        entries.append(envelope.value)
        entries.sort(key=lambda e: (e["ts"], e["actor"], str(e["id"])))
        self.inbox.put(envelope.key, entries[-INBOX_CAP:])


def feed_fanout_job(partitions: int,
                    connections_topic: str = "connections",
                    activity_topic: str = "activity") -> StreamJobSpec:
    """Topology: (connections ⋈ activity) → repartition by recipient →
    capped inboxes."""
    spec = StreamJobSpec("feed", partitions)
    to_recipient = spec.repartition("to-recipient")
    spec.stage("fanout", [activity_topic, connections_topic],
               lambda: ConnectionFanoutTask(to_recipient), stores=["graph"])
    spec.stage("inbox", [to_recipient], InboxTask, stores=["inbox"])
    return spec


class FeedService:
    """Serving facade for per-member inboxes, routed like WVYP."""

    def __init__(self, coordinator, containers):
        self.coordinator = coordinator
        self._containers = {c.name: c for c in containers}

    def inbox(self, member: str) -> list[dict]:
        partition = route_key(member, self.coordinator.spec.partitions)
        owner = self.coordinator.owner_of("inbox", partition)
        if owner is None:
            raise NodeUnavailableError(f"inbox:{partition} is unplaced")
        container = self._containers[owner]
        if not container.alive:
            raise NodeUnavailableError(f"container {owner} is down")
        task = container.task("inbox", partition)
        return list(task.stores["inbox"].get(member) or [])
