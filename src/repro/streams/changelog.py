"""Per-task changelog topics: remote durability for task-local state.

Every state mutation a task makes is also published — as an absolute
upsert or a tombstone — to partition ``task_id`` of the store's
changelog topic, a regular Kafka topic named
``__changelog-<job>-<store>``.  The changelog is the authority a task
restores from when its container dies on a node whose local snapshot
is gone (SNIPPETS.md §8: "state is restored by replaying the changelog
into the local store").

**Compaction.**  Once a snapshot durably covers the changelog prefix
below offset ``X``, every record below ``X`` is redundant: the
snapshot *is* the last-value-wins fold of that prefix.  Compaction
therefore drops whole leading segments that end at or below ``X`` —
prefix truncation is exactly key-based compaction here, because a
snapshot covers **all** keys.  The broker's recovery contract is
untouched: compaction only removes bytes a durable snapshot already
carries.

Writes are **staged** in the writer and flushed as one message set at
commit time, so the per-commit cost is one append + one fsync instead
of one per mutation — the group-commit shape ROADMAP item 1 asks for.
"""

from __future__ import annotations

import json

from repro.common.errors import ConfigurationError
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet, iter_messages


def changelog_topic(job: str, store: str) -> str:
    """The reserved topic name for one job's one store."""
    return f"__changelog-{job}-{store}"


def encode_mutation(key: str, value: object | None) -> bytes:
    """One changelog record; ``value=None`` encodes a tombstone."""
    return json.dumps({"k": key, "v": value}, sort_keys=True,
                      separators=(",", ":")).encode()


def decode_mutation(payload: bytes) -> tuple[str, object | None]:
    record = json.loads(payload)
    return record["k"], record["v"]


class ChangelogWriter:
    """Stages mutations for one (topic, partition); flushes at commit."""

    def __init__(self, cluster: KafkaCluster, topic: str, partition: int):
        self.cluster = cluster
        self.topic = topic
        self.partition = partition
        self._staged: list[Message] = []
        self.mutations_logged = 0
        self.flushes = 0

    def stage(self, key: str, value: object | None) -> None:
        self._staged.append(Message(encode_mutation(key, value)))
        self.mutations_logged += 1

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    def flush(self) -> int:
        """Publish staged mutations and fsync them; returns the durable
        end offset (high watermark) of the changelog partition.

        The returned offset is what the task checkpoints: everything
        below it is recoverable, and recovery replays exactly up to it.
        """
        broker = self.cluster.broker_for(self.topic, self.partition)
        log = broker.log(self.topic, self.partition)
        if self._staged:
            broker.produce(self.topic, self.partition,
                           MessageSet(self._staged))
            self._staged = []
            self.flushes += 1
        log.flush()  # make every staged byte durable and visible
        return log.high_watermark

    def durable_end(self) -> int:
        """The partition's current durable end, without writing."""
        return self.cluster.broker_for(
            self.topic, self.partition).log(
            self.topic, self.partition).high_watermark


def replay_changelog(cluster: KafkaCluster, topic: str, partition: int,
                     start: int, stop: int,
                     fetch_max_bytes: int = 1 << 20
                     ) -> list[tuple[str, object | None]]:
    """Decode changelog records in ``[start, stop)`` in append order.

    ``stop`` is the checkpointed durable end: records past it are
    *uncommitted* mutations a crashed incarnation published but never
    checkpointed — replaying them would resurrect state the input
    offsets do not cover, so the replay hard-stops at the boundary.
    """
    if stop < start:
        raise ConfigurationError(
            f"changelog replay range reversed: [{start}, {stop})")
    broker = cluster.broker_for(topic, partition)
    mutations: list[tuple[str, object | None]] = []
    offset = start
    while offset < stop:
        data = broker.fetch(topic, partition, offset,
                            max_bytes=min(fetch_max_bytes, stop - offset))
        if not data:
            break
        before = offset
        for decoded in iter_messages(data, base_offset=offset):
            if decoded.next_offset > stop:
                return mutations
            mutations.append(decode_mutation(decoded.message.payload))
            offset = decoded.next_offset
        if offset == before:
            break  # only a partial frame fit under ``stop``; done
    return mutations


def compact_changelog(cluster: KafkaCluster, topic: str, partition: int,
                      below_offset: int) -> int:
    """Drop leading whole segments durably covered by a snapshot.

    Returns the number of segments deleted.  Never touches bytes at or
    above ``below_offset`` — a replay starting there still works.
    """
    log = cluster.broker_for(topic, partition).log(topic, partition)
    return log.delete_segments_below(below_offset)
