"""Job topology and coordination: stages, repartition topics, Helix.

A *job* (SNIPPETS.md §8) is a DAG of stages connected by Kafka topics.
Every stage runs ``spec.partitions`` tasks; task ``i`` owns partition
``i`` of each of the stage's input topics.  Stages that need a
different keying than their input's — per-member aggregation over
activity partitioned by actor, say — are connected through a
**repartition topic**: the upstream stage's collector sends keyed
messages, the producer-compatible ``route_key`` hash places them, and
the downstream stage consumes its own partition like any other input.

Task-to-container placement is ordinary Helix (§IV.B): the coordinator
registers one ONLINE_OFFLINE resource per stage (``replicas=1`` — a
task runs in exactly one container) in a per-job cluster named
``streams-<job>``, and containers are the participants.  The
controller's demote-before-promote pipeline ordering gives clean
handoff: the old owner's OFFLINE callback (final commit + close) runs
before the new owner's ONLINE callback (recovery) in the same pass.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, NodeUnavailableError
from repro.helix.controller import HelixController
from repro.helix.idealstate import compute_ideal_state
from repro.helix.statemodel import ONLINE_OFFLINE
from repro.kafka.broker import KafkaCluster
from repro.streams.changelog import changelog_topic
from repro.streams.task import StageSpec
from repro.zookeeper import ZooKeeperServer


class StreamJobSpec:
    """Declarative topology: stages, stores, and internal topics."""

    def __init__(self, name: str, partitions: int):
        if not name:
            raise ConfigurationError("job needs a name")
        if partitions < 1:
            raise ConfigurationError("job needs at least one partition")
        self.name = name
        self.partitions = partitions
        self._stages: dict[str, StageSpec] = {}
        self.repartition_topics: list[str] = []

    @property
    def group(self) -> str:
        """The consumer-group id the job's tasks check offsets under."""
        return f"streams-{self.name}"

    @property
    def helix_cluster(self) -> str:
        return f"streams-{self.name}"

    @property
    def stages(self) -> list[StageSpec]:
        return list(self._stages.values())

    def stage_named(self, name: str) -> StageSpec:
        try:
            return self._stages[name]
        except KeyError:
            raise ConfigurationError(
                f"job {self.name!r} has no stage {name!r}") from None

    def repartition(self, label: str) -> str:
        """Declare an intermediate topic; returns its full name.

        The same name is used as an upstream collector's send target
        and a downstream stage's input, which is all the wiring a
        re-keyed hop needs.
        """
        if not label:
            raise ConfigurationError("repartition needs a label")
        topic = f"__repartition-{self.name}-{label}"
        if topic not in self.repartition_topics:
            self.repartition_topics.append(topic)
        return topic

    def stage(self, name: str, inputs: list[str], task_factory,
              stores: list[str] | tuple[str, ...] = (),
              window_interval_s: float = 0.0) -> StageSpec:
        """Add one stage to the topology."""
        if name in self._stages:
            raise ConfigurationError(f"stage {name!r} already declared")
        declared = {store for spec in self._stages.values()
                    for store in spec.stores}
        for store in stores:
            if store in declared:
                # store names key changelog topics per job, so two
                # stages sharing one would interleave their mutations
                raise ConfigurationError(
                    f"store {store!r} already owned by another stage")
        spec = StageSpec(name=name, inputs=tuple(inputs),
                         task_factory=task_factory, stores=tuple(stores),
                         window_interval_s=window_interval_s)
        self._stages[name] = spec
        return spec

    def changelog_topics(self) -> list[str]:
        return [changelog_topic(self.name, store)
                for spec in self._stages.values() for store in spec.stores]

    def internal_topics(self) -> list[str]:
        return list(self.repartition_topics) + self.changelog_topics()


class JobCoordinator:
    """Owns a job's Helix cluster and its internal Kafka topics."""

    def __init__(self, spec: StreamJobSpec, cluster: KafkaCluster,
                 zookeeper: ZooKeeperServer):
        if not spec.stages:
            raise ConfigurationError(f"job {spec.name!r} declares no stages")
        self.spec = spec
        self.cluster = cluster
        self.zookeeper = zookeeper
        self.controller = HelixController(spec.helix_cluster, zookeeper)
        self._deployed = False
        self._ensure_internal_topics()
        self._validate_inputs()

    def _ensure_internal_topics(self) -> None:
        existing = set(self.cluster.topics())
        for topic in self.spec.internal_topics():
            if topic not in existing:
                self.cluster.create_topic(topic,
                                          partitions=self.spec.partitions)

    def _validate_inputs(self) -> None:
        """Every input topic must exist with exactly ``spec.partitions``
        partitions — the co-partitioning invariant the whole task model
        stands on (task ``i`` reads partition ``i`` of every input)."""
        for stage in self.spec.stages:
            for topic in stage.inputs:
                count = len(self.cluster.topic_layout(topic))
                if count != self.spec.partitions:
                    raise ConfigurationError(
                        f"stage {stage.name!r} input {topic!r} has {count} "
                        f"partitions, job runs {self.spec.partitions} tasks "
                        "— inputs must be co-partitioned")

    # -- deployment ---------------------------------------------------------

    def deploy(self, containers: list) -> int:
        """Start the containers, place every task, converge; returns
        the number of controller iterations taken."""
        if self._deployed:
            raise ConfigurationError(f"job {self.spec.name!r} is deployed")
        if not containers:
            raise ConfigurationError("deploy needs at least one container")
        names = sorted(container.name for container in containers)
        if len(set(names)) != len(names):
            raise ConfigurationError("container names must be unique")
        for container in containers:
            container.start()
            self.controller.register_participant(container.participant)
        for stage in self.spec.stages:
            self.controller.add_resource(compute_ideal_state(
                stage.name, names, self.spec.partitions, replicas=1,
                state_model=ONLINE_OFFLINE))
        self._deployed = True
        return self.controller.converge()

    def rebalance(self) -> int:
        """Recompute placement over the currently-live containers and
        converge — the recovery step after a container kill, and the
        handoff step after one rejoins."""
        live = sorted(self.controller.live_instances())
        if not live:
            raise NodeUnavailableError(
                f"job {self.spec.name!r} has no live containers")
        for stage in self.spec.stages:
            self.controller.rebalance_resource(stage.name, live)
        return self.controller.converge()

    # -- routing ------------------------------------------------------------

    def owner_of(self, stage: str, partition: int) -> str | None:
        """Which container currently runs ``stage:partition`` (from the
        external view — what a serving-layer router sees), or ``None``
        while the task is unplaced."""
        view = self.controller.external_view(stage)
        online = view.instances_in_state(partition, "ONLINE")
        return online[0] if online else None

    def assignments(self, stage: str) -> dict[int, str | None]:
        return {partition: self.owner_of(stage, partition)
                for partition in range(self.spec.partitions)}
