"""The recommendation system (paper §I.A, Figure I.1).

"The recommendation system matches relevant jobs, job candidates,
connections, ads, news articles, and other content to users."  Its
flagship product is People You May Know (§II.C): "a link prediction
problem ... powered by a single store backed by the custom read-only
storage engine", rebuilt offline on Hadoop every run because "most of
the scores change between runs".

This package implements that pipeline end to end: triangle-closing
link prediction as a MapReduce job over the social graph, and a
controller that pushes each run's scores through the Voldemort
build/pull/swap cycle into online serving.
"""

from repro.recommendations.pymk import (
    PymkPipeline,
    score_common_neighbors,
)

__all__ = [
    "PymkPipeline",
    "score_common_neighbors",
]
