"""People You May Know: link prediction on Hadoop (§II.C).

The classic triangle-closing formulation: candidates are
friends-of-friends, scored by how many (inverse-degree-weighted) common
connections vouch for them — the Adamic/Adar measure.  The computation
runs as a MapReduce job:

* **map** — each member's adjacency list emits one candidate pair per
  two-hop path through that member, weighted by 1/log(degree) of the
  shared connection (the "hub" penalty);
* **shuffle** — pairs group by (source, candidate);
* **reduce** — weights sum into a score; already-connected pairs are
  dropped; per-member top-k lists are assembled downstream.

The resulting store value is exactly what §II.C describes: "for every
member id, a list of recommended member ids, along with a score."
"""

from __future__ import annotations

import json
import math
import struct

from repro.common.errors import ConfigurationError
from repro.hadoop import MapReduceJob, MiniHDFS, run_job
from repro.socialgraph import PartitionedSocialGraph
from repro.voldemort.cluster import VoldemortCluster
from repro.voldemort.readonly_pipeline import BuildResult, ReadOnlyPipelineController

_PAIR = struct.Struct(">QQ")
_WEIGHT = struct.Struct(">d")


def _adjacency_records(graph: PartitionedSocialGraph):
    """(member, sorted neighbor list) records — the job's input."""
    seen: set[int] = set()
    for shard in graph._shards:
        for member, neighbors in shard.items():
            if member in seen:
                continue
            seen.add(member)
            yield member, sorted(neighbors)


def score_common_neighbors(graph: PartitionedSocialGraph, hdfs: MiniHDFS,
                           output_dir: str = "/jobs/pymk",
                           num_reducers: int = 4) -> dict[int, dict[int, float]]:
    """Run the scoring job; returns {member: {candidate: score}}.

    Scores use Adamic/Adar weighting: a shared connection with few
    connections is stronger evidence than a hub everyone knows.
    """
    direct_edges: set[tuple[int, int]] = set()
    for member, neighbors in _adjacency_records(graph):
        for neighbor in neighbors:
            direct_edges.add((member, neighbor))

    def mapper(record):
        member, neighbors = record
        if len(neighbors) < 2:
            return
        weight = 1.0 / math.log(len(neighbors) + 1.0)
        packed = _WEIGHT.pack(weight)
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1:]:
                yield _PAIR.pack(a, b), packed
                yield _PAIR.pack(b, a), packed

    def reducer(key, values):
        source, candidate = _PAIR.unpack(key)
        if (source, candidate) in direct_edges:
            return
        score = sum(_WEIGHT.unpack(v)[0] for v in values)
        yield json.dumps([source, candidate, round(score, 6)]).encode() + b"\n"

    job = MapReduceJob("pymk-scoring", mapper, reducer,
                       num_reducers=num_reducers)
    run_job(job, _adjacency_records(graph), hdfs, output_dir)

    scores: dict[int, dict[int, float]] = {}
    for path in hdfs.glob_files(output_dir):
        for line in hdfs.read(path).splitlines():
            source, candidate, score = json.loads(line)
            scores.setdefault(source, {})[candidate] = score
    return scores


def top_k(scores: dict[int, dict[int, float]], k: int
          ) -> list[tuple[bytes, bytes]]:
    """Store pairs: member key -> JSON list of [candidate, score]."""
    pairs = []
    for member, candidates in sorted(scores.items()):
        ranked = sorted(candidates.items(), key=lambda cs: (-cs[1], cs[0]))[:k]
        value = json.dumps([[c, s] for c, s in ranked]).encode()
        pairs.append((b"member-%d" % member, value))
    return pairs


class PymkPipeline:
    """Offline scoring -> read-only store serving, one object.

    Each :meth:`run` is one production refresh: score the current
    graph, build/pull/swap a new store version.  Serving is a plain
    read-only store get; :meth:`recommendations_for` decodes it.
    """

    def __init__(self, cluster: VoldemortCluster, hdfs: MiniHDFS,
                 store: str = "pymk", k: int = 10):
        if k <= 0:
            raise ConfigurationError("k must be positive")
        self.cluster = cluster
        self.hdfs = hdfs
        self.k = k
        self.controller = ReadOnlyPipelineController(cluster, hdfs, store)
        self.store = store
        self.runs = 0

    def run(self, graph: PartitionedSocialGraph) -> BuildResult:
        self.runs += 1
        scores = score_common_neighbors(
            graph, self.hdfs, output_dir=f"/jobs/{self.store}/run-{self.runs}")
        return self.controller.run_cycle(top_k(scores, self.k))

    def recommendations_for(self, routed_store,
                            member: int) -> list[tuple[int, float]]:
        """Serving-path read; [] when the member has no recommendations."""
        from repro.common.errors import KeyNotFoundError
        try:
            frontier, _ = routed_store.get(b"member-%d" % member)
        except KeyNotFoundError:
            return []
        return [(int(c), float(s)) for c, s in json.loads(frontier[0].value)]
