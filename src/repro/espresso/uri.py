"""Espresso URI parsing (§IV.A).

Documents are identified by

    /<database>/<table>/<resource_id>[/<subresource_id>...]

A path naming only the ``resource_id`` may refer to a *collection
resource* (all documents sharing that resource id).  Query parameters
express secondary-index queries: ``?query=lyrics:"Lucy in the sky"``.
A ``*`` table name with a POST is a transactional multi-table update.
"""

from __future__ import annotations

from dataclasses import dataclass
from urllib.parse import parse_qs, unquote, urlparse

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class EspressoUri:
    database: str
    table: str
    resource_id: str | None = None
    subresource_ids: tuple[str, ...] = ()
    query: str | None = None

    @property
    def key(self) -> tuple[str, ...]:
        """The document key: resource id plus subresource ids."""
        if self.resource_id is None:
            raise ConfigurationError("URI names no resource")
        return (self.resource_id,) + self.subresource_ids

    @property
    def is_collection(self) -> bool:
        """True when the path stops at the resource id (or earlier)."""
        return self.resource_id is not None and not self.subresource_ids

    @property
    def is_transactional(self) -> bool:
        return self.table == "*"


def parse_uri(uri: str) -> EspressoUri:
    """Parse a path (optionally a full URL) into an :class:`EspressoUri`.

    >>> parse_uri("/Music/Album/Cher/Greatest_Hits").key
    ('Cher', 'Greatest_Hits')
    """
    parsed = urlparse(uri)
    path = parsed.path
    if not path.startswith("/"):
        raise ConfigurationError(f"Espresso URIs are absolute paths: {uri!r}")
    parts = [unquote(p) for p in path.strip("/").split("/") if p]
    if len(parts) < 2:
        raise ConfigurationError(
            f"URI needs at least /<database>/<table>: {uri!r}")
    database, table = parts[0], parts[1]
    resource_id = parts[2] if len(parts) > 2 else None
    subresources = tuple(parts[3:])
    query = None
    if parsed.query:
        params = parse_qs(parsed.query)
        if "query" in params:
            query = params["query"][0]
    return EspressoUri(database, table, resource_id, subresources, query)


def parse_index_query(query: str) -> tuple[str, str]:
    """Split ``field:value`` (value optionally double-quoted)."""
    if ":" not in query:
        raise ConfigurationError(f"index queries look like field:value: {query!r}")
    fieldname, _, value = query.partition(":")
    value = value.strip()
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        value = value[1:-1]
    if not fieldname or not value:
        raise ConfigurationError(f"malformed index query {query!r}")
    return fieldname.strip(), value
