"""Espresso: a timeline-consistent distributed document store (paper §IV).

The pieces, matching Figure IV.1:

* :mod:`repro.espresso.uri` — the REST data model:
  ``/<database>/<table>/<resource_id>[/<subresource_id>...]``;
* :mod:`repro.espresso.schema` — database / table / document schemas
  (Avro-style, freely evolvable under resolution rules);
* :mod:`repro.espresso.index` — the Lucene stand-in: local secondary
  indexes with term and free-text queries;
* :mod:`repro.espresso.storage` — storage nodes: documents in a
  MySQL-style local store (Table IV.1 layout), per-partition commit
  sequences, secondary indexing, master/slave replica state;
* :mod:`repro.espresso.replication` — internal replication through a
  Databus relay with per-partition event buffers, semi-sync commit;
* :mod:`repro.espresso.router` — routes requests to the master for the
  resource's partition using Helix's external view;
* :mod:`repro.espresso.cluster` — wires storage nodes, relay, router,
  Zookeeper and the Helix controller into a running cluster, including
  failover and elastic expansion.
"""

from repro.espresso.uri import EspressoUri, parse_uri
from repro.espresso.schema import (
    DatabaseSchema,
    DocumentSchemaRegistry,
    EspressoTableSchema,
)
from repro.espresso.index import LocalSecondaryIndex
from repro.espresso.storage import EspressoStorageNode
from repro.espresso.cluster import EspressoCluster
from repro.espresso.router import Router

__all__ = [
    "EspressoUri",
    "parse_uri",
    "DatabaseSchema",
    "DocumentSchemaRegistry",
    "EspressoTableSchema",
    "LocalSecondaryIndex",
    "EspressoStorageNode",
    "EspressoCluster",
    "Router",
]
