"""The Espresso router (§IV.B "Router").

"The router accepts HTTP requests, inspects the URI and forwards the
request to the appropriate storage node.  For a given request, the
router examines the database component of the path and retrieves the
routing function from the corresponding database schema.  It then
applies the routing function to the resource_id element of the request
URI to compute a partition id.  Next it consults the routing table
maintained by the cluster manager to determine which storage node is
the master for the partition.  Finally, the router forwards the HTTP
request to the selected storage node."

The interface is HTTP-shaped (GET/PUT/POST/DELETE on URIs) returning
plain Python results; a thin status-code layer maps library exceptions
onto the responses an HTTP gateway would emit.

Routing runs under the shared resilience layer
(:mod:`repro.common.resilience`): a request that lands on a partition
with no master — or on a node that lost mastership — is retried under
the configured :class:`RetryPolicy`.  With ``auto_failover`` enabled
the router nudges the Helix controller (``cluster.failover()``) between
attempts, so a retry after a master crash lands on the freshly promoted
slave; this is the §IV.B failover sequence seen from the client side.
Only when retries are exhausted does the client see a 503.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import (
    ConfigurationError,
    KeyNotFoundError,
    NotMasterError,
    ServerOverloadedError,
    TransactionAbortedError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.overload import (
    PRIORITY_LIVE,
    PRIORITY_WRITE,
    AdmissionController,
)
from repro.common.resilience import RetryPolicy, call_with_retries
from repro.espresso.cluster import EspressoCluster
from repro.espresso.uri import EspressoUri, parse_index_query, parse_uri


@dataclass
class Response:
    """An HTTP-flavoured response."""

    status: int
    body: object = None
    etag: str | None = None
    #: set on load-shed 503s: the server's Retry-After hint in seconds
    retry_after: float | None = None


class Router:
    """Stateless request router over one cluster."""

    def __init__(self, cluster: EspressoCluster,
                 retry_policy: RetryPolicy | None = None,
                 auto_failover: bool = False, retry_seed: int = 0,
                 admission_rate: float | None = None,
                 admission_burst: float | None = None):
        self.cluster = cluster
        self.retry_policy = retry_policy
        self.auto_failover = auto_failover
        self._retry_rng = random.Random(retry_seed)
        self.metrics = MetricsRegistry()
        self.requests_routed = 0
        # per-partition admission control (off unless a rate is given):
        # a hot partition sheds its own overflow as fast 503s instead of
        # queueing behind the storage node, and the other partitions of
        # the same node stay unaffected.  Shed 503s are retried against
        # the resilience budget (see _execute) — the backoff sleeps are
        # what let the partition's token bucket refill.
        self.admission_rate = admission_rate
        self.admission_burst = admission_burst
        self._admission: dict[int, AdmissionController] = {}

    def admission_for(self, partition_id: int) -> AdmissionController | None:
        """The partition's admission controller (created on first use;
        None when admission control is disabled)."""
        if self.admission_rate is None:
            return None
        controller = self._admission.get(partition_id)
        if controller is None:
            controller = AdmissionController(
                self.cluster.clock, self.admission_rate,
                self.admission_burst, metrics=self.metrics,
                name=f"admission.p{partition_id}")
            self._admission[partition_id] = controller
        return controller

    def _admit(self, resource_id: str, priority: int, what: str) -> None:
        if self.admission_rate is None:
            return
        partition = self.cluster.database.partition_for(resource_id)
        self.admission_for(partition).admit(
            priority, what=f"{what} partition {partition}")

    def _target(self, uri: EspressoUri):
        if uri.database != self.cluster.database.name:
            raise ConfigurationError(f"unknown database {uri.database!r}")
        if uri.resource_id is None:
            raise ConfigurationError("URI names no resource")
        self.requests_routed += 1
        return self.cluster.node_for_resource(uri.resource_id)

    def _execute(self, name: str, fn):
        """Run one routed operation, retrying NotMasterError.

        Between attempts the router (optionally) asks the controller to
        converge, promoting a slave for any masterless partition.
        """
        def on_retry(_retry_number, exc):
            if self.auto_failover and isinstance(exc, NotMasterError):
                self.metrics.counter("router.failovers").increment()
                self.cluster.failover()

        # shed 503s are retryable *within the resilience budget*: the
        # policy's bounded attempts and backoff sleeps (during which the
        # admission bucket refills) are precisely the "clients retry
        # against the budget" contract — no policy, no retry, fast 503
        return call_with_retries(
            fn, clock=self.cluster.clock, policy=self.retry_policy,
            rng=self._retry_rng,
            retry_on=(NotMasterError, ServerOverloadedError),
            metrics=self.metrics, name=name, on_retry=on_retry)

    # -- verbs ------------------------------------------------------------------

    def get(self, uri: str) -> Response:
        """Point read, collection read, or secondary-index query."""
        parsed = parse_uri(uri)

        def attempt():
            self._admit(parsed.resource_id, PRIORITY_LIVE, "GET")
            node = self._target(parsed)
            if parsed.query is not None:
                fieldname, value = parse_index_query(parsed.query)
                records = node.query_index(parsed.table, fieldname, value,
                                           resource_id=parsed.resource_id)
                return Response(200, records)
            if parsed.is_collection and \
                    self.cluster.database.table(parsed.table).key_depth > 1:
                records = node.get_collection(parsed.table, parsed.resource_id)
                if not records:
                    return Response(404, f"no documents under {uri}")
                return Response(200, records)
            record = node.get_document(parsed.table, parsed.key)
            return Response(200, record, etag=record.etag)

        try:
            return self._execute("get", attempt)
        except KeyNotFoundError as exc:
            return Response(404, str(exc))
        except NotMasterError as exc:
            return Response(503, str(exc))
        except ServerOverloadedError as exc:
            return Response(503, str(exc), retry_after=exc.retry_after)
        except ConfigurationError as exc:
            return Response(400, str(exc))

    def put(self, uri: str, document: dict,
            if_match: str | None = None) -> Response:
        """Create or replace one document (conditional on ``if_match``)."""
        parsed = parse_uri(uri)

        def attempt():
            self._admit(parsed.resource_id, PRIORITY_WRITE, "PUT")
            node = self._target(parsed)
            etag = node.put_document(parsed.table, parsed.key, document,
                                     expected_etag=if_match)
            return Response(200, None, etag=etag)

        try:
            return self._execute("put", attempt)
        except NotMasterError as exc:
            return Response(503, str(exc))
        except ServerOverloadedError as exc:
            return Response(503, str(exc), retry_after=exc.retry_after)
        except TransactionAbortedError as exc:
            return Response(412, str(exc))
        except ConfigurationError as exc:
            return Response(400, str(exc))

    def delete(self, uri: str) -> Response:
        parsed = parse_uri(uri)

        def attempt():
            self._admit(parsed.resource_id, PRIORITY_WRITE, "DELETE")
            node = self._target(parsed)
            node.delete_document(parsed.table, parsed.key)
            return Response(200)

        try:
            return self._execute("delete", attempt)
        except KeyNotFoundError as exc:
            return Response(404, str(exc))
        except NotMasterError as exc:
            return Response(503, str(exc))
        except ServerOverloadedError as exc:
            return Response(503, str(exc), retry_after=exc.retry_after)
        except ConfigurationError as exc:
            return Response(400, str(exc))

    def post_transaction(self, database: str, resource_id: str,
                         operations: list[tuple[str, str, tuple, dict | None]]
                         ) -> Response:
        """Transactional multi-table update: POST to a wildcard table
        URI where 'the entity-body contains the individual document
        updates' (§IV.A)."""
        if database != self.cluster.database.name:
            return Response(400, f"unknown database {database!r}")

        def attempt():
            self._admit(resource_id, PRIORITY_WRITE, "POST")
            node = self.cluster.node_for_resource(resource_id)
            self.requests_routed += 1
            scn = node.transact(resource_id, operations)
            return Response(200, {"scn": scn})

        try:
            return self._execute("post", attempt)
        except NotMasterError as exc:
            return Response(503, str(exc))
        except ServerOverloadedError as exc:
            return Response(503, str(exc), retry_after=exc.retry_after)
        except (TransactionAbortedError, ConfigurationError) as exc:
            return Response(409, str(exc))
