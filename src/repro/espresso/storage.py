"""Espresso storage nodes (§IV.B "Storage Node").

Each node runs one MySQL-style local store (:class:`SqlDatabase`) whose
tables follow Table IV.1 exactly — key columns from the table's URI
schema plus ``timestamp``, ``etag``, ``val`` (the Avro-serialized
document) and ``schema_version`` — and a Lucene-style local secondary
index per table.

Replica roles are per partition: a node is MASTER for some partitions
and SLAVE for a disjoint set.  Master writes assign dense *per-
partition* commit SCNs and are pushed to the partition's Databus relay
buffer before the local commit is acknowledged (the semi-synchronous
"written to two places" rule).  Slaves consume those buffers in SCN
order, which is what makes replication timeline consistent.

When constructed with a :class:`~repro.simnet.disk.Disk`, every
committed window — master commit or slave apply — is framed into a
per-node commit :class:`~repro.common.wal.WriteAheadLog` and fsynced
*before* the in-memory apply (DESIGN.md §9).  A restarted node replays
that log, rebuilding documents, local secondary indexes, and the
last-applied SCN in one pass, so the three can never diverge.  A
window captured by the relay but lost to a crash before the WAL fsync
is re-fetched from the relay by the normal catch-up path: the dense
SCN sequence makes replay idempotent (duplicates skip, gaps raise).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Callable

from repro.common.atomic import atomic_section
from repro.common.clock import Clock, WallClock
from repro.common.errors import (
    ConfigurationError,
    KeyNotFoundError,
    NotMasterError,
    ReplicationOrderError,
    TransactionAbortedError,
)
from repro.common.serialization import decode_record, decode_with_resolution, encode_record
from repro.common.wal import WriteAheadLog
from repro.databus.events import DatabusEvent
from repro.databus.relay import Relay
from repro.espresso.index import LocalSecondaryIndex
from repro.espresso.schema import DatabaseSchema, DocumentSchemaRegistry
from repro.simnet.disk import Disk
from repro.sqlstore import Column, SqlDatabase, TableSchema
from repro.sqlstore.binlog import BinlogTransaction, ChangeEvent, ChangeKind

# commit-WAL framing: one frame per committed window
_WAL_WINDOW = struct.Struct("<IQI")   # partition, scn, change count
_WAL_CHANGE = struct.Struct("<III")   # schema version, table len, payload len
_KIND_LIST = (ChangeKind.INSERT, ChangeKind.UPDATE, ChangeKind.DELETE)
_KIND_CODES = {kind: code for code, kind in enumerate(_KIND_LIST)}


def row_table_schema(database: DatabaseSchema, table_name: str) -> TableSchema:
    """The MySQL layout for one Espresso table (Table IV.1)."""
    espresso_table = database.table(table_name)
    columns = [Column(keypart, str) for keypart in espresso_table.key_fields]
    columns += [
        Column("timestamp", int),
        Column("etag", str),
        Column("val", bytes, nullable=True),
        Column("schema_version", int),
    ]
    return TableSchema(table_name, tuple(columns), espresso_table.key_fields)


def partition_buffer_name(database: str, partition: int) -> str:
    """Relay buffer naming: one event buffer per partition (§IV.B)."""
    return f"{database}-p{partition}"


@dataclass
class DocumentRecord:
    """A decoded read result."""

    key: tuple[str, ...]
    document: dict
    etag: str
    timestamp: int
    schema_version: int


class EspressoStorageNode:
    """One storage node's state: local store, indexes, replica roles."""

    def __init__(self, instance_name: str, database: DatabaseSchema,
                 schemas: DocumentSchemaRegistry, relay: Relay,
                 clock: Clock | None = None,
                 disk: Disk | None = None,
                 on_apply: Callable[[int, int], None] | None = None):
        self.instance_name = instance_name
        self.database = database
        self.schemas = schemas
        self.relay = relay
        self.clock = clock or WallClock()
        self.local = SqlDatabase(f"{database.name}@{instance_name}",
                                 clock=self.clock)
        self._indexes: dict[str, LocalSecondaryIndex] = {}
        for table_name in database.table_names():
            self.local.create_table(row_table_schema(database, table_name))
            if relay.schemas.latest(table_name) is None:
                from repro.databus.events import row_schema_for
                relay.register_schema(
                    row_schema_for(self.local.table(table_name).schema))
        # partition -> "MASTER" | "SLAVE"
        self.roles: dict[int, str] = {}
        # per-partition commit SCN (masters produce, slaves track applied)
        self.partition_scn: dict[int, int] = {}
        self.writes_accepted = 0
        self.windows_applied = 0
        self.on_apply = on_apply
        self.recovered_windows = 0
        self._commit_wal: WriteAheadLog | None = None
        if disk is not None:
            self._commit_wal = WriteAheadLog("commit.wal", disk=disk)
            self._recover_from_wal()

    # -- commit log / recovery --------------------------------------------------

    def _wal_append_window(self, partition: int, scn: int,
                           items: list[tuple[int, str, int, bytes]]) -> None:
        """Frame one committed window and make it durable *before* the
        in-memory apply; items are (kind code, table, version, payload)."""
        if self._commit_wal is None:
            return
        out = bytearray(_WAL_WINDOW.pack(partition, scn, len(items)))
        for code, table, version, payload in items:
            name = table.encode()
            out.append(code)
            out.extend(_WAL_CHANGE.pack(version, len(name), len(payload)))
            out.extend(name)
            out.extend(payload)
        self._commit_wal.append(bytes(out))
        self._commit_wal.fsync()  # the commit is acked against this frame

    def _recover_from_wal(self) -> None:
        """Replay the commit log: rows, secondary indexes, and the
        last-applied SCN are rebuilt from the same frames, so a crash
        can never leave the index diverged from the data store."""
        for frame in self._commit_wal.replay():
            partition, scn, count = _WAL_WINDOW.unpack_from(frame, 0)
            offset = _WAL_WINDOW.size
            changes: list[ChangeEvent] = []
            for _ in range(count):
                code = frame[offset]
                offset += 1
                version, name_len, payload_len = _WAL_CHANGE.unpack_from(
                    frame, offset)
                offset += _WAL_CHANGE.size
                table = frame[offset:offset + name_len].decode()
                offset += name_len
                payload = bytes(frame[offset:offset + payload_len])
                offset += payload_len
                schema = self.relay.schemas.get(table, version)
                row = decode_record(schema, payload)
                key = tuple(row[k]
                            for k in self.database.table(table).key_fields)
                changes.append(ChangeEvent(table, _KIND_LIST[code], key, row))
            self._apply_changes(changes)
            self.partition_scn[partition] = scn
            self.recovered_windows += 1

    # -- roles ----------------------------------------------------------------

    def role_of(self, partition: int) -> str | None:
        return self.roles.get(partition)

    def is_master(self, partition: int) -> bool:
        return self.roles.get(partition) == "MASTER"

    def become_slave(self, partition: int) -> None:
        self.roles[partition] = "SLAVE"
        self.partition_scn.setdefault(partition, 0)

    def become_master(self, partition: int) -> None:
        """Promote after draining the partition's relay buffer (§IV.B):
        'The slave partition first consumes all outstanding changes to
        the partition from the Databus relay, and then becomes a master
        partition.'"""
        self.catch_up(partition)
        self.roles[partition] = "MASTER"

    def go_offline(self, partition: int) -> None:
        self.roles.pop(partition, None)

    def mastered_partitions(self) -> list[int]:
        return sorted(p for p, r in self.roles.items() if r == "MASTER")

    def slaved_partitions(self) -> list[int]:
        return sorted(p for p, r in self.roles.items() if r == "SLAVE")

    # -- document encoding -------------------------------------------------------

    def _index_for(self, table: str) -> LocalSecondaryIndex:
        latest = self.schemas.latest(self.database.name, table)
        index = self._indexes.get(table)
        if index is None or index.schema.version != latest.version:
            rebuilt = LocalSecondaryIndex(latest)
            if index is not None and not index.is_empty:
                for row in self.local.table(table).scan():
                    record = self._decode_row(table, row)
                    rebuilt.add(record.key, record.document)
            self._indexes[table] = rebuilt
            index = rebuilt
        return index

    def _encode_document(self, table: str, document: dict) -> tuple[bytes, int]:
        schema = self.schemas.latest(self.database.name, table)
        return encode_record(schema, document), schema.version

    def _decode_row(self, table: str, row: dict) -> DocumentRecord:
        espresso_table = self.database.table(table)
        key = tuple(row[k] for k in espresso_table.key_fields)
        writer = self.schemas.get(self.database.name, table,
                                  row["schema_version"])
        reader = self.schemas.latest(self.database.name, table)
        if writer.version == reader.version:
            document = decode_record(writer, row["val"])
        else:
            document = decode_with_resolution(writer, reader, row["val"])
        return DocumentRecord(key, document, row["etag"], row["timestamp"],
                              row["schema_version"])

    def _build_row(self, table: str, key: tuple[str, ...],
                   document: dict) -> dict:
        espresso_table = self.database.table(table)
        if len(key) != espresso_table.key_depth:
            raise ConfigurationError(
                f"table {table} keys have {espresso_table.key_depth} "
                f"elements, got {len(key)}")
        val, version = self._encode_document(table, document)
        row = dict(zip(espresso_table.key_fields, key))
        row.update({
            "timestamp": int(self.clock.now() * 1000),
            "etag": hashlib.md5(val).hexdigest()[:10],
            "val": val,
            "schema_version": version,
        })
        return row

    # -- master write path -----------------------------------------------------------

    def _check_master(self, partition: int) -> None:
        if not self.is_master(partition):
            raise NotMasterError(
                f"{self.instance_name} is {self.roles.get(partition)} "
                f"for partition {partition}", partition_id=partition)

    def put_document(self, table: str, key: tuple[str, ...],
                     document: dict, expected_etag: str | None = None) -> str:
        """Insert or replace one document; returns its new etag.

        ``expected_etag`` implements conditional HTTP requests: the
        write fails unless the stored etag matches.
        """
        partition = self.database.partition_for(key[0])
        self._check_master(partition)
        row = self._build_row(table, key, document)
        sql_table = self.local.table(table)
        exists = sql_table.contains(key)
        if expected_etag is not None:
            if not exists or sql_table.get(key)["etag"] != expected_etag:
                raise TransactionAbortedError(
                    f"etag precondition failed for {key!r}")
        kind = ChangeKind.UPDATE if exists else ChangeKind.INSERT
        self._commit_as_master(partition,
                               [ChangeEvent(table, kind, key, row)])
        return row["etag"]

    def delete_document(self, table: str, key: tuple[str, ...]) -> None:
        partition = self.database.partition_for(key[0])
        self._check_master(partition)
        sql_table = self.local.table(table)
        if not sql_table.contains(key):
            raise KeyNotFoundError(f"{table}: {key!r}")
        old = sql_table.get(key)
        self._commit_as_master(partition,
                               [ChangeEvent(table, ChangeKind.DELETE, key, old)])

    def transact(self, resource_id: str,
                 operations: list[tuple[str, str, tuple, dict | None]]) -> int:
        """Multi-table transaction within one resource group (§IV.A).

        ``operations`` are ``(op, table, key, document)`` with op in
        {"put", "delete"}; every key must lead with ``resource_id`` so
        all changes land in one partition.  All-or-nothing.
        """
        if not operations:
            raise TransactionAbortedError("empty transaction")
        partition = self.database.partition_for(resource_id)
        self._check_master(partition)
        changes: list[ChangeEvent] = []
        for op, table, key, document in operations:
            if key[0] != resource_id:
                raise TransactionAbortedError(
                    f"cross-resource transaction: {key[0]!r} != {resource_id!r}")
            sql_table = self.local.table(table)
            if op == "put":
                row = self._build_row(table, key, document)
                kind = (ChangeKind.UPDATE if sql_table.contains(key)
                        else ChangeKind.INSERT)
                changes.append(ChangeEvent(table, kind, key, row))
            elif op == "delete":
                if not sql_table.contains(key):
                    raise TransactionAbortedError(f"{table}: no row {key!r}")
                changes.append(ChangeEvent(table, ChangeKind.DELETE, key,
                                           sql_table.get(key)))
            else:
                raise TransactionAbortedError(f"unknown op {op!r}")
        return self._commit_as_master(partition, changes)

    def bulk_apply(self, table: str,
                   documents: list[tuple[tuple[str, ...], dict]]
                   ) -> dict[int, int]:
        """Bulk load path: commit a batch of ``(key, document)`` upserts
        as **one window per partition** instead of one per document.

        This is what a migration backfill uses to land a whole chunk:
        one relay window, one WAL frame, and one fsync per touched
        partition, so the per-document commit overhead disappears while
        replication and durability semantics stay identical to the
        normal write path.  Returns ``{partition: committed SCN}``.
        """
        by_partition: dict[int, list[ChangeEvent]] = {}
        for key, document in documents:
            partition = self.database.partition_for(key[0])
            self._check_master(partition)
            row = self._build_row(table, key, document)
            kind = (ChangeKind.UPDATE if self.local.table(table).contains(key)
                    else ChangeKind.INSERT)
            by_partition.setdefault(partition, []).append(
                ChangeEvent(table, kind, key, row))
        scns: dict[int, int] = {}
        for partition in sorted(by_partition):
            scns[partition] = self._commit_as_master(
                partition, by_partition[partition])
        return scns

    def _commit_as_master(self, partition: int,
                          changes: list[ChangeEvent]) -> int:
        """The semi-sync commit: relay first, then local apply."""
        scn = self.partition_scn.get(partition, 0) + 1
        txn = BinlogTransaction(scn, tuple(changes),
                                timestamp=self.clock.now())
        # write to the relay *before* acknowledging locally; a relay
        # failure aborts the commit (nothing applied locally yet)
        self.relay.capture_transaction(
            txn, buffer_name=partition_buffer_name(self.database.name,
                                                   partition))
        # a crash after the relay capture but before this fsync is
        # healed by catch-up: the relay holds the window, the dense SCN
        # check makes re-application exact
        items = []
        for change in changes:
            schema = self.relay.schemas.latest(change.table)
            items.append((_KIND_CODES[change.kind], change.table,
                          schema.version, encode_record(schema, change.row)))
        self._wal_append_window(partition, scn, items)
        self._apply_committed(partition, scn, changes)
        self.writes_accepted += 1
        if self.on_apply is not None:
            self.on_apply(partition, scn)
        return scn

    @atomic_section
    def _apply_committed(self, partition: int, scn: int,
                         changes: list[ChangeEvent]) -> None:
        """Make a WAL-durable window visible: doc + index + SCN as one
        unit.

        The WAL fsync above is a yield point — another commit or a
        replayed window may have advanced the partition SCN while this
        window was being made durable, so the pre-fsync read of the SCN
        must be revalidated before applying on top of it.  The
        ``@atomic_section`` decorator has repro-lint prove the
        revalidate-then-apply sequence itself contains no further yield
        point, which is what makes the check-then-act here race-free.
        """
        current = self.partition_scn.get(partition, 0)
        if current != scn - 1:
            raise ReplicationOrderError(
                f"partition {partition}: SCN advanced to {current} while "
                f"the window for SCN {scn} was being made durable; a "
                "concurrent commit or replay raced the WAL fsync")
        self._apply_changes(changes)
        self.partition_scn[partition] = scn

    def _apply_changes(self, changes: list[ChangeEvent]) -> None:
        for change in changes:
            sql_table = self.local.table(change.table)
            if change.kind is ChangeKind.DELETE:
                if sql_table.contains(change.key):
                    sql_table.delete(change.key)
                self._index_for(change.table).remove(change.key)
            else:
                sql_table.upsert(change.row)
                record = self._decode_row(change.table, change.row)
                self._index_for(change.table).add(record.key, record.document)

    # -- slave replication path ----------------------------------------------------------

    def catch_up(self, partition: int) -> int:
        """Consume the partition's relay buffer up to its head; returns
        the number of windows applied."""
        buffer_name = partition_buffer_name(self.database.name, partition)
        applied = 0
        while True:
            events = self.relay.stream_from(
                self.partition_scn.get(partition, 0), buffer_name)
            if not events:
                return applied
            applied += self._apply_event_windows(partition, events)

    def _apply_event_windows(self, partition: int,
                             events: list[DatabusEvent]) -> int:
        windows = 0
        window: list[DatabusEvent] = []
        for event in events:
            window.append(event)
            if event.end_of_window:
                self._apply_one_window(partition, window)
                windows += 1
                window = []
        return windows

    def _apply_one_window(self, partition: int,
                          events: list[DatabusEvent]) -> None:
        scn = events[0].scn
        expected = self.partition_scn.get(partition, 0) + 1
        if scn < expected:
            return  # duplicate delivery
        if scn > expected:
            raise ConfigurationError(
                f"{self.instance_name}: partition {partition} SCN gap: "
                f"expected {expected}, got {scn}")
        # watermark/control events occupy an SCN but carry no row image;
        # the SCN bookkeeping below still advances past them
        data_events = [e for e in events if not e.is_control]
        changes = []
        for event in data_events:
            schema = self.relay.schemas.get(event.source, event.schema_version)
            row = decode_record(schema, event.payload)
            changes.append(ChangeEvent(event.source, event.kind, event.key, row))
        self._wal_append_window(
            partition, scn,
            [(_KIND_CODES[e.kind], e.source, e.schema_version, e.payload)
             for e in data_events])
        self._apply_committed(partition, scn, changes)
        self.windows_applied += 1
        if self.on_apply is not None:
            self.on_apply(partition, scn)

    # -- reads ------------------------------------------------------------------------------

    def get_document(self, table: str, key: tuple[str, ...]) -> DocumentRecord:
        sql_table = self.local.table(table)
        if not sql_table.contains(key):
            raise KeyNotFoundError(f"{table}: {key!r}")
        return self._decode_row(table, sql_table.get(key))

    def get_collection(self, table: str,
                       resource_id: str) -> list[DocumentRecord]:
        """Every document of a collection resource, key order."""
        sql_table = self.local.table(table)
        return [self._decode_row(table, row)
                for row in sql_table.scan((resource_id,))]

    def query_index(self, table: str, fieldname: str, value: str,
                    resource_id: str | None = None) -> list[DocumentRecord]:
        """Index lookup then fetch from the local data store (§IV.B)."""
        index = self._index_for(table)
        keys = index.query(fieldname, value, resource_id)
        return [self.get_document(table, key) for key in keys]

    def query_full_scan(self, table: str, fieldname: str, value: str,
                        resource_id: str | None = None) -> list[DocumentRecord]:
        """The no-index baseline: decode and test every document."""
        prefix = (resource_id,) if resource_id is not None else ()
        out = []
        needle = value.lower()
        for row in self.local.table(table).scan(prefix):
            record = self._decode_row(table, row)
            stored = record.document.get(fieldname)
            if stored is None:
                continue
            if needle in str(stored).lower():
                out.append(record)
        return out

    # -- snapshots for expansion (§IV.B) ---------------------------------------------------

    def partition_snapshot(self, partition: int) -> tuple[int, dict[str, list[dict]]]:
        """Rows of one partition plus its SCN, for bootstrapping a new
        replica."""
        rows: dict[str, list[dict]] = {}
        for table_name in self.database.table_names():
            espresso_table = self.database.table(table_name)
            rows[table_name] = [
                row for row in self.local.table(table_name).scan()
                if self.database.partition_for(
                    row[espresso_table.resource_field]) == partition
            ]
        return self.partition_scn.get(partition, 0), rows

    def load_partition_snapshot(self, partition: int, scn: int,
                                rows: dict[str, list[dict]]) -> None:
        # persist the snapshot as one synthetic insert window: without
        # it, a WAL replay would rebuild post-snapshot windows on top of
        # a missing base and silently diverge from the donor
        items = []
        for table_name in sorted(rows):
            schema = self.relay.schemas.latest(table_name)
            for row in rows[table_name]:
                items.append((_KIND_CODES[ChangeKind.INSERT], table_name,
                              schema.version, encode_record(schema, row)))
        self._wal_append_window(partition, scn, items)
        for table_name, table_rows in rows.items():
            sql_table = self.local.table(table_name)
            for row in table_rows:
                sql_table.upsert(row)
                record = self._decode_row(table_name, row)
                self._index_for(table_name).add(record.key, record.document)
        self.partition_scn[partition] = scn
