"""Database, table, and document schemas (§IV.A).

* A **database schema** declares the partitioning strategy (hash or
  unpartitioned), partition count, and replication factor.
* A **table schema** declares the URI path elements — which key parts
  identify a document (resource id, subresource ids).  Tables sharing a
  database partition by the leading ``resource_id`` element, which is
  what makes multi-table transactions within one resource group safe.
* **Document schemas** are Avro-style records, registered in a
  versioned registry; evolution must satisfy the resolution rules.
  Fields annotated ``indexed`` or ``free_text`` create local secondary
  index entries.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.serialization import RecordSchema, SchemaRegistry


@dataclass(frozen=True)
class EspressoTableSchema:
    """URI structure for one table: names of the key path elements."""

    name: str
    key_fields: tuple[str, ...]  # first is the resource_id element

    def __post_init__(self):
        if not self.key_fields:
            raise ConfigurationError(f"table {self.name}: needs key fields")
        if len(set(self.key_fields)) != len(self.key_fields):
            raise ConfigurationError(f"table {self.name}: duplicate key fields")

    @property
    def resource_field(self) -> str:
        return self.key_fields[0]

    @property
    def key_depth(self) -> int:
        return len(self.key_fields)


@dataclass(frozen=True)
class DatabaseSchema:
    """Partitioning and replication for one Espresso database."""

    name: str
    num_partitions: int = 8
    replication_factor: int = 2
    partitioning: str = "hash"  # "hash" | "unpartitioned"
    tables: tuple[EspressoTableSchema, ...] = ()

    def __post_init__(self):
        if self.partitioning not in ("hash", "unpartitioned"):
            raise ConfigurationError(
                f"unsupported partitioning {self.partitioning!r} "
                "(hash and unpartitioned only, range is future work)")
        if self.num_partitions <= 0 or self.replication_factor <= 0:
            raise ConfigurationError("partitions and replicas must be positive")
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate table names")

    def table(self, name: str) -> EspressoTableSchema:
        for table in self.tables:
            if table.name == name:
                return table
        raise ConfigurationError(f"database {self.name} has no table {name!r}")

    def table_names(self) -> list[str]:
        return [t.name for t in self.tables]

    def partition_for(self, resource_id: str) -> int:
        """The routing function applied to the resource_id (§IV.B Router).

        Every table keys by resource id first, so "all tables within a
        single database indexed by the same resource_id path element
        will partition identically" — the transactional-update
        guarantee.
        """
        if self.partitioning == "unpartitioned":
            return 0
        digest = hashlib.md5(resource_id.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.num_partitions


class DocumentSchemaRegistry:
    """Versioned document schemas per (database, table).

    "To evolve a document schema, one simply posts a new version to the
    schema URI.  New document schemas must be compatible according to
    the Avro schema resolution rules" — enforced by the underlying
    :class:`SchemaRegistry`.
    """

    def __init__(self):
        self._registries: dict[str, SchemaRegistry] = {}

    @staticmethod
    def _key(database: str, table: str) -> str:
        return f"{database}/{table}"

    def post(self, database: str, table: str, schema: RecordSchema) -> int:
        """Register a (new version of a) document schema; returns version."""
        if schema.name != schema_name_for(table):
            raise ConfigurationError(
                f"document schema for table {table!r} must be named "
                f"{schema_name_for(table)!r}, got {schema.name!r}")
        registry = self._registries.setdefault(self._key(database, table),
                                               SchemaRegistry())
        return registry.register(schema)

    def get(self, database: str, table: str, version: int) -> RecordSchema:
        registry = self._registries.get(self._key(database, table))
        if registry is None:
            raise ConfigurationError(f"no schemas for {database}/{table}")
        return registry.get(schema_name_for(table), version)

    def latest(self, database: str, table: str) -> RecordSchema:
        registry = self._registries.get(self._key(database, table))
        if registry is None:
            raise ConfigurationError(f"no schemas for {database}/{table}")
        latest = registry.latest(schema_name_for(table))
        if latest is None:
            raise ConfigurationError(f"no schemas for {database}/{table}")
        return latest

    def has_schema(self, database: str, table: str) -> bool:
        registry = self._registries.get(self._key(database, table))
        return registry is not None and bool(registry.names())


def schema_name_for(table: str) -> str:
    """Document schemas are named after their table."""
    return table
