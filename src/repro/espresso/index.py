"""Local secondary indexing — the Lucene stand-in (§IV.A, §IV.B).

Each storage node "optionally indexes each document in a local
secondary index based on the index constraints specified in the
document schema".  Two constraint kinds are supported:

* ``indexed`` — exact-term postings on the field's value;
* ``free_text`` — tokenized postings supporting multi-word queries
  (all terms must match, the paper's ``lyrics:"Lucy in the sky"``
  example).

Queries "first consult a local secondary index then return the matching
documents from the local data store"; results can be restricted to one
collection resource (common resource_id prefix), which is the only
indexed access path the paper allows.
"""

from __future__ import annotations

import re

from repro.common.errors import ConfigurationError
from repro.common.serialization import RecordSchema

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    return _TOKEN_RE.findall(text.lower())


class LocalSecondaryIndex:
    """Inverted index over one table's documents on one node."""

    def __init__(self, schema: RecordSchema):
        self.schema = schema
        self._term_fields = {f.name for f in schema.fields if f.indexed}
        self._text_fields = {f.name for f in schema.fields if f.free_text}
        # (field, term) -> set of document keys
        self._postings: dict[tuple[str, str], set[tuple]] = {}
        # doc key -> set of (field, term) for removal
        self._doc_terms: dict[tuple, set[tuple[str, str]]] = {}
        self.documents_indexed = 0

    @property
    def is_empty(self) -> bool:
        return not self._doc_terms

    def _terms_for(self, document: dict) -> set[tuple[str, str]]:
        terms: set[tuple[str, str]] = set()
        for fieldname in self._term_fields:
            value = document.get(fieldname)
            if value is not None:
                terms.add((fieldname, str(value).lower()))
        for fieldname in self._text_fields:
            value = document.get(fieldname)
            if value is not None:
                for token in tokenize(str(value)):
                    terms.add((fieldname, token))
        return terms

    def add(self, doc_key: tuple, document: dict) -> None:
        """Index (or re-index) one document."""
        self.remove(doc_key)
        terms = self._terms_for(document)
        for term in terms:
            self._postings.setdefault(term, set()).add(doc_key)
        if terms:
            self._doc_terms[doc_key] = terms
        self.documents_indexed += 1

    def remove(self, doc_key: tuple) -> None:
        terms = self._doc_terms.pop(doc_key, set())
        for term in terms:
            bucket = self._postings.get(term)
            if bucket is not None:
                bucket.discard(doc_key)
                if not bucket:
                    del self._postings[term]

    def query(self, fieldname: str, value: str,
              resource_id: str | None = None) -> list[tuple]:
        """Document keys matching ``fieldname:value``.

        Exact-term fields match the whole value; free-text fields match
        documents containing *all* tokens of ``value``.  With
        ``resource_id`` set, results are limited to that collection.
        """
        if fieldname in self._term_fields:
            matches = set(self._postings.get((fieldname, value.lower()), set()))
        elif fieldname in self._text_fields:
            tokens = tokenize(value)
            if not tokens:
                return []
            matches = set(self._postings.get((fieldname, tokens[0]), set()))
            for token in tokens[1:]:
                matches &= self._postings.get((fieldname, token), set())
        else:
            raise ConfigurationError(
                f"field {fieldname!r} carries no index constraint")
        if resource_id is not None:
            matches = {k for k in matches if k and k[0] == resource_id}
        return sorted(matches)

    def indexed_fields(self) -> set[str]:
        return self._term_fields | self._text_fields
