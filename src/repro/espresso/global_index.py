"""Global secondary indexes (§IV.A future enhancement).

"At present, indexed access is limited to collection resources accessed
via a common resource_id in the URI path.  Future enhancements will
implement global secondary indexes maintained via a listener to the
update stream."

This module implements that enhancement: a :class:`GlobalIndexService`
subscribes to every partition's Databus buffer (Espresso's internal
update stream), decodes the replicated storage rows back into
documents, and maintains one cluster-wide inverted index per table.
Queries span *all* resources — the access path local indexes cannot
serve — at the cost of eventual consistency: the index trails the
stream by whatever the listener's lag is.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.serialization import decode_record, decode_with_resolution
from repro.espresso.cluster import EspressoCluster
from repro.espresso.index import LocalSecondaryIndex
from repro.espresso.storage import DocumentRecord, partition_buffer_name
from repro.sqlstore.binlog import ChangeKind


class GlobalIndexService:
    """An update-stream listener maintaining cross-resource indexes."""

    def __init__(self, cluster: EspressoCluster):
        self.cluster = cluster
        self.database = cluster.database
        self._indexes: dict[str, LocalSecondaryIndex] = {}
        # partition -> consumed SCN
        self._checkpoints: dict[int, int] = {
            p: 0 for p in range(self.database.num_partitions)}
        self.events_indexed = 0

    # -- stream listener ------------------------------------------------------

    def catch_up(self) -> int:
        """Consume every partition buffer to its head; returns events."""
        consumed = 0
        for partition in range(self.database.num_partitions):
            buffer_name = partition_buffer_name(self.database.name, partition)
            if buffer_name not in self.cluster.relay.buffer_names():
                continue
            while True:
                events = self.cluster.relay.stream_from(
                    self._checkpoints[partition], buffer_name)
                if not events:
                    break
                for event in events:
                    self._apply(event)
                    consumed += 1
                self._checkpoints[partition] = events[-1].scn
        return consumed

    def _apply(self, event) -> None:
        index = self._index_for(event.source)
        doc_key = event.key
        if event.kind is ChangeKind.DELETE:
            index.remove(doc_key)
        else:
            row_schema = self.cluster.relay.schemas.get(event.source,
                                                        event.schema_version)
            row = decode_record(row_schema, event.payload)
            document = self._decode_document(event.source, row)
            index.add(doc_key, document)
        self.events_indexed += 1

    def _decode_document(self, table: str, row: dict) -> dict:
        writer = self.cluster.schemas.get(self.database.name, table,
                                          row["schema_version"])
        reader = self.cluster.schemas.latest(self.database.name, table)
        if writer.version == reader.version:
            return decode_record(writer, row["val"])
        return decode_with_resolution(writer, reader, row["val"])

    def _index_for(self, table: str) -> LocalSecondaryIndex:
        latest = self.cluster.schemas.latest(self.database.name, table)
        index = self._indexes.get(table)
        if index is None or index.schema.version != latest.version:
            rebuilt = LocalSecondaryIndex(latest)
            if index is not None:
                # re-derive postings from the authoritative masters
                for partition in range(self.database.num_partitions):
                    master = self.cluster.master_node(partition)
                    if master is None:
                        continue
                    for row in master.local.table(table).scan():
                        espresso_table = self.database.table(table)
                        key = tuple(row[k] for k in espresso_table.key_fields)
                        if self.database.partition_for(key[0]) != partition:
                            continue
                        rebuilt.add(key, self._decode_document(table, row))
            self._indexes[table] = rebuilt
            index = rebuilt
        return index

    # -- queries -------------------------------------------------------------------

    def query_keys(self, table: str, fieldname: str,
                   value: str) -> list[tuple]:
        """Document keys matching the query, across ALL resources."""
        return self._index_for(table).query(fieldname, value)

    def query_documents(self, table: str, fieldname: str,
                        value: str) -> list[DocumentRecord]:
        """Global query, then fetch each document from its partition's
        current master (index gives keys; masters give truth)."""
        out = []
        for key in self.query_keys(table, fieldname, value):
            master = self.cluster.master_node(
                self.database.partition_for(key[0]))
            if master is None:
                raise ConfigurationError(
                    f"no master for resource {key[0]!r}")
            out.append(master.get_document(table, key))
        return out

    def lag(self) -> int:
        """Unconsumed events across all partition buffers."""
        total = 0
        for partition in range(self.database.num_partitions):
            buffer_name = partition_buffer_name(self.database.name, partition)
            if buffer_name not in self.cluster.relay.buffer_names():
                continue
            head = self.cluster.relay.newest_scn(buffer_name)
            total += max(0, head - self._checkpoints[partition])
        return total
