"""Wiring storage nodes, relay, Helix, and Zookeeper into a cluster.

This is Figure IV.1 in executable form.  The cluster:

* runs one Databus relay with a buffer per partition;
* registers every storage node as a Helix participant whose transition
  handler maps controller tasks onto storage-node role changes — a
  SLAVE->MASTER promotion first drains the partition's relay buffer,
  exactly the failover sequence of §IV.B;
* pumps slave replication (each pump is one round of slaves consuming
  their partitions' buffers);
* supports elastic expansion: new partitions bootstrap from a snapshot
  of the current master, catch up from the relay, then take mastership.
"""

from __future__ import annotations

from repro.common.clock import Clock, SimClock
from repro.common.errors import (
    ConfigurationError,
    NotMasterError,
    SCNGoneError,
)
from repro.databus.relay import Relay
from repro.espresso.schema import DatabaseSchema, DocumentSchemaRegistry
from repro.espresso.storage import EspressoStorageNode
from repro.helix import (
    MASTER_SLAVE,
    HelixController,
    Participant,
    compute_ideal_state,
)
from repro.helix.statemodel import Transition
from repro.simnet.disk import SimDisk
from repro.zookeeper import ZooKeeperServer


class EspressoCluster:
    """A running Espresso deployment for one database."""

    def __init__(self, database: DatabaseSchema, num_nodes: int = 3,
                 clock: Clock | None = None,
                 relay_buffer_events: int = 100_000,
                 disk: SimDisk | None = None):
        if num_nodes < database.replication_factor:
            raise ConfigurationError("need at least as many nodes as replicas")
        self.database = database
        self.disk = disk
        self.clock = clock if clock is not None else SimClock()
        self.schemas = DocumentSchemaRegistry()
        self.zookeeper = ZooKeeperServer()
        self.relay = Relay(f"{database.name}-relay",
                           max_events_per_buffer=relay_buffer_events)
        self.controller = HelixController(database.name, self.zookeeper)
        self.nodes: dict[str, EspressoStorageNode] = {}
        self.participants: dict[str, Participant] = {}
        for i in range(num_nodes):
            self._create_node(f"storage-{i}")
        ideal = compute_ideal_state(
            database.name, list(self.nodes), database.num_partitions,
            database.replication_factor, MASTER_SLAVE)
        self.controller.add_resource(ideal)

    # -- node management ------------------------------------------------------

    def _make_node(self, instance_name: str) -> EspressoStorageNode:
        scope = self.disk.scope(instance_name) if self.disk else None
        return EspressoStorageNode(instance_name, self.database, self.schemas,
                                   self.relay, clock=self.clock, disk=scope)

    def _create_node(self, instance_name: str) -> EspressoStorageNode:
        node = self._make_node(instance_name)
        participant = Participant(
            instance_name, self.database.name, self.zookeeper,
            handler=self._make_transition_handler(instance_name))
        participant.connect()
        self.controller.register_participant(participant)
        self.nodes[instance_name] = node
        self.participants[instance_name] = participant
        return node

    def _make_transition_handler(self, instance_name: str):
        # resolved by name so a restarted (recovered) node object picks
        # up where the dead one left off without re-registering
        def handle(transition: Transition) -> None:
            node = self.nodes[instance_name]
            partition = transition.partition
            if transition.to_state == "SLAVE":
                node.become_slave(partition)
                self._catch_up_or_bootstrap(node, partition)
            elif transition.to_state == "MASTER":
                self._catch_up_or_bootstrap(node, partition)
                node.become_master(partition)
            elif transition.to_state in ("OFFLINE", "DROPPED"):
                node.go_offline(partition)
        return handle

    def _catch_up_or_bootstrap(self, node: EspressoStorageNode,
                               partition: int) -> None:
        """Catch a slave up; fall back to snapshot + catch-up when the
        relay no longer holds the partition's history (§IV.B expansion:
        'we first bootstrap the new partition from a snapshot taken
        from the original master partition, and then apply any changes
        since the snapshot from the Databus Relay')."""
        try:
            node.catch_up(partition)
            return
        except (SCNGoneError, ConfigurationError):
            pass
        donor = self._snapshot_donor(node, partition)
        if donor is None:
            return  # nobody has this partition's history; nothing to copy
        scn, rows = donor.partition_snapshot(partition)
        node.load_partition_snapshot(partition, scn, rows)
        node.catch_up(partition)

    def _snapshot_donor(self, node: EspressoStorageNode,
                        partition: int) -> EspressoStorageNode | None:
        """The current master when one exists, otherwise the most
        caught-up live replica (mid-rebalance the old master may already
        be demoted)."""
        master = self.master_node(partition)
        if master is not None and master is not node:
            return master
        candidates = [
            other for name, other in self.nodes.items()
            if other is not node and self.participants[name].is_connected
            and other.partition_scn.get(partition, 0) > 0
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda n: n.partition_scn[partition])

    # -- cluster operations -------------------------------------------------------

    def start(self) -> None:
        """Converge Helix so every partition has a master and slaves."""
        self.controller.converge()

    def master_node(self, partition: int) -> EspressoStorageNode | None:
        view = self.controller.external_view(self.database.name)
        master = view.master_of(partition)
        return self.nodes.get(master) if master else None

    def node_for_resource(self, resource_id: str) -> EspressoStorageNode:
        partition = self.database.partition_for(resource_id)
        node = self.master_node(partition)
        if node is None:
            # retryable: the controller may be mid-failover; converging
            # (cluster.failover()) promotes a slave and the next lookup
            # succeeds
            raise NotMasterError(
                f"partition {partition} has no master (converge first?)",
                partition_id=partition)
        return node

    def pump_replication(self, rounds: int = 1) -> int:
        """Drive slave consumption; returns windows applied."""
        applied = 0
        for _ in range(rounds):
            for name, node in self.nodes.items():
                if not self.participants[name].is_connected:
                    continue
                for partition in node.slaved_partitions():
                    applied += node.catch_up(partition)
        return applied

    def crash_node(self, instance_name: str) -> None:
        """Hard failure: liveness vanishes, roles are lost, and (with a
        SimDisk) unsynced commit-log bytes are gone."""
        self.participants[instance_name].disconnect()
        self.nodes[instance_name].roles.clear()
        if self.disk is not None:
            self.disk.crash_node(instance_name)

    def recover_node(self, instance_name: str) -> None:
        """Bring a crashed node back.  With a SimDisk the node object is
        rebuilt from its commit log — documents, indexes, and applied
        SCNs recover together — before rejoining the cluster; converge
        (failover) to hand it roles again."""
        if self.disk is not None:
            self.disk.restart_node(instance_name)
            self.nodes[instance_name] = self._make_node(instance_name)
        self.participants[instance_name].connect()

    def failover(self) -> None:
        """One controller reaction to the current liveness picture."""
        self.controller.converge()

    # -- elastic expansion ------------------------------------------------------------

    def add_node(self, instance_name: str) -> EspressoStorageNode:
        """Add a storage node and rebalance partitions onto it.

        The Helix rebalance recomputes the ideal state; the transition
        handler bootstraps each migrated partition from a snapshot of
        its current master before the newcomer takes any mastership.
        """
        if instance_name in self.nodes:
            raise ConfigurationError(f"node {instance_name} exists")
        node = self._create_node(instance_name)
        self.controller.rebalance_resource(self.database.name,
                                           list(self.nodes))
        self.controller.converge()
        return node

    # -- schema management -------------------------------------------------------------

    def post_document_schema(self, table: str, schema) -> int:
        """Post a (new version of a) document schema to the cluster."""
        return self.schemas.post(self.database.name, table, schema)

    # -- invariant helpers (used by tests and benches) ----------------------------------

    def masters_by_partition(self) -> dict[int, str | None]:
        view = self.controller.external_view(self.database.name)
        return {p: view.master_of(p)
                for p in range(self.database.num_partitions)}

    def assert_single_master(self) -> None:
        view = self.controller.external_view(self.database.name)
        for partition in range(self.database.num_partitions):
            masters = view.instances_in_state(partition, "MASTER")
            if len(masters) > 1:
                raise AssertionError(
                    f"partition {partition} has masters {masters}")
