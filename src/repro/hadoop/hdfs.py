"""A write-once file namespace standing in for HDFS.

Only the properties the read-only pipeline relies on are modelled:
files are immutable once closed, paths are hierarchical, directories
are listable, and readers can fetch whole files (the "parallel fetch
from HDFS" of the pull phase is simulated by chunked reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import InvalidRequestError, ReproError


class FileNotFoundInHDFSError(ReproError):
    """The path does not exist in the namespace."""


class FileAlreadyExistsError(ReproError):
    """HDFS files are write-once; the path already exists."""


@dataclass
class _FileEntry:
    data: bytes
    replication: int = 3


@dataclass
class MiniHDFS:
    """In-memory immutable file store with hierarchical paths."""

    default_replication: int = 3
    _files: dict[str, _FileEntry] = field(default_factory=dict)
    bytes_written: int = 0
    bytes_read: int = 0

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            raise InvalidRequestError(
                f"HDFS paths are absolute, got {path!r}")
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/") or "/"

    def create(self, path: str, data: bytes,
               replication: int | None = None) -> None:
        """Write a complete immutable file."""
        path = self._normalize(path)
        if path in self._files:
            raise FileAlreadyExistsError(path)
        self._files[path] = _FileEntry(
            bytes(data), replication or self.default_replication)
        self.bytes_written += len(data)

    def read(self, path: str) -> bytes:
        path = self._normalize(path)
        try:
            entry = self._files[path]
        except KeyError:
            raise FileNotFoundInHDFSError(path) from None
        self.bytes_read += len(entry.data)
        return entry.data

    def read_chunks(self, path: str, chunk_size: int = 1 << 20) -> Iterator[bytes]:
        """Chunked read, modelling a streaming fetch."""
        if chunk_size <= 0:
            raise InvalidRequestError("chunk_size must be positive")
        data = self.read(path)
        for start in range(0, len(data), chunk_size):
            yield data[start:start + chunk_size]

    def exists(self, path: str) -> bool:
        return self._normalize(path) in self._files

    def size(self, path: str) -> int:
        path = self._normalize(path)
        if path not in self._files:
            raise FileNotFoundInHDFSError(path)
        return len(self._files[path].data)

    def listdir(self, directory: str) -> list[str]:
        """Names of files and immediate subdirectories under ``directory``."""
        directory = self._normalize(directory)
        prefix = directory if directory.endswith("/") else directory + "/"
        if directory == "/":
            prefix = "/"
        names: set[str] = set()
        for path in self._files:
            if path.startswith(prefix):
                remainder = path[len(prefix):]
                names.add(remainder.split("/", 1)[0])
        if not names and directory != "/" and directory not in self._files:
            raise FileNotFoundInHDFSError(directory)
        return sorted(names)

    def glob_files(self, directory: str) -> list[str]:
        """All file paths under ``directory`` (recursive), sorted."""
        directory = self._normalize(directory)
        prefix = directory if directory.endswith("/") else directory + "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def delete(self, path: str, recursive: bool = False) -> int:
        """Remove a file, or a subtree with ``recursive``; returns count."""
        path = self._normalize(path)
        if path in self._files:
            del self._files[path]
            return 1
        if recursive:
            prefix = path + "/"
            doomed = [p for p in self._files if p.startswith(prefix)]
            for p in doomed:
                del self._files[p]
            return len(doomed)
        raise FileNotFoundInHDFSError(path)

    def total_bytes(self) -> int:
        return sum(len(e.data) for e in self._files.values())
