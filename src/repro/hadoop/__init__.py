"""Mini Hadoop: an immutable-file namespace and a MapReduce runner.

Voldemort's read-only engine offloads index construction to "offline
systems like Hadoop" (§II.B): a MapReduce job partitions data by
destination node, sorts by MD5 of key within each partition, and writes
index + data files to HDFS, which Voldemort nodes then fetch in
parallel.  This package provides exactly the substrate that pipeline
needs — not a general cluster, but faithful semantics: write-once
files, directory listing, and a map/shuffle-sort/reduce execution model
where reducers see keys in sorted order.
"""

from repro.hadoop.hdfs import FileAlreadyExistsError, FileNotFoundInHDFSError, MiniHDFS
from repro.hadoop.mapreduce import MapReduceJob, run_job

__all__ = [
    "FileAlreadyExistsError",
    "FileNotFoundInHDFSError",
    "MiniHDFS",
    "MapReduceJob",
    "run_job",
]
