"""The central batch scheduler (§I.A).

"LinkedIn's production batch processing runs entirely on Hadoop.  It
uses a workflow containing both Pig and MapReduce jobs and run through
a central scheduler."  This module provides that scheduler: workflows
are DAGs of named jobs; the scheduler validates the DAG, runs jobs in
dependency order with bounded retries, halts dependents of a failed
job, and can run workflows on a recurring simulated-clock schedule
(the paper's "hourly, daily, or weekly").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError


class JobStatus(Enum):
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"      # a dependency failed


@dataclass(frozen=True)
class WorkflowJob:
    """One unit of batch work; ``run`` gets the shared context dict and
    may read results of its dependencies from it."""

    name: str
    run: Callable[[dict], object]
    depends_on: tuple[str, ...] = ()
    max_retries: int = 0


@dataclass
class JobRun:
    job: str
    status: JobStatus
    attempts: int = 0
    result: object = None
    error: str | None = None


@dataclass
class WorkflowRun:
    workflow: str
    started_at: float
    job_runs: dict[str, JobRun] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return all(r.status is JobStatus.SUCCEEDED
                   for r in self.job_runs.values())

    def status_of(self, job: str) -> JobStatus:
        return self.job_runs[job].status


class Workflow:
    """A validated DAG of jobs."""

    def __init__(self, name: str, jobs: list[WorkflowJob]):
        if not jobs:
            raise ConfigurationError("a workflow needs at least one job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"workflow {name}: duplicate job names")
        by_name = {job.name: job for job in jobs}
        for job in jobs:
            for dep in job.depends_on:
                if dep not in by_name:
                    raise ConfigurationError(
                        f"workflow {name}: {job.name} depends on unknown "
                        f"job {dep!r}")
        self.name = name
        self.jobs = by_name
        self.order = self._topological_order()

    def _topological_order(self) -> list[str]:
        in_degree = {name: len(job.depends_on)
                     for name, job in self.jobs.items()}
        dependents: dict[str, list[str]] = {name: [] for name in self.jobs}
        for name, job in self.jobs.items():
            for dep in job.depends_on:
                dependents[dep].append(name)
        ready = sorted(name for name, degree in in_degree.items()
                       if degree == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for dependent in sorted(dependents[name]):
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
            ready.sort()
        if len(order) != len(self.jobs):
            cyclic = sorted(set(self.jobs) - set(order))
            raise ConfigurationError(
                f"workflow {self.name}: dependency cycle through {cyclic}")
        return order


class WorkflowScheduler:
    """Runs workflows immediately or on a recurring schedule."""

    def __init__(self, clock: SimClock | None = None):
        self.clock = clock or SimClock()
        self.history: list[WorkflowRun] = []
        self._scheduled: dict[str, object] = {}

    # -- one-shot execution -----------------------------------------------------

    def run_workflow(self, workflow: Workflow,
                     context: dict | None = None) -> WorkflowRun:
        run = WorkflowRun(workflow.name, started_at=self.clock.now())
        context = context if context is not None else {}
        for name in workflow.order:
            job = workflow.jobs[name]
            failed_deps = [d for d in job.depends_on
                           if run.job_runs[d].status is not JobStatus.SUCCEEDED]
            if failed_deps:
                run.job_runs[name] = JobRun(
                    name, JobStatus.SKIPPED,
                    error=f"dependencies failed: {failed_deps}")
                continue
            run.job_runs[name] = self._run_job(job, context)
        self.history.append(run)
        return run

    @staticmethod
    def _run_job(job: WorkflowJob, context: dict) -> JobRun:
        record = JobRun(job.name, JobStatus.FAILED)
        for attempt in range(job.max_retries + 1):
            record.attempts = attempt + 1
            try:
                record.result = job.run(context)
                context[job.name] = record.result
                record.status = JobStatus.SUCCEEDED
                record.error = None
                return record
            except Exception as exc:  # jobs may fail arbitrarily
                record.error = f"{type(exc).__name__}: {exc}"
        return record

    # -- recurring schedules -----------------------------------------------------------

    def schedule(self, workflow: Workflow, every_seconds: float,
                 context_factory: Callable[[], dict] | None = None) -> None:
        """Run ``workflow`` every ``every_seconds`` of simulated time."""
        if every_seconds <= 0:
            raise ConfigurationError("schedule interval must be positive")
        if workflow.name in self._scheduled:
            raise ConfigurationError(
                f"workflow {workflow.name} is already scheduled")

        def fire():
            if workflow.name not in self._scheduled:
                return
            context = context_factory() if context_factory else {}
            self.run_workflow(workflow, context)
            self._scheduled[workflow.name] = self.clock.call_later(
                every_seconds, fire)

        self._scheduled[workflow.name] = self.clock.call_later(
            every_seconds, fire)

    def unschedule(self, workflow_name: str) -> None:
        event = self._scheduled.pop(workflow_name, None)
        if event is not None:
            SimClock.cancel(event)

    def runs_of(self, workflow_name: str) -> list[WorkflowRun]:
        return [run for run in self.history if run.workflow == workflow_name]
