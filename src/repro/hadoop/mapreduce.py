"""A faithful-in-shape MapReduce runner.

Execution model (what the Voldemort build phase depends on, §II.B):

* **map** — each input record produces zero or more (key, value) pairs;
* **partition** — a user partitioner routes each key to one of
  ``num_reducers`` reduce tasks (the build phase partitions by
  destination Voldemort node);
* **shuffle/sort** — within each reduce task, pairs are sorted by key
  ("we leverage Hadoop's ability to sort its values in the reducers");
* **reduce** — called once per key with the grouped values, in key
  order; emits output records;
* **output** — one ``part-NNNNN`` file per reduce task written to HDFS.

The runner is single-process but preserves task boundaries and
determinism, so outputs are byte-identical run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.common.errors import ConfigurationError, UnsupportedTypeError
from repro.hadoop.hdfs import MiniHDFS

Mapper = Callable[[object], Iterable[tuple[bytes, bytes]]]
Reducer = Callable[[bytes, list[bytes]], Iterable[bytes]]
Partitioner = Callable[[bytes, int], int]


def default_partitioner(key: bytes, num_reducers: int) -> int:
    """Hash partitioning, Hadoop's default."""
    import hashlib
    digest = hashlib.md5(key).digest()
    return int.from_bytes(digest[:4], "big") % num_reducers


@dataclass
class JobCounters:
    """Per-job counters, in the spirit of Hadoop's counter UI."""

    map_input_records: int = 0
    map_output_records: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0
    shuffled_bytes: int = 0


@dataclass
class MapReduceJob:
    """Job configuration; run with :func:`run_job`."""

    name: str
    mapper: Mapper
    reducer: Reducer
    num_reducers: int = 1
    partitioner: Partitioner = default_partitioner

    def __post_init__(self):
        if self.num_reducers <= 0:
            raise ConfigurationError("num_reducers must be positive")


def run_job(job: MapReduceJob, inputs: Iterable[object], hdfs: MiniHDFS,
            output_dir: str) -> JobCounters:
    """Execute ``job`` over ``inputs``, writing part files to ``output_dir``.

    Each part file is the concatenation of the reducer's emitted byte
    records for its partition, with records laid out exactly as emitted
    (the reducer owns framing — the Voldemort build reducer emits fixed
    width index entries and length-prefixed data records).
    """
    counters = JobCounters()

    # map phase
    shuffle: list[list[tuple[bytes, bytes]]] = [[] for _ in range(job.num_reducers)]
    for record in inputs:
        counters.map_input_records += 1
        for key, value in job.mapper(record):
            if not isinstance(key, bytes) or not isinstance(value, bytes):
                raise UnsupportedTypeError(
                    f"{job.name}: mapper must emit (bytes, bytes)")
            partition = job.partitioner(key, job.num_reducers)
            if not 0 <= partition < job.num_reducers:
                raise ConfigurationError(
                    f"{job.name}: partitioner returned {partition} "
                    f"for {job.num_reducers} reducers")
            shuffle[partition].append((key, value))
            counters.map_output_records += 1
            counters.shuffled_bytes += len(key) + len(value)

    # shuffle-sort + reduce phase, one task per partition
    for partition, pairs in enumerate(shuffle):
        pairs.sort(key=lambda kv: kv[0])
        out = bytearray()
        for key, values in _grouped(pairs):
            counters.reduce_input_groups += 1
            for record in job.reducer(key, values):
                if not isinstance(record, bytes):
                    raise UnsupportedTypeError(
                        f"{job.name}: reducer must emit bytes")
                out.extend(record)
                counters.reduce_output_records += 1
        hdfs.create(f"{output_dir}/part-{partition:05d}", bytes(out))
    return counters


def _grouped(sorted_pairs: list[tuple[bytes, bytes]]
             ) -> Iterator[tuple[bytes, list[bytes]]]:
    """Group adjacent pairs sharing a key (input must be sorted)."""
    current_key: bytes | None = None
    bucket: list[bytes] = []
    for key, value in sorted_pairs:
        if key != current_key:
            if current_key is not None:
                yield current_key, bucket
            current_key = key
            bucket = []
        bucket.append(value)
    if current_key is not None:
        yield current_key, bucket
