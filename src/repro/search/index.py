"""A ranked inverted index with per-field boosts.

Ranking is TF-IDF with field weighting — deliberately simple, but with
the structural hooks the paper's description needs: multi-term queries,
field boosts (a name hit outranks a headline hit), and a pluggable
*feature layer* so callers can fold in signals beyond the text (social
distance, activity) at query time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.espresso.index import tokenize


@dataclass(frozen=True)
class SearchHit:
    doc_id: object
    score: float
    text_score: float
    feature_score: float


FeatureScorer = Callable[[object], float]


class RankedInvertedIndex:
    """Documents are dicts of text fields; fields carry boosts."""

    def __init__(self, field_boosts: dict[str, float]):
        if not field_boosts:
            raise ConfigurationError("declare at least one field")
        if any(boost <= 0 for boost in field_boosts.values()):
            raise ConfigurationError("boosts must be positive")
        self.field_boosts = dict(field_boosts)
        # term -> doc_id -> weighted term frequency
        self._postings: dict[str, dict[object, float]] = {}
        self._doc_terms: dict[object, set[str]] = {}
        self._doc_lengths: dict[object, float] = {}

    def __len__(self) -> int:
        return len(self._doc_terms)

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._doc_terms

    def doc_ids(self) -> list[object]:
        """Indexed document ids, deterministically ordered — the
        membership view a consistency auditor compares against the
        source of truth."""
        return sorted(self._doc_terms, key=repr)

    # -- maintenance ----------------------------------------------------------

    def add(self, doc_id: object, document: dict) -> None:
        self.remove(doc_id)
        weighted_tf: dict[str, float] = {}
        for fieldname, boost in self.field_boosts.items():
            text = document.get(fieldname)
            if not text:
                continue
            for token in tokenize(str(text)):
                weighted_tf[token] = weighted_tf.get(token, 0.0) + boost
        if not weighted_tf:
            return
        for term, tf in weighted_tf.items():
            self._postings.setdefault(term, {})[doc_id] = tf
        self._doc_terms[doc_id] = set(weighted_tf)
        self._doc_lengths[doc_id] = math.sqrt(
            sum(tf * tf for tf in weighted_tf.values()))

    def remove(self, doc_id: object) -> None:
        for term in self._doc_terms.pop(doc_id, set()):
            bucket = self._postings.get(term)
            if bucket is not None:
                bucket.pop(doc_id, None)
                if not bucket:
                    del self._postings[term]
        self._doc_lengths.pop(doc_id, None)

    # -- queries ------------------------------------------------------------------

    def _idf(self, term: str) -> float:
        matching = len(self._postings.get(term, {}))
        if matching == 0:
            return 0.0
        return math.log(1.0 + len(self._doc_terms) / matching)

    def search(self, query: str, limit: int = 10,
               feature_scorer: FeatureScorer | None = None,
               feature_weight: float = 1.0) -> list[SearchHit]:
        """Rank documents matching ANY query term (OR semantics with
        TF-IDF scoring); ``feature_scorer`` folds per-document signals
        (social distance, activity) into the final score."""
        terms = tokenize(query)
        if not terms:
            return []
        accumulator: dict[object, float] = {}
        for term in terms:
            idf = self._idf(term)
            for doc_id, tf in self._postings.get(term, {}).items():
                accumulator[doc_id] = accumulator.get(doc_id, 0.0) + tf * idf
        hits = []
        for doc_id, raw in accumulator.items():
            text_score = raw / self._doc_lengths[doc_id]
            feature = (feature_scorer(doc_id)
                       if feature_scorer is not None else 0.0)
            hits.append(SearchHit(doc_id,
                                  text_score + feature_weight * feature,
                                  text_score, feature))
        hits.sort(key=lambda h: (-h.score, str(h.doc_id)))
        return hits[:limit]
