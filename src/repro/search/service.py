"""The people-search service: Databus-fed index + socially-ranked queries.

"It started off as the way to keep LinkedIn's social graph and search
index consistent and up-to-date with the changes happening in the
databases" (§III.E) — so this service is a Databus consumer of the
member-profile table.  Query ranking integrates the social feature the
paper highlights: results inside the viewer's network outrank
out-of-network matches with the same text score.
"""

from __future__ import annotations

from repro.common.serialization import decode_record
from repro.databus.client import DatabusClient, DatabusConsumer
from repro.databus.relay import Relay
from repro.search.index import RankedInvertedIndex, SearchHit
from repro.socialgraph import PartitionedSocialGraph
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.table import Column, TableSchema

MEMBER_TABLE = TableSchema(
    "member_profile",
    (Column("member_id", int), Column("name", str), Column("headline", str),
     Column("industry", str)),
    primary_key=("member_id",))

DEFAULT_BOOSTS = {"name": 3.0, "headline": 1.5, "industry": 1.0}

# social-distance feature values: closer is worth more
_DEGREE_FEATURE = {0: 0.0, 1: 1.0, 2: 0.5, 3: 0.25}


class PeopleSearchService(DatabusConsumer):
    """Maintains the index from CDC; serves socially-ranked queries."""

    def __init__(self, relay: Relay,
                 graph: PartitionedSocialGraph | None = None,
                 field_boosts: dict[str, float] | None = None,
                 checkpoint: int = 0):
        self.relay = relay
        self.graph = graph
        self.index = RankedInvertedIndex(field_boosts or DEFAULT_BOOSTS)
        self.client = DatabusClient(self, relay, checkpoint=checkpoint)
        self.documents_indexed = 0

    # -- Databus consumer ---------------------------------------------------

    def on_data_event(self, event) -> None:
        if event.source != MEMBER_TABLE.name:
            return
        member_id = event.key[0]
        if event.kind is ChangeKind.DELETE:
            self.index.remove(member_id)
            return
        schema = self.relay.schemas.get(event.source, event.schema_version)
        row = decode_record(schema, event.payload)
        self.index.add(member_id, row)
        self.documents_indexed += 1

    def catch_up(self) -> int:
        return self.client.run_to_head()

    # -- the query API --------------------------------------------------------------

    def search(self, query: str, viewer: int | None = None,
               limit: int = 10, social_weight: float = 0.3
               ) -> list[SearchHit]:
        """Ranked people search.

        With a ``viewer`` and a graph attached, in-network results get
        a social-distance boost — "integration of ... social features"
        (§I.A).
        """
        feature_scorer = None
        if viewer is not None and self.graph is not None:
            def feature_scorer(member_id):
                distance = self.graph.distance(viewer, member_id,
                                               max_degrees=3)
                if distance is None:
                    return 0.0
                return _DEGREE_FEATURE.get(distance, 0.0)
        return self.index.search(query, limit=limit,
                                 feature_scorer=feature_scorer,
                                 feature_weight=social_weight)
