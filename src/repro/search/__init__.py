"""People search (paper §I.A, Figure I.1).

"The search system powers people search, which is a core feature for
LinkedIn ... The queries to these systems are orders of magnitude more
complex than traditional systems since they involve ranking against
complex models as well as integration of activity data and social
features."  The index stays "consistent and up-to-date with the changes
happening in the databases" by subscribing to Databus (§III.E).
"""

from repro.search.index import RankedInvertedIndex, SearchHit
from repro.search.service import MEMBER_TABLE, PeopleSearchService

__all__ = [
    "RankedInvertedIndex",
    "SearchHit",
    "PeopleSearchService",
    "MEMBER_TABLE",
]
