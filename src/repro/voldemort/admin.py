"""The admin service: store management and online rebalancing (§II.B).

"Every node also runs an administrative service, which allows the
execution of privileged commands without downtime.  This includes the
ability to add / delete store and rebalance the cluster without
downtime.  Rebalancing (dynamic cluster membership) is done by changing
ownership of partitions to different nodes.  We maintain consistency
during rebalancing by redirecting requests of moving partitions to
their new destination."

Rebalancing here follows that recipe: plan the partition moves, and for
each move (1) mark the partition as redirecting, (2) copy its data to
the destination, (3) flip ring ownership.  Routers consult the redirect
table, so requests for a moving partition land on the destination from
the moment the move starts — no downtime, no stale reads after the
copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, ObsoleteVersionError
from repro.voldemort.cluster import StoreDefinition, VoldemortCluster


@dataclass(frozen=True)
class PartitionMove:
    partition: int
    from_node: int
    to_node: int


@dataclass
class RebalancePlan:
    moves: list[PartitionMove] = field(default_factory=list)

    def partitions_moved(self) -> int:
        return len(self.moves)


class AdminService:
    """Privileged cluster operations."""

    def __init__(self, cluster: VoldemortCluster):
        self.cluster = cluster
        # partition -> destination node while a move is in flight
        self.redirects: dict[int, int] = {}

    # -- store management -----------------------------------------------------

    def add_store(self, definition: StoreDefinition) -> None:
        self.cluster.define_store(definition)

    def delete_store(self, name: str) -> None:
        self.cluster.drop_store(name)

    # -- rebalancing ------------------------------------------------------------

    def plan_expansion(self, new_node_id: int, zone_id: int = 0
                       ) -> RebalancePlan:
        """Add an empty node and plan moves that even out partition counts.

        Takes partitions round-robin from the most-loaded donors until
        the newcomer holds roughly ``total / nodes`` partitions.
        """
        ring = self.cluster.ring.with_node_added(new_node_id, zone_id)
        self.cluster.ring = ring
        from repro.voldemort.server import VoldemortServer
        server = VoldemortServer(new_node_id, self.cluster)
        for definition in self.cluster.stores.values():
            server.open_store(definition)
        self.cluster.servers[new_node_id] = server

        target = ring.num_partitions // len(ring.nodes)
        plan = RebalancePlan()
        counts = ring.partition_counts()
        while counts[new_node_id] + len(plan.moves) < target:
            donor = max((n for n in counts if n != new_node_id),
                        key=lambda n: counts[n])
            if counts[donor] <= target:
                break
            donor_partitions = sorted(self.cluster.ring.nodes[donor].partitions)
            already = {m.partition for m in plan.moves}
            candidates = [p for p in donor_partitions if p not in already]
            if not candidates:
                break
            plan.moves.append(PartitionMove(candidates[0], donor, new_node_id))
            counts[donor] -= 1
        return plan

    def execute_rebalance(self, plan: RebalancePlan) -> int:
        """Run every move; returns the number of keys migrated."""
        migrated = 0
        for move in plan.moves:
            migrated += self._move_partition(move)
        return migrated

    def _move_partition(self, move: PartitionMove) -> int:
        current_owner = self.cluster.ring.node_for_partition(move.partition)
        if current_owner.node_id != move.from_node:
            raise ConfigurationError(
                f"partition {move.partition} is owned by {current_owner.node_id}, "
                f"not {move.from_node}")
        # 1. start redirecting new requests for this partition
        self.redirects[move.partition] = move.to_node
        donor = self.cluster.server_for(move.from_node)
        receiver = self.cluster.server_for(move.to_node)
        moved = 0
        # 2. copy partition data store by store
        for store_name in self.cluster.stores:
            donor_engine = donor.engine(store_name)
            receiver_engine = receiver.engine(store_name)
            if not donor_engine.writable:
                continue  # read-only stores re-fetch from HDFS instead
            for key in list(donor_engine.keys()):
                if self.cluster.ring.partition_for_key(key) != move.partition:
                    continue
                for versioned in donor_engine.get(key):
                    try:
                        receiver_engine.put(key, versioned)
                    except ObsoleteVersionError:
                        pass
                moved += 1
        # 3. flip ownership and stop redirecting
        self.cluster.ring = self.cluster.ring.with_partition_moved(
            move.partition, move.to_node)
        del self.redirects[move.partition]
        return moved

    def effective_owner(self, partition: int) -> int:
        """Owner respecting in-flight redirects (what routers consult)."""
        if partition in self.redirects:
            return self.redirects[partition]
        return self.cluster.ring.node_for_partition(partition).node_id
