"""Server-side transforms (§II.B, client API methods 3 and 4).

"If the value is a list, we can run a transformed get to retrieve a
sub-list or a transformed put to append an entity to a list, thereby
saving a client round trip and network bandwidth."

Transforms are named server-side functions over the stored bytes.  The
built-ins operate on JSON-encoded lists — the shape of the Company
Follow stores (member id -> list of company ids).  Applications can
register their own.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.common.errors import ConfigurationError

TransformFn = Callable[..., bytes]


class TransformRegistry:
    """Named transform functions available on every server."""

    def __init__(self):
        self._transforms: dict[str, TransformFn] = {}

    def register(self, name: str, fn: TransformFn) -> None:
        if name in self._transforms:
            raise ConfigurationError(f"transform {name!r} already registered")
        self._transforms[name] = fn

    def get_transform(self, name: str) -> TransformFn:
        try:
            return self._transforms[name]
        except KeyError:
            raise ConfigurationError(f"unknown transform {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._transforms)


def _load_list(value: bytes | None) -> list:
    if value is None or value == b"":
        return []
    loaded = json.loads(value.decode("utf-8"))
    if not isinstance(loaded, list):
        raise ConfigurationError("list transforms require a JSON list value")
    return loaded


def list_append(value: bytes | None, *items) -> bytes:
    """Put-transform: append items to the stored JSON list."""
    data = _load_list(value)
    data.extend(items)
    return json.dumps(data).encode("utf-8")


def list_slice(value: bytes | None, start: int = 0,
               stop: int | None = None) -> bytes:
    """Get-transform: return a sub-list without shipping the whole value."""
    data = _load_list(value)
    return json.dumps(data[start:stop]).encode("utf-8")


def list_remove(value: bytes | None, *items) -> bytes:
    """Put-transform: remove every occurrence of the given items."""
    doomed = set(items)
    data = [x for x in _load_list(value) if x not in doomed]
    return json.dumps(data).encode("utf-8")


def counter_add(value: bytes | None, delta: int = 1) -> bytes:
    """Put-transform: integer counter increment."""
    current = int(value) if value else 0
    return str(current + delta).encode("utf-8")


TRANSFORM_REGISTRY = TransformRegistry()
TRANSFORM_REGISTRY.register("list_append", list_append)
TRANSFORM_REGISTRY.register("list_slice", list_slice)
TRANSFORM_REGISTRY.register("list_remove", list_remove)
TRANSFORM_REGISTRY.register("counter_add", counter_add)
