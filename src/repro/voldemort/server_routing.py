"""Server-side routing (Figure II.1).

"Voldemort supports both server and client side routing by moving the
routing and associated modules."  With client-side routing the client
holds the topology and talks straight to replicas; with server-side
routing the client sends each request to *any* node, which coordinates
the quorum on its behalf — one extra network hop in exchange for thin
clients that need no topology metadata.

Both flavours reuse the exact same :class:`RoutedStore` module, which
is the pluggability point the paper highlights.  The thin client also
reuses the shared resilience layer: when its coordinator hop fails it
rotates to the next live node and retries under the configured policy.
"""

from __future__ import annotations

import itertools
import random

from repro.common.errors import (
    InsufficientOperationalNodesError,
    NodeUnavailableError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.resilience import Deadline, RetryPolicy, call_with_retries
from repro.voldemort.cluster import VoldemortCluster
from repro.voldemort.routing import RoutedStore
from repro.voldemort.versioned import Versioned


class ServerSideRoutedStore:
    """Thin client: forwards operations to a coordinator node.

    The coordinator is chosen round-robin over live nodes (a load
    balancer stand-in); it runs the shared routing module server-side,
    so its quorum traffic is node-to-node.  A failed forward retries on
    the next coordinator in rotation, so a crashed coordinator costs
    one backoff, not a failed request.
    """

    def __init__(self, cluster: VoldemortCluster, store: str,
                 client_name: str = "thin-client",
                 retry_policy: RetryPolicy | None = None,
                 retry_seed: int = 0):
        self.cluster = cluster
        self.store = store
        self.client_name = client_name
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self.metrics = MetricsRegistry()
        # each node runs its own instance of the routing module
        self._coordinators: dict[int, RoutedStore] = {
            node_id: RoutedStore(cluster, store,
                                 client_name=cluster.node_name(node_id))
            for node_id in cluster.ring.nodes
        }
        self._rotation = itertools.cycle(sorted(self._coordinators))

    def _pick_coordinator(self) -> int:
        for _ in range(len(self._coordinators)):
            node_id = next(self._rotation)
            name = self.cluster.node_name(node_id)
            if self.cluster.network.failures.reachable(self.client_name, name):
                return node_id
        raise NodeUnavailableError("no reachable coordinator")

    def _forward(self, name: str, attempt_once,
                 deadline: Deadline | None = None):
        """Run one forwarded operation under the shared retry engine.

        Each attempt picks a fresh coordinator, so retries naturally
        fail over to another node.  Coordinator-side quorum shortfalls
        are retried too — a different coordinator may sit on the right
        side of a partition.
        """
        return call_with_retries(
            attempt_once, clock=self.cluster.clock,
            policy=self.retry_policy, rng=self._retry_rng,
            retry_on=(NodeUnavailableError, InsufficientOperationalNodesError),
            deadline=deadline, metrics=self.metrics, name=name)

    def _hop_timeout(self, deadline: Deadline | None) -> float | None:
        if deadline is None:
            return None
        return deadline.clamp(self.cluster.network.default_timeout)

    def get(self, key: bytes,
            deadline: Deadline | None = None) -> tuple[list[Versioned], float]:
        """Forwarded quorum read; latency includes the client hop."""
        def attempt():
            node_id = self._pick_coordinator()
            coordinator = self._coordinators[node_id]
            (frontier, internal_latency), hop_latency = \
                self.cluster.network.invoke(
                    self.client_name, self.cluster.node_name(node_id),
                    coordinator.get, key, timeout=self._hop_timeout(deadline))
            return frontier, hop_latency + internal_latency
        frontier, total = self._forward("get", attempt, deadline)
        self.metrics.histogram("get").record(total)
        return frontier, total

    def put(self, key: bytes, versioned: Versioned,
            deadline: Deadline | None = None) -> float:
        def attempt():
            node_id = self._pick_coordinator()
            coordinator = self._coordinators[node_id]
            internal_latency, hop_latency = self.cluster.network.invoke(
                self.client_name, self.cluster.node_name(node_id),
                coordinator.put, key, versioned,
                timeout=self._hop_timeout(deadline))
            return hop_latency + internal_latency
        total = self._forward("put", attempt, deadline)
        self.metrics.histogram("put").record(total)
        return total

    def delete(self, key: bytes, versioned: Versioned,
               deadline: Deadline | None = None) -> float:
        def attempt():
            node_id = self._pick_coordinator()
            coordinator = self._coordinators[node_id]
            internal_latency, hop_latency = self.cluster.network.invoke(
                self.client_name, self.cluster.node_name(node_id),
                coordinator.delete, key, versioned,
                timeout=self._hop_timeout(deadline))
            return hop_latency + internal_latency
        total = self._forward("delete", attempt, deadline)
        self.metrics.histogram("delete").record(total)
        return total
