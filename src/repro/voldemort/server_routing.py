"""Server-side routing (Figure II.1).

"Voldemort supports both server and client side routing by moving the
routing and associated modules."  With client-side routing the client
holds the topology and talks straight to replicas; with server-side
routing the client sends each request to *any* node, which coordinates
the quorum on its behalf — one extra network hop in exchange for thin
clients that need no topology metadata.

Both flavours reuse the exact same :class:`RoutedStore` module, which
is the pluggability point the paper highlights.
"""

from __future__ import annotations

import itertools

from repro.common.errors import NodeUnavailableError
from repro.common.metrics import MetricsRegistry
from repro.voldemort.cluster import VoldemortCluster
from repro.voldemort.routing import RoutedStore
from repro.voldemort.versioned import Versioned


class ServerSideRoutedStore:
    """Thin client: forwards operations to a coordinator node.

    The coordinator is chosen round-robin over live nodes (a load
    balancer stand-in); it runs the shared routing module server-side,
    so its quorum traffic is node-to-node.
    """

    def __init__(self, cluster: VoldemortCluster, store: str,
                 client_name: str = "thin-client"):
        self.cluster = cluster
        self.store = store
        self.client_name = client_name
        self.metrics = MetricsRegistry()
        # each node runs its own instance of the routing module
        self._coordinators: dict[int, RoutedStore] = {
            node_id: RoutedStore(cluster, store,
                                 client_name=cluster.node_name(node_id))
            for node_id in cluster.ring.nodes
        }
        self._rotation = itertools.cycle(sorted(self._coordinators))

    def _pick_coordinator(self) -> int:
        for _ in range(len(self._coordinators)):
            node_id = next(self._rotation)
            name = self.cluster.node_name(node_id)
            if self.cluster.network.failures.reachable(self.client_name, name):
                return node_id
        raise NodeUnavailableError("no reachable coordinator")

    def get(self, key: bytes) -> tuple[list[Versioned], float]:
        """Forwarded quorum read; latency includes the client hop."""
        node_id = self._pick_coordinator()
        coordinator = self._coordinators[node_id]
        (frontier, internal_latency), hop_latency = self.cluster.network.invoke(
            self.client_name, self.cluster.node_name(node_id),
            coordinator.get, key)
        total = hop_latency + internal_latency
        self.metrics.histogram("get").record(total)
        return frontier, total

    def put(self, key: bytes, versioned: Versioned) -> float:
        node_id = self._pick_coordinator()
        coordinator = self._coordinators[node_id]
        internal_latency, hop_latency = self.cluster.network.invoke(
            self.client_name, self.cluster.node_name(node_id),
            coordinator.put, key, versioned)
        total = hop_latency + internal_latency
        self.metrics.histogram("put").record(total)
        return total

    def delete(self, key: bytes, versioned: Versioned) -> float:
        node_id = self._pick_coordinator()
        coordinator = self._coordinators[node_id]
        internal_latency, hop_latency = self.cluster.network.invoke(
            self.client_name, self.cluster.node_name(node_id),
            coordinator.delete, key, versioned)
        total = hop_latency + internal_latency
        self.metrics.histogram("delete").record(total)
        return total
