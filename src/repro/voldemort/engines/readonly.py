"""The custom read-only storage engine (§II.B "Storage Engine").

Layout per the paper: each data deployment creates a new *versioned
directory* under the store directory containing a compact **index
file** — "a compact list of sorted MD5 of key and offset to data into
the data file" — and a **data file**.  Lookups binary-search the index
(which is memory-mapped, delegating caching to the OS page cache) and
then read the record from the data file.  Keeping multiple complete
versions on disk makes rollback instantaneous: swap back to the
previous directory.

File formats (little-endian):

    index:  [md5(key) : 16B][data_offset : 8B]  * n, sorted by md5
    data:   [key_len : 4B][key][value_len : 4B][value]  * n
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
from typing import Iterable, Iterator

from repro.common.errors import ConfigurationError, KeyNotFoundError
from repro.common.vectorclock import VectorClock
from repro.voldemort.engines.base import StorageEngine
from repro.voldemort.versioned import Versioned

INDEX_ENTRY = struct.Struct("<16sQ")
_U32 = struct.Struct("<I")

INDEX_FILE = "0.index"
DATA_FILE = "0.data"


def build_store_files(pairs: Iterable[tuple[bytes, bytes]]) -> tuple[bytes, bytes]:
    """Serialize (key, value) pairs into (index_bytes, data_bytes).

    Entries are sorted by MD5 of key — the sort the paper offloads to
    Hadoop's shuffle.  This helper is shared by the MapReduce build job
    and by tests that construct store files directly.
    """
    hashed = sorted((hashlib.md5(key).digest(), key, value)
                    for key, value in pairs)
    index = bytearray()
    data = bytearray()
    seen: set[bytes] = set()
    for digest, key, value in hashed:
        if key in seen:
            raise ConfigurationError(f"duplicate key in read-only build: {key!r}")
        seen.add(key)
        index.extend(INDEX_ENTRY.pack(digest, len(data)))
        data.extend(_U32.pack(len(key)))
        data.extend(key)
        data.extend(_U32.pack(len(value)))
        data.extend(value)
    return bytes(index), bytes(data)


def write_version_dir(store_dir: str, version: int, index: bytes,
                      data: bytes) -> str:
    """Materialize one versioned directory; returns its path."""
    version_dir = os.path.join(store_dir, f"version-{version}")
    os.makedirs(version_dir, exist_ok=True)
    with open(os.path.join(version_dir, INDEX_FILE), "wb") as f:
        f.write(index)
    with open(os.path.join(version_dir, DATA_FILE), "wb") as f:
        f.write(data)
    return version_dir


class ReadOnlyStorageEngine(StorageEngine):
    """Binary-search reads over the currently-swapped version directory."""

    name = "read-only"
    writable = False

    def __init__(self, store_dir: str):
        self.store_dir = store_dir
        os.makedirs(store_dir, exist_ok=True)
        self._index_mmap: mmap.mmap | None = None
        self._index_file = None
        self._data_file = None
        self.current_version: int | None = None
        latest = self.versions_on_disk()
        if latest:
            self.swap(latest[-1])

    # -- version management -------------------------------------------------

    def versions_on_disk(self) -> list[int]:
        versions = []
        for name in os.listdir(self.store_dir):
            if name.startswith("version-"):
                try:
                    versions.append(int(name.split("-", 1)[1]))
                except ValueError:
                    continue
        return sorted(versions)

    def _version_dir(self, version: int) -> str:
        return os.path.join(self.store_dir, f"version-{version}")

    def swap(self, version: int) -> None:
        """Atomically switch serving to ``version``: close the current
        index and memory-map the new one (§II.B swap phase)."""
        version_dir = self._version_dir(version)
        index_path = os.path.join(version_dir, INDEX_FILE)
        data_path = os.path.join(version_dir, DATA_FILE)
        if not (os.path.exists(index_path) and os.path.exists(data_path)):
            raise ConfigurationError(f"incomplete version directory {version_dir}")
        self._close_files()
        self._index_file = open(index_path, "rb")
        index_size = os.path.getsize(index_path)
        if index_size:
            self._index_mmap = mmap.mmap(self._index_file.fileno(), 0,
                                         access=mmap.ACCESS_READ)
        else:
            self._index_mmap = None
        self._data_file = open(data_path, "rb")
        self.current_version = version

    def rollback(self) -> int:
        """Swap back to the newest version older than the current one."""
        if self.current_version is None:
            raise ConfigurationError("nothing is being served")
        older = [v for v in self.versions_on_disk() if v < self.current_version]
        if not older:
            raise ConfigurationError("no older version to roll back to")
        self.swap(older[-1])
        return older[-1]

    def delete_version(self, version: int) -> None:
        if version == self.current_version:
            raise ConfigurationError("cannot delete the serving version")
        version_dir = self._version_dir(version)
        for name in (INDEX_FILE, DATA_FILE):
            path = os.path.join(version_dir, name)
            if os.path.exists(path):
                os.remove(path)
        os.rmdir(version_dir)

    def _close_files(self) -> None:
        if self._index_mmap is not None:
            self._index_mmap.close()
            self._index_mmap = None
        for handle in (self._index_file, self._data_file):
            if handle is not None and not handle.closed:
                handle.close()
        self._index_file = None
        self._data_file = None

    def close(self) -> None:
        self._close_files()

    # -- reads ------------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        if self._index_mmap is None:
            return 0
        return len(self._index_mmap) // INDEX_ENTRY.size

    def get(self, key: bytes) -> list[Versioned]:
        if self.current_version is None:
            raise KeyNotFoundError("no version swapped in")
        digest = hashlib.md5(key).digest()
        position = self._search(digest)
        if position is None:
            raise KeyNotFoundError(repr(key))
        # scan forward over equal digests (md5 collisions are verified
        # against the stored key)
        count = self.entry_count
        while position < count:
            entry_digest, offset = INDEX_ENTRY.unpack_from(
                self._index_mmap, position * INDEX_ENTRY.size)
            if entry_digest != digest:
                break
            stored_key, value = self._read_record(offset)
            if stored_key == key:
                return [Versioned(value, VectorClock({0: 1}))]
            position += 1
        raise KeyNotFoundError(repr(key))

    def _search(self, digest: bytes) -> int | None:
        """Index of the first entry with md5 >= digest, if it matches."""
        if self._index_mmap is None:
            return None
        lo, hi = 0, self.entry_count
        while lo < hi:
            mid = (lo + hi) // 2
            entry_digest = self._index_mmap[mid * INDEX_ENTRY.size:
                                            mid * INDEX_ENTRY.size + 16]
            if entry_digest < digest:
                lo = mid + 1
            else:
                hi = mid
        if lo >= self.entry_count:
            return None
        first = self._index_mmap[lo * INDEX_ENTRY.size:
                                 lo * INDEX_ENTRY.size + 16]
        return lo if first == digest else None

    def _read_record(self, offset: int) -> tuple[bytes, bytes]:
        self._data_file.seek(offset)
        (key_len,) = _U32.unpack(self._data_file.read(4))
        key = self._data_file.read(key_len)
        (value_len,) = _U32.unpack(self._data_file.read(4))
        value = self._data_file.read(value_len)
        return key, value

    def keys(self) -> Iterator[bytes]:
        for position in range(self.entry_count):
            _, offset = INDEX_ENTRY.unpack_from(self._index_mmap,
                                                position * INDEX_ENTRY.size)
            key, _ = self._read_record(offset)
            yield key

    def put(self, key: bytes, versioned: Versioned) -> None:
        raise ConfigurationError("read-only store: use the build/pull/swap cycle")
