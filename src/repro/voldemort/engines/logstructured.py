"""Log-structured on-disk engine — the BerkeleyDB JE stand-in.

The paper uses BDB-JE (itself a log-structured B-tree) for read-write
traffic (§II.B).  We reproduce the properties that matter to Voldemort:
durable writes via an append-only log, fast point reads via an
in-memory key index, crash recovery by log replay, CRC detection of
torn writes, and compaction that drops superseded versions.

On-disk record format (little-endian):

    [crc32 : 4B][body_len : 4B][body]
    body = [key_len : 4B][key]
           [clock_count : 2B][(node_id : 8B, counter : 8B) * count]
           [flags : 1B]                # bit 0: tombstone
           [value_len : 4B][value]

The in-memory index maps key -> list of (clock, offset, length,
tombstone) so the multi-version merge never touches disk; only value
reads do.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator

from repro.common.errors import ChecksumError, KeyNotFoundError
from repro.common.vectorclock import VectorClock
from repro.simnet.disk import Disk, LocalDisk
from repro.voldemort.engines.base import StorageEngine
from repro.voldemort.versioned import Versioned

_HEADER = struct.Struct("<II")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_CLOCK_ENTRY = struct.Struct("<QQ")
_FLAG_TOMBSTONE = 0x01


def _encode_clock(clock: VectorClock) -> bytes:
    entries = clock.entries
    out = bytearray(_U16.pack(len(entries)))
    for node, counter in sorted(entries.items()):
        out.extend(_CLOCK_ENTRY.pack(node, counter))
    return bytes(out)


def _decode_clock(data: bytes, offset: int) -> tuple[VectorClock, int]:
    (count,) = _U16.unpack_from(data, offset)
    offset += _U16.size
    entries = {}
    for _ in range(count):
        node, counter = _CLOCK_ENTRY.unpack_from(data, offset)
        offset += _CLOCK_ENTRY.size
        entries[node] = counter
    return VectorClock(entries), offset


def _encode_record(key: bytes, versioned: Versioned) -> bytes:
    value = versioned.value if versioned.value is not None else b""
    flags = _FLAG_TOMBSTONE if versioned.is_tombstone else 0
    body = bytearray()
    body.extend(_U32.pack(len(key)))
    body.extend(key)
    body.extend(_encode_clock(versioned.clock))
    body.append(flags)
    body.extend(_U32.pack(len(value)))
    body.extend(value)
    return _HEADER.pack(zlib.crc32(bytes(body)), len(body)) + bytes(body)


def _decode_body(body: bytes) -> tuple[bytes, Versioned]:
    (key_len,) = _U32.unpack_from(body, 0)
    offset = _U32.size
    key = body[offset:offset + key_len]
    offset += key_len
    clock, offset = _decode_clock(body, offset)
    flags = body[offset]
    offset += 1
    (value_len,) = _U32.unpack_from(body, offset)
    offset += _U32.size
    value = body[offset:offset + value_len]
    if flags & _FLAG_TOMBSTONE:
        return key, Versioned(None, clock)
    return key, Versioned(bytes(value), clock)


class _IndexEntry:
    __slots__ = ("clock", "offset", "length", "tombstone")

    def __init__(self, clock: VectorClock, offset: int, length: int,
                 tombstone: bool):
        self.clock = clock
        self.offset = offset
        self.length = length
        self.tombstone = tombstone


class LogStructuredEngine(StorageEngine):
    """Append-only log + in-memory index, with recovery and compaction."""

    name = "log-structured"
    LOG_NAME = "data.log"

    def __init__(self, directory: str, sync_every_write: bool = False,
                 disk: Disk | None = None):
        self.directory = directory
        self.disk = disk if disk is not None else LocalDisk()
        self.disk.makedirs(directory)
        self._path = os.path.join(directory, self.LOG_NAME)
        self._index: dict[bytes, list[_IndexEntry]] = {}
        self._log = self.disk.open(self._path, "ab+")
        self._sync = sync_every_write
        self.live_bytes = 0
        self.torn_bytes_truncated = 0
        self._recover()

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the index by replaying the log; truncate a torn tail."""
        self._log.seek(0)
        good_end = 0
        while True:
            header = self._log.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            crc, body_len = _HEADER.unpack(header)
            body = self._log.read(body_len)
            if len(body) < body_len or zlib.crc32(body) != crc:
                break  # torn write at crash; discard the tail
            key, versioned = _decode_body(body)
            self._index_put(key, versioned, good_end, _HEADER.size + body_len)
            good_end += _HEADER.size + body_len
        self._log.seek(0, os.SEEK_END)
        tail = self._log.tell() - good_end
        if tail > 0:
            self.torn_bytes_truncated += tail
            self._log.truncate(good_end)
            self._log.fsync()  # the torn tail must not outlive a re-crash
        self._log.seek(0, os.SEEK_END)

    def _index_put(self, key: bytes, versioned: Versioned, offset: int,
                   length: int) -> None:
        """Index update during recovery: apply merge rules, but a stale
        replayed record is skipped rather than raising (the log already
        accepted it once)."""
        existing = self._index.get(key, [])
        for entry in existing:
            if entry.clock.descends_from(versioned.clock):
                return  # record superseded later in the log
        survivors = [e for e in existing
                     if e.clock.concurrent_with(versioned.clock)]
        survivors.append(_IndexEntry(versioned.clock, offset, length,
                                     versioned.is_tombstone))
        self._index[key] = survivors
        self.live_bytes += length

    # -- StorageEngine interface ------------------------------------------

    def get(self, key: bytes) -> list[Versioned]:
        entries = [e for e in self._index.get(key, []) if not e.tombstone]
        if not entries:
            raise KeyNotFoundError(repr(key))
        out = []
        for entry in entries:
            out.append(Versioned(self._read_value(key, entry), entry.clock))
        return out

    def _read_value(self, key: bytes, entry: _IndexEntry) -> bytes:
        self._log.seek(entry.offset)
        raw = self._log.read(entry.length)
        crc, body_len = _HEADER.unpack_from(raw, 0)
        body = raw[_HEADER.size:_HEADER.size + body_len]
        if zlib.crc32(body) != crc:
            raise ChecksumError(f"corrupt record for key {key!r}")
        stored_key, versioned = _decode_body(body)
        if stored_key != key:
            raise ChecksumError(f"index pointed {key!r} at record for {stored_key!r}")
        return versioned.value or b""

    def put(self, key: bytes, versioned: Versioned) -> None:
        # enforce the version contract against the in-memory clocks first
        existing_versions = [Versioned(None, e.clock)
                             for e in self._index.get(key, [])]
        self.merge_version(existing_versions, versioned)  # raises if obsolete
        record = _encode_record(key, versioned)
        self._log.seek(0, os.SEEK_END)
        offset = self._log.tell()
        self._log.write(record)
        if self._sync:
            # ack ⇒ fsync ⇒ recoverable (DESIGN.md §9)
            self._log.fsync()
        else:
            self._log.flush()
        entry = _IndexEntry(versioned.clock, offset, len(record),
                            versioned.is_tombstone)
        survivors = [e for e in self._index.get(key, [])
                     if e.clock.concurrent_with(versioned.clock)]
        survivors.append(entry)
        self._index[key] = survivors
        self.live_bytes += len(record)

    def record_span(self, key: bytes) -> tuple[int, int]:
        """(offset, length) of the newest live on-disk record for
        ``key`` — the targeting information a fault injector needs to
        corrupt one specific key's bytes (the CRC on the read path is
        what must catch the damage)."""
        entries = self._index.get(key)
        if not entries:
            raise KeyNotFoundError(repr(key))
        entry = entries[-1]
        return entry.offset, entry.length

    def keys(self) -> Iterator[bytes]:
        for key, entries in self._index.items():
            if any(not e.tombstone for e in entries):
                yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- maintenance ---------------------------------------------------------

    def log_size_bytes(self) -> int:
        self._log.seek(0, os.SEEK_END)
        return self._log.tell()

    def compact(self) -> int:
        """Rewrite only live versions; returns bytes reclaimed.

        A put may interleave with the fsync below; the compacted file
        would then be missing its record while the swap discards the
        index entry that points at it.  Snapshot the index up front and
        abort the swap if the live index moved while we were on disk —
        the next compaction picks the garbage up.
        """
        before = self.log_size_bytes()
        compact_path = self._path + ".compact"
        frozen = {key: tuple(entries) for key, entries in self._index.items()}
        new_index: dict[bytes, list[_IndexEntry]] = {}
        with self.disk.open(compact_path, "wb") as out:
            offset = 0
            for key, entries in frozen.items():
                fresh: list[_IndexEntry] = []
                for entry in entries:
                    if entry.tombstone:
                        continue  # compaction drops tombstones
                    value = self._read_value(key, entry)
                    record = _encode_record(key, Versioned(value, entry.clock))
                    out.write(record)
                    fresh.append(_IndexEntry(entry.clock, offset,
                                             len(record), False))
                    offset += len(record)
                if fresh:
                    new_index[key] = fresh
            out.fsync()
        if {k: tuple(v) for k, v in self._index.items()} != frozen:
            self.disk.remove(compact_path)
            return 0
        self._log.close()
        self.disk.replace(compact_path, self._path)
        self._log = self.disk.open(self._path, "ab+")
        self._index = new_index
        return before - self.log_size_bytes()

    def close(self) -> None:
        if not self._log.closed:
            self._log.flush()
            self._log.close()
