"""Dict-backed storage engine for tests, mocks, and cache-like stores."""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import KeyNotFoundError
from repro.voldemort.engines.base import StorageEngine
from repro.voldemort.versioned import Versioned


class InMemoryStorageEngine(StorageEngine):
    """The simplest engine honouring the multi-version contract."""

    name = "memory"

    def __init__(self):
        self._data: dict[bytes, list[Versioned]] = {}

    def get(self, key: bytes) -> list[Versioned]:
        versions = [v for v in self._data.get(key, []) if not v.is_tombstone]
        if not versions:
            raise KeyNotFoundError(repr(key))
        return list(versions)

    def get_including_tombstones(self, key: bytes) -> list[Versioned]:
        """All stored versions, tombstones included (repair needs these)."""
        versions = self._data.get(key)
        if not versions:
            raise KeyNotFoundError(repr(key))
        return list(versions)

    def put(self, key: bytes, versioned: Versioned) -> None:
        existing = self._data.get(key, [])
        self._data[key] = self.merge_version(existing, versioned)

    def keys(self) -> Iterator[bytes]:
        for key, versions in self._data.items():
            if any(not v.is_tombstone for v in versions):
                yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def truncate(self) -> None:
        self._data.clear()
