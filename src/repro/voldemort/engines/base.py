"""The storage-engine interface every engine implements."""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import ObsoleteVersionError
from repro.common.vectorclock import Occurred
from repro.voldemort.versioned import Versioned


class StorageEngine:
    """Key -> list-of-concurrent-versions storage.

    The multi-version contract (shared by all engines):

    * ``get`` returns every version not dominated by another — the
      concurrent frontier;
    * ``put`` fails with :class:`ObsoleteVersionError` when an existing
      version dominates or equals the written clock (the optimistic-
      locking signal of §II.B);
    * a successful ``put`` removes versions the new one dominates and
      keeps genuinely concurrent siblings.
    """

    name = "abstract"
    writable = True

    def get(self, key: bytes) -> list[Versioned]:
        raise NotImplementedError

    def put(self, key: bytes, versioned: Versioned) -> None:
        raise NotImplementedError

    def delete(self, key: bytes, versioned: Versioned) -> None:
        """Write a tombstone version (deletes are writes with None)."""
        self.put(key, Versioned(None, versioned.clock))

    def keys(self) -> Iterator[bytes]:
        raise NotImplementedError

    def entries(self) -> Iterator[tuple[bytes, Versioned]]:
        for key in self.keys():
            for versioned in self.get(key):
                yield key, versioned

    def close(self) -> None:
        """Release resources; default is a no-op."""

    # -- shared version-merge logic ------------------------------------------

    @staticmethod
    def merge_version(existing: list[Versioned],
                      incoming: Versioned) -> list[Versioned]:
        """Apply the multi-version write contract; returns the new list."""
        survivors: list[Versioned] = []
        for versioned in existing:
            relation = incoming.clock.compare(versioned.clock)
            if relation in (Occurred.BEFORE, Occurred.EQUAL):
                raise ObsoleteVersionError(
                    "a stored version dominates or equals the write")
            if relation is Occurred.CONCURRENT:
                survivors.append(versioned)
            # AFTER: incoming supersedes it; drop
        survivors.append(incoming)
        return survivors
