"""Pluggable storage engines.

"Every module in the architecture implements the same code interface
thereby making it easy to (a) interchange modules ... and (b) test code
easily by mocking modules" (§II.B).  :class:`StorageEngine` is that
interface; three implementations ship:

* :class:`InMemoryStorageEngine` — dict-backed, for tests and caches;
* :class:`LogStructuredEngine` — the BDB-JE stand-in for read-write
  traffic: an append-only on-disk log with an in-memory key index,
  CRC-checked records, and compaction;
* :class:`ReadOnlyStorageEngine` — the custom bulk-load engine: MD5-
  sorted index + data files in versioned directories, binary search,
  instant swap and rollback.
"""

from repro.voldemort.engines.base import StorageEngine
from repro.voldemort.engines.memory import InMemoryStorageEngine
from repro.voldemort.engines.logstructured import LogStructuredEngine
from repro.voldemort.engines.readonly import (
    ReadOnlyStorageEngine,
    build_store_files,
)

__all__ = [
    "StorageEngine",
    "InMemoryStorageEngine",
    "LogStructuredEngine",
    "ReadOnlyStorageEngine",
    "build_store_files",
]
