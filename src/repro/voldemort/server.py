"""The storage-node server: local store operations plus hint storage.

A server owns one engine per store and exposes the node-local
operations the routing layer calls over the (simulated) network.  It
also holds *hints* — writes accepted on behalf of an unreachable
replica during hinted handoff (§II.B "Repair mechanism") — and can
replay them once the destination recovers.

When the cluster runs on a :class:`~repro.simnet.disk.SimDisk`, hints
are persisted through a :class:`~repro.common.wal.WriteAheadLog` (the
"slop store"): every accepted hint is fsynced before the routing layer
counts the write as successful, and every delivery appends a fsynced
tombstone marker, so a killed node restarts with exactly its
outstanding hints — acked vector clocks intact, delivered hints gone.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.common.errors import (
    ConfigurationError,
    KeyNotFoundError,
    NodeUnavailableError,
)
from repro.common.wal import WriteAheadLog
from repro.voldemort.engines.base import StorageEngine
from repro.voldemort.engines.logstructured import _decode_body, _encode_record
from repro.voldemort.transforms import TRANSFORM_REGISTRY
from repro.voldemort.versioned import Versioned

_HINT_STORED = 0x00
_HINT_DELIVERED = 0x01
_HINT_HEADER = struct.Struct("<QqI")  # seq, destination node, store-name len
_HINT_SEQ = struct.Struct("<Q")


@dataclass(frozen=True)
class Hint:
    """A write held for an unreachable replica."""

    store: str
    key: bytes
    versioned: Versioned
    destination_node: int


def _encode_hint(seq: int, hint: Hint) -> bytes:
    store = hint.store.encode()
    return (bytes([_HINT_STORED])
            + _HINT_HEADER.pack(seq, hint.destination_node, len(store))
            + store + _encode_record(hint.key, hint.versioned))


def _decode_hint(payload: bytes) -> tuple[int, Hint]:
    seq, destination, store_len = _HINT_HEADER.unpack_from(payload, 1)
    offset = 1 + _HINT_HEADER.size
    store = payload[offset:offset + store_len].decode()
    offset += store_len
    # the hint record reuses the engine's CRC-framed record format;
    # skip its [crc][len] header to reach the body
    body = payload[offset + 8:]
    key, versioned = _decode_body(body)
    return seq, Hint(store, key, versioned, destination)


class VoldemortServer:
    """One node's server process."""

    def __init__(self, node_id: int, cluster):
        self.node_id = node_id
        self.cluster = cluster
        self._engines: dict[str, StorageEngine] = {}
        self.hints: list[Hint] = []
        self.requests_served = 0
        self._hint_seqs: list[int] = []   # aligned with self.hints
        self._next_hint_seq = 0
        self._slop_wal: WriteAheadLog | None = None
        disk = cluster.node_disk(node_id)
        if disk is not None:
            self._slop_wal = WriteAheadLog("slops.wal", disk=disk)
            self._recover_hints()

    def _recover_hints(self) -> None:
        """Rebuild outstanding hints: stored minus delivered."""
        outstanding: dict[int, Hint] = {}
        for payload in self._slop_wal.replay():
            if payload[0] == _HINT_STORED:
                seq, hint = _decode_hint(payload)
                outstanding[seq] = hint
                self._next_hint_seq = max(self._next_hint_seq, seq + 1)
            elif payload[0] == _HINT_DELIVERED:
                (seq,) = _HINT_SEQ.unpack_from(payload, 1)
                outstanding.pop(seq, None)
        self._hint_seqs = sorted(outstanding)
        self.hints = [outstanding[seq] for seq in self._hint_seqs]

    # -- store lifecycle (invoked by the admin service) ----------------------

    def open_store(self, definition) -> None:
        if definition.name in self._engines:
            raise ConfigurationError(f"store {definition.name} already open")
        self._engines[definition.name] = self.cluster.make_engine(
            definition, self.node_id)

    def close_store(self, name: str) -> None:
        engine = self._engines.pop(name, None)
        if engine is not None:
            engine.close()

    def engine(self, store: str) -> StorageEngine:
        try:
            return self._engines[store]
        except KeyError:
            raise ConfigurationError(
                f"node {self.node_id} has no store {store!r}") from None

    # -- node-local operations (called via the network) ----------------------

    def get(self, store: str, key: bytes,
            transform: tuple | None = None) -> list[Versioned]:
        self.requests_served += 1
        versions = self.engine(store).get(key)
        if transform is None:
            return versions
        name, *args = transform
        fn = TRANSFORM_REGISTRY.get_transform(name)
        return [Versioned(fn(v.value, *args), v.clock) for v in versions]

    def put(self, store: str, key: bytes, versioned: Versioned,
            transform: tuple | None = None) -> None:
        self.requests_served += 1
        if transform is not None:
            name, *args = transform
            fn = TRANSFORM_REGISTRY.get_transform(name)
            try:
                current = self.engine(store).get(key)
                base = max(current, key=lambda v: sum(v.clock.entries.values()))
                new_value = fn(base.value, *args)
            except KeyError:
                new_value = fn(None, *args)
            versioned = Versioned(new_value, versioned.clock)
        self.engine(store).put(key, versioned)

    def delete(self, store: str, key: bytes, versioned: Versioned) -> None:
        self.requests_served += 1
        self.engine(store).delete(key, versioned)

    def get_batch(self, store: str, keys: list[bytes]
                  ) -> dict[bytes, list[Versioned]]:
        """Batched point reads; absent keys are omitted from the result.

        One network round trip serves many keys — the server half of the
        client's ``get_all``.
        """
        self.requests_served += 1
        engine = self.engine(store)
        out: dict[bytes, list[Versioned]] = {}
        for key in keys:
            try:
                out[key] = engine.get(key)
            except KeyNotFoundError:
                continue
        return out

    def get_versions(self, store: str, key: bytes) -> list:
        """Just the clocks — cheaper than full values for conflict checks."""
        return [v.clock for v in self.engine(store).get(key)]

    def ping(self) -> bool:
        return True

    # -- hinted handoff ----------------------------------------------------------

    def store_hint(self, hint: Hint) -> None:
        seq = self._next_hint_seq
        self._next_hint_seq += 1
        if self._slop_wal is not None:
            self._slop_wal.append(_encode_hint(seq, hint))
            self._slop_wal.fsync()  # the write is acked against this hint
        self.hints.append(hint)
        self._hint_seqs.append(seq)

    def hints_for(self, destination_node: int) -> list[Hint]:
        return [h for h in self.hints if h.destination_node == destination_node]

    def deliver_hints(self, destination_node: int) -> int:
        """Push held hints to a (recovered) replica; returns delivered count.

        Obsolete-version errors count as delivered — the destination
        already has newer data, so the hint's job is done.
        """
        from repro.common.errors import ObsoleteVersionError
        network = self.cluster.network
        delivered = 0
        remaining: list[Hint] = []
        remaining_seqs: list[int] = []
        delivered_seqs: list[int] = []
        snapshot = list(zip(self.hints, self._hint_seqs))
        for hint, seq in snapshot:
            if hint.destination_node != destination_node:
                remaining.append(hint)
                remaining_seqs.append(seq)
                continue
            target = self.cluster.server_for(hint.destination_node)
            try:
                network.invoke(self.cluster.node_name(self.node_id),
                               self.cluster.node_name(hint.destination_node),
                               target.engine(hint.store).put,
                               hint.key, hint.versioned)
                delivered += 1
                delivered_seqs.append(seq)
            except ObsoleteVersionError:
                delivered += 1
                delivered_seqs.append(seq)
            except NodeUnavailableError:
                remaining.append(hint)
                remaining_seqs.append(seq)
        if delivered_seqs and self._slop_wal is not None:
            for seq in delivered_seqs:
                self._slop_wal.append(
                    bytes([_HINT_DELIVERED]) + _HINT_SEQ.pack(seq))
            self._slop_wal.fsync()
        # hints queued while the deliveries and the fsync were in
        # flight are beyond the snapshot: carry them over, don't drop
        remaining.extend(self.hints[len(snapshot):])
        remaining_seqs.extend(self._hint_seqs[len(snapshot):])
        self.hints = remaining
        self._hint_seqs = remaining_seqs
        return delivered

    # -- maintenance -----------------------------------------------------------------

    def stores_open(self) -> list[str]:
        return sorted(self._engines)

    def close(self) -> None:
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()
        if self._slop_wal is not None:
            self._slop_wal.close()
