"""The build / pull / swap data cycle (Figure II.3).

Three phases, coordinated by :class:`ReadOnlyPipelineController`:

* **Build** — a MapReduce job partitions (key, value) pairs by
  destination node (honouring the store's replication factor), sorts
  by MD5 of key inside Hadoop's shuffle, and writes per-node data and
  index files to HDFS.
* **Pull** — every Voldemort node fetches its files from HDFS into a
  fresh versioned directory.  Pulls are throttled, and index files are
  pulled *after* all data files "to achieve cache-locality post-swap".
* **Swap** — once every node has pulled, the controller coordinates an
  atomic swap: close current index files, memory-map the new ones.
  Rollback is the same operation pointed at the previous version.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Iterable

from repro.common.atomic import atomic_section
from repro.common.errors import ConfigurationError
from repro.hadoop import MapReduceJob, MiniHDFS, run_job
from repro.voldemort.cluster import VoldemortCluster
from repro.voldemort.engines.readonly import (
    INDEX_ENTRY,
    ReadOnlyStorageEngine,
    write_version_dir,
)

_U32 = struct.Struct("<I")
_NODE_TAG = struct.Struct(">I")


def _pack_record(key: bytes, value: bytes) -> bytes:
    return _U32.pack(len(key)) + key + _U32.pack(len(value)) + value


def _iter_records(data: bytes):
    offset = 0
    while offset < len(data):
        (key_len,) = _U32.unpack_from(data, offset)
        key = data[offset + 4:offset + 4 + key_len]
        value_start = offset + 4 + key_len
        (value_len,) = _U32.unpack_from(data, value_start)
        value = data[value_start + 4:value_start + 4 + value_len]
        yield offset, key, value
        offset = value_start + 4 + value_len


@dataclass
class BuildResult:
    store: str
    version: int
    hdfs_dir: str
    records_per_node: dict[int, int]


@dataclass(frozen=True)
class SwapEvent:
    """Published on every swap/rollback (§II.C future work: "an update
    stream to which consumers can listen").

    Downstream caches and derived stores use the key deltas to
    invalidate precisely instead of flushing everything on deployment.
    """

    store: str
    version: int
    previous_version: int | None
    is_rollback: bool
    keys_added: frozenset[bytes]
    keys_removed: frozenset[bytes]
    keys_changed: frozenset[bytes]

    @property
    def total_delta(self) -> int:
        return (len(self.keys_added) + len(self.keys_removed)
                + len(self.keys_changed))


class ReadOnlyPipelineController:
    """Coordinates the data cycle for one read-only store."""

    def __init__(self, cluster: VoldemortCluster, hdfs: MiniHDFS, store: str):
        self.cluster = cluster
        self.hdfs = hdfs
        self.store = store
        definition = cluster.store_definition(store)
        if definition.engine_type != "read-only":
            raise ConfigurationError(f"store {store!r} is not read-only")
        self.definition = definition
        self._next_version = 1
        self.pull_throttle_bytes_per_sec: float | None = None
        # update stream (§II.C future work): version -> key -> value md5
        self._version_contents: dict[int, dict[bytes, bytes]] = {}
        self._live_version: int | None = None
        self._subscribers: list = []

    # -- build phase -------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register an update-stream listener; it receives a
        :class:`SwapEvent` after every swap and rollback."""
        self._subscribers.append(listener)

    def build(self, pairs: Iterable[tuple[bytes, bytes]]) -> BuildResult:
        """Run the Hadoop job; writes per-node index/data files to HDFS."""
        pairs = list(pairs)
        version = self._next_version
        self._next_version += 1
        self._version_contents[version] = {
            key: hashlib.md5(value).digest() for key, value in pairs}
        ring = self.cluster.ring
        replication = self.definition.replication_factor
        node_ids = sorted(ring.nodes)
        node_index = {node_id: i for i, node_id in enumerate(node_ids)}

        def mapper(pair):
            key, value = pair
            digest = hashlib.md5(key).digest()
            partition = ring.partition_for_key(key)
            for replica in ring.replica_partitions(partition, replication):
                node_id = ring.node_for_partition(replica).node_id
                composite = _NODE_TAG.pack(node_index[node_id]) + digest + key
                yield composite, _pack_record(key, value)

        def reducer(composite_key, values):
            if len(values) != 1:
                raise ConfigurationError(
                    f"duplicate key in read-only build: "
                    f"{composite_key[20:]!r}")
            yield values[0]

        def partitioner(composite_key, num_reducers):
            return _NODE_TAG.unpack_from(composite_key, 0)[0]

        job = MapReduceJob(f"build-{self.store}-v{version}", mapper, reducer,
                           num_reducers=len(node_ids),
                           partitioner=partitioner)
        hdfs_dir = f"/stores/{self.store}/version-{version}"
        counters = run_job(job, pairs, self.hdfs, f"{hdfs_dir}/_raw")

        # derive index + rename data per node; records arrive md5-sorted
        records_per_node: dict[int, int] = {}
        for node_id in node_ids:
            part = f"{hdfs_dir}/_raw/part-{node_index[node_id]:05d}"
            data = self.hdfs.read(part)
            index = bytearray()
            count = 0
            for offset, key, _value in _iter_records(data):
                index.extend(INDEX_ENTRY.pack(hashlib.md5(key).digest(), offset))
                count += 1
            self.hdfs.create(f"{hdfs_dir}/node-{node_id}.data", data)
            self.hdfs.create(f"{hdfs_dir}/node-{node_id}.index", bytes(index))
            records_per_node[node_id] = count
        return BuildResult(self.store, version, hdfs_dir, records_per_node)

    # -- pull phase --------------------------------------------------------------

    def pull(self, build: BuildResult) -> dict[int, int]:
        """Every node fetches its files into a new versioned directory.

        Returns bytes pulled per node.  Data files are fetched before
        index files; an optional throttle converts bytes to simulated
        seconds on the cluster clock.
        """
        pulled: dict[int, int] = {}
        for node_id in sorted(self.cluster.ring.nodes):
            data = self._fetch(f"{build.hdfs_dir}/node-{node_id}.data")
            index = self._fetch(f"{build.hdfs_dir}/node-{node_id}.index")
            engine = self._engine(node_id)
            write_version_dir(engine.store_dir, build.version, index, data)
            pulled[node_id] = len(data) + len(index)
        return pulled

    def _fetch(self, path: str) -> bytes:
        chunks = []
        for chunk in self.hdfs.read_chunks(path, chunk_size=1 << 20):
            chunks.append(chunk)
            if self.pull_throttle_bytes_per_sec:
                self.cluster.clock.sleep(
                    len(chunk) / self.pull_throttle_bytes_per_sec)
        return b"".join(chunks)

    def _engine(self, node_id: int) -> ReadOnlyStorageEngine:
        engine = self.cluster.server_for(node_id).engine(self.store)
        if not isinstance(engine, ReadOnlyStorageEngine):
            raise ConfigurationError(
                f"node {node_id} store {self.store!r} is not read-only")
        return engine

    # -- swap phase ----------------------------------------------------------------

    @atomic_section
    def swap(self, build: BuildResult) -> None:
        """Atomic cluster-wide swap: verify all nodes pulled, then flip.

        Verification before any node swaps keeps the cluster versions
        consistent — either every node serves the new version or none
        does.  Declared atomic: a yield between per-node flips would
        expose mixed versions to routed reads.
        """
        for node_id in sorted(self.cluster.ring.nodes):
            engine = self._engine(node_id)
            if build.version not in engine.versions_on_disk():
                raise ConfigurationError(
                    f"node {node_id} has not pulled version {build.version}")
        for node_id in sorted(self.cluster.ring.nodes):
            self._engine(node_id).swap(build.version)
        self._emit_swap_event(build.version, is_rollback=False)

    def rollback(self) -> int:
        """Roll every node back one version; returns the version now live."""
        versions = set()
        for node_id in sorted(self.cluster.ring.nodes):
            versions.add(self._engine(node_id).rollback())
        if len(versions) != 1:
            raise ConfigurationError(f"divergent rollback versions: {versions}")
        restored = versions.pop()
        self._emit_swap_event(restored, is_rollback=True)
        return restored

    def _emit_swap_event(self, version: int, is_rollback: bool) -> None:
        previous = self._live_version
        new_contents = self._version_contents.get(version, {})
        old_contents = self._version_contents.get(previous, {}) \
            if previous is not None else {}
        added = frozenset(k for k in new_contents if k not in old_contents)
        removed = frozenset(k for k in old_contents if k not in new_contents)
        changed = frozenset(k for k, digest in new_contents.items()
                            if k in old_contents and old_contents[k] != digest)
        event = SwapEvent(self.store, version, previous, is_rollback,
                          added, removed, changed)
        self._live_version = version
        for listener in self._subscribers:
            listener(event)

    def run_cycle(self, pairs: Iterable[tuple[bytes, bytes]]) -> BuildResult:
        """Full build -> pull -> swap."""
        build = self.build(pairs)
        self.pull(build)
        # safe: staged publication — the build is invisible until swap()
        # flips _live_version, and swap() itself is an atomic section
        self.swap(build)  # repro-lint: disable=non-atomic-multi-write
        return build
