"""Success-ratio failure detector (§II.B "Failure Detector").

"The most commonly used one marks a node as down when its 'success
ratio', i.e. ratio of successful operations to total, falls below a
pre-configured threshold.  Once marked down the node is considered
online only when an asynchronous thread is able to contact it again."

The detector keeps a sliding window of outcomes per node.  When a
node's ratio drops below the threshold it is marked down and a periodic
asynchronous ping (scheduled on the cluster clock) probes it until it
answers, at which point it is marked up again.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.common.clock import Clock, SimClock
from repro.common.errors import ConfigurationError


@dataclass
class _NodeHealth:
    outcomes: deque
    available: bool = True
    marked_down_at: float = 0.0

    def ratio(self) -> float:
        if not self.outcomes:
            return 1.0
        return sum(self.outcomes) / len(self.outcomes)


class FailureDetector:
    """Tracks per-node availability from observed request outcomes."""

    def __init__(self, clock: Clock, threshold: float = 0.8,
                 minimum_samples: int = 5, window: int = 64,
                 ping_interval: float = 1.0,
                 ping: Callable[[int], bool] | None = None):
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError("threshold must be in (0, 1]")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 1 <= minimum_samples <= window:
            raise ConfigurationError(
                "require 1 <= minimum_samples <= window: a node could "
                "otherwise never accumulate enough outcomes to be marked "
                "down")
        self.clock = clock
        self.threshold = threshold
        self.minimum_samples = minimum_samples
        self.window = window
        self.ping_interval = ping_interval
        self._ping = ping
        self._health: dict[int, _NodeHealth] = {}
        self.nodes_marked_down = 0
        self.nodes_recovered = 0
        # recovery hook: fired when a down node comes back (explicit
        # mark_up or a successful async probe).  The routing layer uses
        # it to reset the node's circuit breaker so both availability
        # views agree.
        self.on_mark_up: Callable[[int], None] | None = None

    def _node(self, node_id: int) -> _NodeHealth:
        if node_id not in self._health:
            self._health[node_id] = _NodeHealth(deque(maxlen=self.window))
        return self._health[node_id]

    def is_available(self, node_id: int) -> bool:
        return self._node(node_id).available

    def record_success(self, node_id: int) -> None:
        health = self._node(node_id)
        health.outcomes.append(1)

    def record_failure(self, node_id: int) -> None:
        health = self._node(node_id)
        health.outcomes.append(0)
        if (health.available
                and len(health.outcomes) >= self.minimum_samples
                and health.ratio() < self.threshold):
            self._mark_down(node_id)

    def _mark_down(self, node_id: int) -> None:
        health = self._node(node_id)
        health.available = False
        health.marked_down_at = self.clock.now()
        self.nodes_marked_down += 1
        self._schedule_probe(node_id)

    def _schedule_probe(self, node_id: int) -> None:
        """The 'asynchronous thread' that re-contacts a down node."""
        if self._ping is None or not isinstance(self.clock, SimClock):
            return

        def probe():
            health = self._node(node_id)
            if health.available:
                return
            try:
                alive = self._ping(node_id)
            except Exception:
                alive = False
            if alive:
                self.mark_up(node_id)
            else:
                self.clock.call_later(self.ping_interval, probe)

        self.clock.call_later(self.ping_interval, probe)

    def mark_up(self, node_id: int) -> None:
        health = self._node(node_id)
        if not health.available:
            health.available = True
            health.outcomes.clear()
            self.nodes_recovered += 1
        # the hook fires even when the detector never marked the node
        # down: an explicit mark_up is an external recovery signal, and
        # listeners (circuit breakers) may hold failure history the
        # detector does not
        if self.on_mark_up is not None:
            self.on_mark_up(node_id)

    def available_nodes(self, candidates: list[int]) -> list[int]:
        return [n for n in candidates if self.is_available(n)]

    def success_ratio(self, node_id: int) -> float:
        return self._node(node_id).ratio()
