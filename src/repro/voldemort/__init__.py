"""Voldemort: a Dynamo-style distributed key-value store (paper §II).

Layered exactly like Figure II.1's pluggable architecture:

* client API with vector-clocked values, server-side transforms, and
  optimistic ``apply_update`` retry loops — :mod:`repro.voldemort.client`;
* conflict resolution — :mod:`repro.common.vectorclock`;
* repair mechanisms (read repair, hinted handoff) —
  :mod:`repro.voldemort.repair`;
* failure detector (success-ratio based) —
  :mod:`repro.voldemort.failure_detector`;
* routing (consistent hashing with fixed partitions; zone-aware
  variant; Chord baseline for the O(1)-vs-O(log N) claim) —
  :mod:`repro.voldemort.routing`, :mod:`repro.voldemort.chord`;
* storage engines (in-memory, log-structured read-write, read-only
  bulk-loaded) — :mod:`repro.voldemort.engines`;
* admin service (store management, rebalancing) —
  :mod:`repro.voldemort.admin`;
* the Hadoop build/pull/swap data cycle for read-only stores —
  :mod:`repro.voldemort.readonly_pipeline`.
"""

from repro.voldemort.versioned import Versioned
from repro.voldemort.cluster import StoreDefinition, VoldemortCluster
from repro.voldemort.server import VoldemortServer
from repro.voldemort.routing import RoutedStore
from repro.voldemort.client import StoreClient, UpdateAction
from repro.voldemort.failure_detector import FailureDetector

__all__ = [
    "Versioned",
    "StoreDefinition",
    "VoldemortCluster",
    "VoldemortServer",
    "RoutedStore",
    "StoreClient",
    "UpdateAction",
    "FailureDetector",
]
