"""Versioned values: a payload plus its vector clock."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.vectorclock import Occurred, VectorClock


@dataclass(frozen=True)
class Versioned:
    """An immutable (value, vector clock) pair.

    ``value`` is opaque bytes at the storage layer; richer types live in
    the client's serializers.  A ``None`` value is a tombstone.
    """

    value: bytes | None
    clock: VectorClock

    def dominates(self, other: "Versioned") -> bool:
        return self.clock.compare(other.clock) is Occurred.AFTER

    def concurrent_with(self, other: "Versioned") -> bool:
        return self.clock.concurrent_with(other.clock)

    @property
    def is_tombstone(self) -> bool:
        return self.value is None

    @staticmethod
    def initial(value: bytes, node_id: int) -> "Versioned":
        """First write of a key, attributed to ``node_id``."""
        return Versioned(value, VectorClock().incremented(node_id))

    def next_version(self, value: bytes | None, node_id: int) -> "Versioned":
        """A successor version written at ``node_id``."""
        return Versioned(value, self.clock.incremented(node_id))
