"""The Voldemort client API (Figure II.2).

    1) get(key)                      -> list of Versioned
    2) put(key, versioned)           -> latency
    3) get(key, transform)           -> transformed read
    4) put(key, versioned, transform)-> server-side read-modify-write
    5) apply_update(action, retries) -> optimistic-locking retry loop

Values cross the wire as bytes; :class:`StoreClient` accepts an
optional serializer pair for richer types.  Conflict resolution is
delegated to the application: ``get`` returns the concurrent frontier
and ``get_resolved`` folds it with a caller-supplied resolver.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.common.errors import KeyNotFoundError, ObsoleteVersionError
from repro.common.resilience import Deadline
from repro.common.vectorclock import VectorClock
from repro.voldemort.routing import RoutedStore
from repro.voldemort.versioned import Versioned

UpdateAction = Callable[["StoreClient"], None]
Resolver = Callable[[list[Versioned]], Versioned]


def last_writer_wins(versions: list[Versioned]) -> Versioned:
    """A simple resolver: highest total clock weight wins, ties broken
    deterministically by value."""
    return max(versions,
               key=lambda v: (sum(v.clock.entries.values()), v.value or b""))


class StoreClient:
    """High-level client bound to one store."""

    def __init__(self, routed_store: RoutedStore,
                 encode: Callable[[object], bytes] | None = None,
                 decode: Callable[[bytes], object] | None = None,
                 request_budget: float | None = None):
        self._routed = routed_store
        self._encode = encode or _identity_encode
        self._decode = decode or _identity_decode
        self.store = routed_store.store
        # per-request deadline budget (seconds); every public operation
        # mints one Deadline at the edge and threads it through each hop
        # (a read-then-write put shares one shrinking budget)
        self.request_budget = request_budget

    def _new_deadline(self) -> Deadline | None:
        if self.request_budget is None:
            return None
        return Deadline(self._routed.cluster.clock, self.request_budget)

    # -- reads -------------------------------------------------------------

    def get(self, key: bytes, transform: tuple | None = None
            ) -> list[Versioned]:
        """The concurrent-version frontier; [] when the key is absent."""
        return self._get(key, transform, self._new_deadline())

    def _get(self, key: bytes, transform: tuple | None,
             deadline: Deadline | None) -> list[Versioned]:
        try:
            versions, _ = self._routed.get(key, transform, deadline=deadline)
            return versions
        except KeyNotFoundError:
            return []

    def get_value(self, key: bytes, default: object = None,
                  resolver: Resolver = last_writer_wins) -> object:
        """Decoded value with conflicts folded by ``resolver``."""
        versions = self.get(key)
        if not versions:
            return default
        return self._decode(resolver(versions).value)

    def get_resolved(self, key: bytes,
                     resolver: Resolver = last_writer_wins) -> Versioned | None:
        versions = self.get(key)
        if not versions:
            return None
        if len(versions) == 1:
            return versions[0]
        winner = resolver(versions)
        merged_clock = winner.clock
        for versioned in versions:
            merged_clock = merged_clock.merged(versioned.clock)
        return Versioned(winner.value, merged_clock)

    # -- writes -----------------------------------------------------------------

    def put(self, key: bytes, value: object,
            version: VectorClock | None = None,
            transform: tuple | None = None) -> VectorClock:
        """Write a new version of ``key``.

        When ``version`` is omitted the client reads the current clock
        first (the common usage).  Supplying a stale clock raises
        :class:`ObsoleteVersionError` — the paper's optimistic locking.
        Returns the clock that was written.
        """
        deadline = self._new_deadline()
        if version is None:
            versions = self._get(key, None, deadline)
            version = VectorClock()
            for versioned in versions:
                version = version.merged(versioned.clock)
        master = self._routed.replica_nodes(key)[0]
        new_clock = version.incremented(master)
        payload = self._encode(value) if value is not None else b""
        self._routed.put(key, Versioned(payload, new_clock), transform,
                         deadline=deadline)
        return new_clock

    def put_versioned(self, key: bytes, versioned: Versioned) -> float:
        """Low-level write of an already-clocked version."""
        return self._routed.put(key, versioned)

    def delete(self, key: bytes) -> bool:
        """Tombstone every current version; False when absent."""
        deadline = self._new_deadline()
        versions = self._get(key, None, deadline)
        if not versions:
            return False
        clock = VectorClock()
        for versioned in versions:
            clock = clock.merged(versioned.clock)
        master = self._routed.replica_nodes(key)[0]
        self._routed.delete(key, Versioned(None, clock.incremented(master)),
                            deadline=deadline)
        return True

    # -- optimistic update loop (API method 5) ------------------------------------

    def apply_update(self, action: UpdateAction, retries: int = 3) -> bool:
        """Run ``action`` until it commits without a version conflict.

        "This retry logic can be encapsulated in the applyUpdate call
        and can be used in cases like counters where 'read, modify,
        write if no change' loops are required." (§II.B)
        """
        attempts = retries + 1
        for _ in range(attempts):
            try:
                action(self)
                return True
            except ObsoleteVersionError:
                continue
        return False

    # -- metrics --------------------------------------------------------------------

    @property
    def metrics(self):
        return self._routed.metrics


def _identity_encode(value: object) -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    raise TypeError(f"default serializer wants bytes/str, got {type(value).__name__}")


def _identity_decode(value: bytes | None) -> bytes | None:
    return value


def json_client(routed_store: RoutedStore) -> StoreClient:
    """A client whose values are JSON documents."""
    return StoreClient(
        routed_store,
        encode=lambda v: json.dumps(v, sort_keys=True).encode("utf-8"),
        decode=lambda b: None if b in (None, b"") else json.loads(b.decode("utf-8")),
    )
