"""The slop pusher: periodic hinted-handoff delivery.

Hints ("slops", in Voldemort's vocabulary) parked by
:meth:`RoutedStore.put` during node failures must eventually reach
their real owners.  The slop pusher is the background task that retries
delivery on a schedule, complementing the failure detector's
asynchronous recovery probe: as soon as the destination answers again,
the next push drains its hints.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.voldemort.cluster import VoldemortCluster


class SlopPusherService:
    """A recurring cluster-wide hint-delivery sweep on the sim clock."""

    def __init__(self, cluster: VoldemortCluster, interval: float = 5.0):
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        if not isinstance(cluster.clock, SimClock):
            raise ConfigurationError("slop pusher schedules on a SimClock")
        self.cluster = cluster
        self.interval = interval
        self.sweeps = 0
        self.hints_delivered = 0
        self._running = False
        self._event = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            SimClock.cancel(self._event)
            self._event = None

    def _schedule(self) -> None:
        self._event = self.cluster.clock.call_later(self.interval, self._sweep)

    def _sweep(self) -> None:
        if not self._running:
            return
        self.sweeps += 1
        self.hints_delivered += self.push_once()
        self._schedule()

    def push_once(self) -> int:
        """One synchronous sweep: every holder tries every destination."""
        delivered = 0
        destinations = list(self.cluster.servers)
        for server in self.cluster.servers.values():
            if not server.hints:
                continue
            for destination in destinations:
                if server.hints_for(destination):
                    delivered += server.deliver_hints(destination)
        return delivered

    def outstanding_hints(self) -> int:
        return sum(len(server.hints) for server in self.cluster.servers.values())
