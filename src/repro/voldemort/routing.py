"""Quorum routing with repair mechanisms (§II.B "Routing").

:class:`RoutedStore` implements Dynamo-style coordination:

* the replica set for a key is found by jumping the ring (zone-aware
  when the store requires it);
* reads fan out to available replicas and succeed once R respond; the
  version frontier is computed with vector clocks, and *read repair*
  pushes the frontier back to stale replicas;
* writes fan out and succeed once W respond; when a replica is down,
  *hinted handoff* parks the write on another live node, which replays
  it after recovery;
* every outcome feeds the failure detector, so routing avoids nodes
  that are currently unavailable.

The request model is parallel fan-out: per-replica latencies are
sampled independently and the operation's simulated latency is the
k-th smallest among the successful responses (k = R or W), matching
how a parallel quorum behaves.
"""

from __future__ import annotations

import random

from repro.common.errors import (
    DeadlineExceededError,
    InsufficientOperationalNodesError,
    KeyNotFoundError,
    NodeUnavailableError,
    ObsoleteVersionError,
    OverloadError,
    ServerOverloadedError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.overload import (
    PRIORITY_BULK,
    PRIORITY_LIVE,
    PRIORITY_WRITE,
    AdmissionController,
    HedgedCall,
)
from repro.common.resilience import CircuitBreaker, Deadline, RetryPolicy
from repro.common.vectorclock import Occurred
from repro.voldemort.cluster import StoreDefinition, VoldemortCluster
from repro.voldemort.failure_detector import FailureDetector
from repro.voldemort.server import Hint
from repro.voldemort.versioned import Versioned


class RoutedStore:
    """Client-side (or server-side — the module is pluggable) router
    for one store."""

    def __init__(self, cluster: VoldemortCluster, store: str,
                 client_name: str = "client",
                 failure_detector: FailureDetector | None = None,
                 enable_read_repair: bool = True,
                 enable_hinted_handoff: bool = True,
                 client_zone: int | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker_config: dict | None = None,
                 retry_seed: int = 0,
                 admission: AdmissionController | None = None,
                 hedge: HedgedCall | None = None):
        self.cluster = cluster
        self.store = store
        self.definition: StoreDefinition = cluster.store_definition(store)
        self.client_name = client_name
        self.detector = failure_detector or FailureDetector(
            cluster.clock, ping=self._ping_node)
        self.enable_read_repair = enable_read_repair
        self.enable_hinted_handoff = enable_hinted_handoff
        # unified resilience layer: quorum rounds retry per policy, and a
        # per-node breaker stops hammering replicas that keep failing.
        # The breaker needs more samples than the failure detector's
        # minimum (5) so the detector always sees enough real outcomes
        # to mark a node down before calls to it are short-circuited.
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(retry_seed)
        self._breaker_config = {"window": 16, "minimum_samples": 8,
                                "reset_timeout": 1.0}
        self._breaker_config.update(breaker_config or {})
        self._breakers: dict[int, CircuitBreaker] = {}
        if self.detector.on_mark_up is None:
            self.detector.on_mark_up = self._reset_breaker
        # multi-datacenter read locality: with a client zone declared,
        # reads prefer replicas in nearby zones (the zone "proximity
        # list" of §II.B)
        self.client_zone = client_zone
        # the admin service's redirect table: while a partition is
        # migrating, "requests of moving partitions [redirect] to their
        # new destination" (§II.B Admin Service)
        self.admin = None
        self.metrics = MetricsRegistry()
        # overload layer (all optional, off by default):
        # * admission sheds whole operations at the front door — checked
        #   BEFORE any breaker so a shed never consumes an admitted
        #   breaker slot and never counts as a node failure;
        # * hedge fires one backup read at the next replica when the
        #   primary is slower than the tracked p99 (tail-latency cut
        #   under gray failure).
        self.admission = admission
        self.hedge = hedge

    # -- replica selection ------------------------------------------------------

    def replica_nodes(self, key: bytes) -> list[int]:
        """Replica node ids for ``key``, preference order.

        Consults the admin service's redirect table when one is
        attached, so requests for a partition that is mid-migration
        land on its new destination immediately.
        """
        ring = self.cluster.ring
        partition = ring.partition_for_key(key)
        if self.definition.required_zones > 0:
            partitions = ring.zone_aware_replica_partitions(
                partition, self.definition.replication_factor,
                self.definition.required_zones)
        else:
            partitions = ring.replica_partitions(
                partition, self.definition.replication_factor)
        if self.admin is None:
            return [ring.node_for_partition(p).node_id for p in partitions]
        out = []
        for p in partitions:
            owner = self.admin.effective_owner(p)
            if owner not in out:
                out.append(owner)
        return out

    def _ping_node(self, node_id: int) -> bool:
        server = self.cluster.server_for(node_id)
        try:
            self.cluster.network.invoke(
                self.client_name, self.cluster.node_name(node_id), server.ping)
            return True
        except OverloadError:
            # a shed ping still proves the node is alive
            return True
        except NodeUnavailableError:
            return False

    def breaker_for(self, node_id: int) -> CircuitBreaker:
        """The per-node circuit breaker (created on first use)."""
        if node_id not in self._breakers:
            self._breakers[node_id] = CircuitBreaker(
                self.cluster.clock, name=f"node-{node_id}",
                metrics=self.metrics, **self._breaker_config)
        return self._breakers[node_id]

    def _reset_breaker(self, node_id: int) -> None:
        """Detector says the node recovered; forget breaker history."""
        breaker = self._breakers.get(node_id)
        if breaker is not None:
            breaker.reset()

    def _hop_timeout(self, deadline: Deadline | None) -> float | None:
        """Per-hop timeout clamped by the remaining request budget."""
        if deadline is None:
            return None
        return deadline.clamp(self.cluster.network.default_timeout)

    def _sleep_before_retry(self, retry_number: int, operation: str,
                            deadline: Deadline | None) -> None:
        delay = self.retry_policy.backoff(retry_number, self._retry_rng)
        if deadline is not None:
            delay = min(delay, deadline.remaining())
        self.metrics.counter(f"{operation}.retries").increment()
        self.cluster.clock.sleep(delay)

    # -- reads ---------------------------------------------------------------------

    def get(self, key: bytes, transform: tuple | None = None,
            deadline: Deadline | None = None
            ) -> tuple[list[Versioned], float]:
        """Quorum read; returns (version frontier, simulated latency).

        Raises :class:`KeyNotFoundError` when a quorum of replicas agree
        the key is absent, and
        :class:`InsufficientOperationalNodesError` when fewer than R
        replicas respond at all.  With a :class:`RetryPolicy` configured,
        short quorum rounds are retried with backoff against the
        replicas that have not answered yet, bounded by ``deadline``.
        """
        # admission runs before replica selection and before any breaker:
        # a shed read costs nothing downstream and records no breaker or
        # detector outcome (the cluster is fine — *we* are overloaded)
        if self.admission is not None:
            self.admission.admit(PRIORITY_LIVE, what="get")
        replicas = self.replica_nodes(key)
        required = self.definition.required_reads
        responses: dict[int, list[Versioned]] = {}
        latencies: list[float] = []
        missing_nodes: list[int] = []
        max_rounds = self.retry_policy.max_attempts if self.retry_policy else 1
        round_number = 1
        hedged_this_op = False
        while True:
            ordered = self._ordered_by_availability(replicas)
            for node_id in ordered:
                if len(responses) + len(missing_nodes) >= required:
                    break
                if node_id in responses or node_id in missing_nodes:
                    continue
                if self.hedge is not None and not hedged_this_op:
                    hedged_this_op = True
                    backup = next(
                        (n for n in ordered if n != node_id
                         and n not in responses and n not in missing_nodes),
                        None)
                    node_id, result = self._call_get_hedged(
                        node_id, backup, key, transform, deadline)
                else:
                    result = self._call_get(node_id, key, transform, deadline)
                if result is None:
                    continue
                latency, versions = result
                latencies.append(latency)
                if versions is None:
                    missing_nodes.append(node_id)
                else:
                    responses[node_id] = versions
            if len(responses) + len(missing_nodes) >= required:
                break
            if round_number >= max_rounds:
                break
            if deadline is not None and deadline.expired:
                break
            self._sleep_before_retry(round_number, "get", deadline)
            round_number += 1
        answered = len(responses) + len(missing_nodes)
        if answered < required:
            if deadline is not None and deadline.expired:
                self.metrics.counter("get.deadline_exceeded").increment()
                raise DeadlineExceededError(
                    f"read of {key!r} exhausted its deadline with "
                    f"{answered} of {required} responses")
            self.metrics.counter("get.unavailable").increment()
            raise InsufficientOperationalNodesError(
                f"only {answered} of {required} required reads succeeded",
                required=required, achieved=answered)
        operation_latency = sorted(latencies)[required - 1] if latencies else 0.0
        self.metrics.histogram("get").record(operation_latency)
        if not responses:
            raise KeyNotFoundError(repr(key))
        frontier = self._resolve_frontier(responses)
        if self.enable_read_repair and transform is None:
            self._read_repair(key, frontier, responses, missing_nodes,
                              deadline)
        return frontier, operation_latency

    def _call_get(self, node_id: int, key: bytes, transform: tuple | None,
                  deadline: Deadline | None = None
                  ) -> tuple[float, list[Versioned] | None] | None:
        """One replica read.  Returns None on node failure (or when the
        node's breaker rejects the call), (latency, None) when the node
        answered 'no such key'."""
        # deadline first: an expired hop must not consume an admitted
        # breaker slot (a half-open probe that exits here would leave
        # the breaker open forever, with no outcome ever recorded)
        timeout = self._hop_timeout(deadline)
        if timeout is not None and timeout <= 0:
            return None
        breaker = self.breaker_for(node_id)
        # breaker gating is active only with a retry policy: the retry
        # loop's backoff sleeps are what advance the clock toward the
        # breaker's half-open probe, so without one an open breaker
        # could never recover
        if self.retry_policy is not None and not breaker.allow():
            return None
        server = self.cluster.server_for(node_id)
        try:
            versions, latency = self.cluster.network.invoke(
                self.client_name, self.cluster.node_name(node_id),
                server.get, self.store, key, transform, timeout=timeout)
            self.detector.record_success(node_id)
            breaker.record_success()
            return latency, versions
        except KeyNotFoundError:
            self.detector.record_success(node_id)
            breaker.record_success()
            return 0.0005, None
        except ServerOverloadedError:
            # the replica is alive but shedding — an answered request,
            # so the admitted breaker slot records success (tripping the
            # breaker on sheds would turn overload into unavailability),
            # and routing simply moves on to the next replica instead of
            # hammering this one
            self.detector.record_success(node_id)
            breaker.record_success()
            self.metrics.counter("get.replica_shed").increment()
            return None
        except NodeUnavailableError:
            self.detector.record_failure(node_id)
            breaker.record_failure()
            self.metrics.counter("get.node_failures").increment()
            return None

    def _call_get_hedged(self, primary: int, backup: int | None, key: bytes,
                         transform: tuple | None, deadline: Deadline | None
                         ) -> tuple[int, tuple[float, list[Versioned] | None] | None]:
        """One replica read with a tail-latency hedge to ``backup``.

        Returns ``(answering_node, result)`` in :meth:`_call_get`'s
        result shape.  The hedge races the primary against a backup
        launched after the tracked p99; per-replica bookkeeping
        (breaker, detector) happens inside :meth:`_call_get` for both
        legs, so the hedge changes *which* answer wins, never what gets
        recorded.
        """
        if backup is None:
            return primary, self._call_get(primary, key, transform, deadline)

        def attempt(node_id):
            outcome = self._call_get(node_id, key, transform, deadline)
            if outcome is None:
                raise NodeUnavailableError(f"node {node_id} did not answer")
            latency, versions = outcome
            return versions, latency

        try:
            winner, versions, effective, hedged = self.hedge.run(
                [primary, backup], attempt)
        except (NodeUnavailableError, OverloadError):
            return primary, None
        if hedged:
            self.metrics.counter("get.hedged").increment()
        return winner, (effective, versions)

    @staticmethod
    def _resolve_frontier(responses: dict[int, list[Versioned]]
                          ) -> list[Versioned]:
        merged: list[Versioned] = []
        for versions in responses.values():
            for incoming in versions:
                dominated = False
                merged = [kept for kept in merged
                          if not _supersedes(incoming, kept)]
                for kept in merged:
                    if _supersedes(kept, incoming) or kept.clock == incoming.clock:
                        dominated = True
                        break
                if not dominated:
                    merged.append(incoming)
        return merged

    def _read_repair(self, key: bytes, frontier: list[Versioned],
                     responses: dict[int, list[Versioned]],
                     missing_nodes: list[int],
                     deadline: Deadline | None = None) -> None:
        """Push frontier versions to replicas that lack them (§II.B),
        inside whatever remains of the read's budget: repair rides on
        the caller's request, so an exhausted deadline skips it (it is
        best-effort) and each push clamps its timeout to the remainder.
        """
        stale: list[int] = list(missing_nodes)
        for node_id, versions in responses.items():
            clocks = {v.clock for v in versions}
            if any(f.clock not in clocks for f in frontier):
                stale.append(node_id)
        for node_id in stale:
            timeout = self._hop_timeout(deadline)
            if timeout is not None and timeout <= 0:
                self.metrics.counter("read_repair.deadline_skipped") \
                    .increment()
                return
            # repair is bulk-class traffic: under pressure it is the
            # first thing to go, so live reads keep their tokens
            if self.admission is not None and \
                    not self.admission.try_admit(PRIORITY_BULK):
                self.metrics.counter("read_repair.shed").increment()
                return
            server = self.cluster.server_for(node_id)
            for versioned in frontier:
                try:
                    self.cluster.network.invoke(
                        self.client_name, self.cluster.node_name(node_id),
                        server.engine(self.store).put, key, versioned,
                        timeout=timeout)
                    self.metrics.counter("read_repairs").increment()
                except ObsoleteVersionError:
                    # the replica already caught up past this version —
                    # the repair is moot, not a failure
                    self.metrics.counter("read_repair.obsolete").increment()
                except ServerOverloadedError:
                    # the replica shed the repair: best-effort traffic,
                    # dropped without penalty
                    self.metrics.counter("read_repair.shed").increment()
                except NodeUnavailableError:
                    # best-effort by design (§II.B), but the miss must
                    # stay observable to the failure detector and metrics
                    self.detector.record_failure(node_id)
                    self.metrics.counter("read_repair.failures").increment()

    def get_all(self, keys: list[bytes]
                ) -> tuple[dict[bytes, list[Versioned]], float]:
        """Batched quorum reads: one request per node, not per key.

        Each key is assigned to its first R available replicas; each
        node receives a single ``get_batch`` for all its assigned keys.
        Returns (key -> version frontier, simulated latency); keys
        absent everywhere are omitted.  Keys that cannot reach R
        replicas raise, matching :meth:`get`.
        """
        if self.admission is not None:
            self.admission.admit(PRIORITY_LIVE, what="get_all")
        required = self.definition.required_reads
        per_node: dict[int, list[bytes]] = {}
        assignments: dict[bytes, list[int]] = {}
        for key in keys:
            replicas = self._ordered_by_availability(self.replica_nodes(key))
            chosen = replicas[:required]
            assignments[key] = chosen
            for node_id in chosen:
                per_node.setdefault(node_id, []).append(key)
        responses: dict[bytes, dict[int, list[Versioned]]] = {}
        answered: dict[bytes, int] = {key: 0 for key in keys}
        latencies: list[float] = []
        for node_id, node_keys in per_node.items():
            server = self.cluster.server_for(node_id)
            try:
                found, latency = self.cluster.network.invoke(
                    self.client_name, self.cluster.node_name(node_id),
                    server.get_batch, self.store, node_keys)
                self.detector.record_success(node_id)
                latencies.append(latency)
            except ServerOverloadedError:
                self.detector.record_success(node_id)
                self.metrics.counter("get_all.replica_shed").increment()
                continue
            except NodeUnavailableError:
                self.detector.record_failure(node_id)
                continue
            for key in node_keys:
                answered[key] += 1
                if key in found:
                    responses.setdefault(key, {})[node_id] = found[key]
        short = [key for key, count in answered.items() if count < required]
        if short:
            raise InsufficientOperationalNodesError(
                f"{len(short)} keys reached fewer than {required} replicas",
                required=required, achieved=min(answered[k] for k in short))
        operation_latency = max(latencies) if latencies else 0.0
        self.metrics.histogram("get_all").record(operation_latency)
        return ({key: self._resolve_frontier(by_node)
                 for key, by_node in responses.items()},
                operation_latency)

    # -- writes ---------------------------------------------------------------------

    def put(self, key: bytes, versioned: Versioned,
            transform: tuple | None = None,
            deadline: Deadline | None = None) -> float:
        """Quorum write; returns simulated latency.

        Needs W replica acks.  Unreachable replicas trigger hinted
        handoff (when enabled): the write is parked on a live non-
        replica node and counts toward neither W nor failure.
        """
        return self._write(key, versioned, transform, is_delete=False,
                           deadline=deadline)

    def delete(self, key: bytes, versioned: Versioned,
               deadline: Deadline | None = None) -> float:
        """Tombstone write with the same quorum rules."""
        return self._write(key, versioned, None, is_delete=True,
                           deadline=deadline)

    def _write(self, key: bytes, versioned: Versioned,
               transform: tuple | None, is_delete: bool,
               deadline: Deadline | None = None) -> float:
        # shed before breaker (same front-door rule as reads); writes
        # outrank bulk traffic but yield to live reads under pressure
        if self.admission is not None:
            self.admission.admit(
                PRIORITY_WRITE, what="delete" if is_delete else "put")
        replicas = self.replica_nodes(key)
        required = self.definition.required_writes
        successes = 0
        first_error: Exception | None = None
        latencies: list[float] = []
        pending = list(replicas)
        max_rounds = self.retry_policy.max_attempts if self.retry_policy else 1
        round_number = 1
        while True:
            failed_nodes = self._write_round(key, versioned, transform,
                                             is_delete, pending, deadline,
                                             latencies)
            successes = len(latencies)
            first_error = first_error or failed_nodes.pop("conflict", None)
            failed = failed_nodes["failed"]
            if first_error is not None:
                self.metrics.counter("put.conflicts").increment()
                raise first_error
            if successes >= required and not failed:
                break
            if not failed or round_number >= max_rounds:
                break
            if deadline is not None and deadline.expired:
                break
            self._sleep_before_retry(round_number, "put", deadline)
            round_number += 1
            pending = failed
        if failed and self.enable_hinted_handoff and not is_delete:
            self._hand_off(key, versioned, replicas, failed)
        if successes < required:
            if deadline is not None and deadline.expired:
                self.metrics.counter("put.deadline_exceeded").increment()
                raise DeadlineExceededError(
                    f"write of {key!r} exhausted its deadline with "
                    f"{successes} of {required} acks")
            self.metrics.counter("put.unavailable").increment()
            raise InsufficientOperationalNodesError(
                f"only {successes} of {required} required writes succeeded",
                required=required, achieved=successes)
        operation_latency = sorted(latencies)[required - 1]
        self.metrics.histogram("put").record(operation_latency)
        return operation_latency

    def _write_round(self, key: bytes, versioned: Versioned,
                     transform: tuple | None, is_delete: bool,
                     pending: list[int], deadline: Deadline | None,
                     latencies: list[float]) -> dict:
        """One fan-out pass over ``pending`` replicas.  Appends each
        ack's latency; returns the nodes that failed (and any
        optimistic-locking conflict) for the retry loop to act on."""
        out: dict = {"failed": []}
        for node_id in pending:
            # deadline before breaker: an expired hop must not consume
            # an admitted slot without ever recording an outcome
            timeout = self._hop_timeout(deadline)
            if timeout is not None and timeout <= 0:
                out["failed"].append(node_id)
                continue
            breaker = self.breaker_for(node_id)
            if not self.detector.is_available(node_id) or (
                    self.retry_policy is not None and not breaker.allow()):
                out["failed"].append(node_id)
                continue
            server = self.cluster.server_for(node_id)
            try:
                if is_delete:
                    _, latency = self.cluster.network.invoke(
                        self.client_name, self.cluster.node_name(node_id),
                        server.delete, self.store, key, versioned,
                        timeout=timeout)
                else:
                    _, latency = self.cluster.network.invoke(
                        self.client_name, self.cluster.node_name(node_id),
                        server.put, self.store, key, versioned, transform,
                        timeout=timeout)
                latencies.append(latency)
                self.detector.record_success(node_id)
                breaker.record_success()
            except ObsoleteVersionError as exc:
                # optimistic-locking conflict: surface to the caller
                self.detector.record_success(node_id)
                breaker.record_success()
                out["conflict"] = exc
            except ServerOverloadedError:
                # shed by the replica: alive (breaker success), but the
                # write did not land — eligible for retry/handoff like
                # any other miss
                self.detector.record_success(node_id)
                breaker.record_success()
                self.metrics.counter("put.replica_shed").increment()
                out["failed"].append(node_id)
            except NodeUnavailableError:
                self.detector.record_failure(node_id)
                breaker.record_failure()
                out["failed"].append(node_id)
        return out

    def _hand_off(self, key: bytes, versioned: Versioned,
                  replicas: list[int], failed_nodes: list[int]) -> None:
        """Park writes for unreachable replicas on live fallback nodes."""
        fallbacks = [n for n in self.cluster.ring.nodes
                     if n not in replicas and self.detector.is_available(n)]
        if not fallbacks:
            return
        for i, dead_node in enumerate(failed_nodes):
            holder_id = fallbacks[i % len(fallbacks)]
            holder = self.cluster.server_for(holder_id)
            hint = Hint(self.store, key, versioned, dead_node)
            try:
                self.cluster.network.invoke(
                    self.client_name, self.cluster.node_name(holder_id),
                    holder.store_hint, hint)
                self.metrics.counter("hints_stored").increment()
            except OverloadError:
                self.metrics.counter("hints_shed").increment()
                continue
            except NodeUnavailableError:
                continue

    # -- helpers -------------------------------------------------------------------------

    def _zone_distance(self, node_id: int) -> int:
        """0 for the client's own zone, then proximity-list order."""
        if self.client_zone is None:
            return 0
        node_zone = self.cluster.ring.nodes[node_id].zone_id
        if node_zone == self.client_zone:
            return 0
        zone = self.cluster.ring.zones.get(self.client_zone)
        if zone is None or node_zone not in zone.proximity:
            return 10 ** 6
        return zone.proximity.index(node_zone) + 1

    def _queue_depth(self, node_id: int) -> int:
        """The replica's simulated server-queue depth (0 when the node
        has no bounded queue configured) — the load signal for
        least-loaded replica selection."""
        return self.cluster.network.queue_depth(self.cluster.node_name(node_id))

    def _ordered_by_availability(self, replicas: list[int]) -> list[int]:
        """Available replicas first, nearest zone first, least-loaded
        (shallowest server queue) within a zone, preserving ring order
        as the final tie-break."""
        indexed = list(enumerate(replicas))
        indexed.sort(key=lambda pair: (
            not self.detector.is_available(pair[1]),
            self._zone_distance(pair[1]),
            self._queue_depth(pair[1]),
            pair[0]))
        return [node_id for _, node_id in indexed]


def _supersedes(a: Versioned, b: Versioned) -> bool:
    return a.clock.compare(b.clock) is Occurred.AFTER
