"""Cluster and store configuration.

A Voldemort *cluster* is a set of nodes and a partition ring; *stores*
(database tables) map onto a cluster, each with its own replication
factor N, required reads R, required writes W, and engine type (§II.B).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.clock import Clock, SimClock
from repro.common.errors import ConfigurationError
from repro.common.ring import HashRing, build_balanced_ring
from repro.simnet import SimNetwork
from repro.simnet.disk import SimDisk
from repro.voldemort.engines import (
    InMemoryStorageEngine,
    LogStructuredEngine,
    ReadOnlyStorageEngine,
    StorageEngine,
)


@dataclass(frozen=True)
class StoreDefinition:
    """Per-store configuration: schema of the quorum and the engine."""

    name: str
    replication_factor: int = 3
    required_reads: int = 2
    required_writes: int = 2
    engine_type: str = "memory"  # "memory" | "log-structured" | "read-only"
    required_zones: int = 0

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("store needs a name")
        if self.replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        if not 1 <= self.required_reads <= self.replication_factor:
            raise ConfigurationError("require 1 <= R <= N")
        if not 1 <= self.required_writes <= self.replication_factor:
            raise ConfigurationError("require 1 <= W <= N")
        if self.required_zones < 0:
            raise ConfigurationError("required_zones must be >= 0")

    @property
    def strongly_consistent(self) -> bool:
        """R + W > N guarantees read-your-writes across the quorum."""
        return self.required_reads + self.required_writes > self.replication_factor


class VoldemortCluster:
    """Nodes + ring + store definitions + the shared simulated network.

    The cluster object is the wiring harness: it builds one
    :class:`repro.voldemort.server.VoldemortServer` per ring node and
    creates the configured engine for every store on every node.
    """

    def __init__(self, num_nodes: int = 3, partitions_per_node: int = 8,
                 num_zones: int = 1, clock: Clock | None = None,
                 network: SimNetwork | None = None,
                 data_root: str | None = None, seed: int = 0,
                 disk: SimDisk | None = None):
        from repro.voldemort.server import VoldemortServer
        self.clock = clock if clock is not None else SimClock()
        self.network = network or SimNetwork(clock=self.clock, seed=seed)
        self.ring: HashRing = build_balanced_ring(
            num_nodes, num_nodes * partitions_per_node, num_zones)
        self.stores: dict[str, StoreDefinition] = {}
        self.data_root = data_root
        self.disk = disk
        self.servers: dict[int, VoldemortServer] = {
            node_id: VoldemortServer(node_id, self)
            for node_id in self.ring.nodes
        }

    # -- store management (the Admin Service creates/drops via these) --------

    def define_store(self, definition: StoreDefinition) -> None:
        if definition.name in self.stores:
            raise ConfigurationError(f"store {definition.name!r} already defined")
        if definition.replication_factor > len(self.ring.nodes):
            raise ConfigurationError("replication factor exceeds cluster size")
        self.stores[definition.name] = definition
        for server in self.servers.values():
            server.open_store(definition)

    def drop_store(self, name: str) -> None:
        if name not in self.stores:
            raise ConfigurationError(f"no store {name!r}")
        del self.stores[name]
        for server in self.servers.values():
            server.close_store(name)

    def store_definition(self, name: str) -> StoreDefinition:
        try:
            return self.stores[name]
        except KeyError:
            raise ConfigurationError(f"no store {name!r}") from None

    # -- helpers ---------------------------------------------------------------

    def node_name(self, node_id: int) -> str:
        return f"node-{node_id}"

    def server_for(self, node_id: int):
        return self.servers[node_id]

    def node_disk(self, node_id: int):
        """The node's private crash domain on the simulated disk, or
        None when the cluster runs on the real filesystem."""
        if self.disk is None:
            return None
        return self.disk.scope(self.node_name(node_id))

    def make_engine(self, definition: StoreDefinition,
                    node_id: int) -> StorageEngine:
        if definition.engine_type == "memory":
            return InMemoryStorageEngine()
        if definition.engine_type in ("log-structured", "read-only"):
            if self.disk is not None:
                if definition.engine_type == "read-only":
                    raise ConfigurationError(
                        "read-only stores load from real build artifacts; "
                        "use data_root, not a SimDisk")
                # durable mode: every acked write is fsynced, so a
                # SimDisk crash loses nothing that was acknowledged
                return LogStructuredEngine(
                    definition.name, sync_every_write=True,
                    disk=self.node_disk(node_id))
            if self.data_root is None:
                raise ConfigurationError(
                    f"store {definition.name!r} needs on-disk storage; "
                    "construct the cluster with data_root=...")
            directory = os.path.join(self.data_root, f"node-{node_id}",
                                     definition.name)
            if definition.engine_type == "log-structured":
                return LogStructuredEngine(directory)
            return ReadOnlyStorageEngine(directory)
        raise ConfigurationError(f"unknown engine type {definition.engine_type!r}")

    # -- crash / restart lifecycle ---------------------------------------------

    def kill_node(self, node_id: int) -> int:
        """Kill a node: its unsynced disk bytes are lost, its open file
        handles die, and the network stops routing to it.  Returns the
        simulated bytes lost.  The server object stays registered so a
        later :meth:`restart_node` can rebuild it from disk."""
        name = self.node_name(node_id)
        self.network.failures.crash(name)
        lost = 0
        if self.disk is not None:
            lost = self.disk.crash_node(name)
        return lost

    def restart_node(self, node_id: int):
        """Boot a replacement server from the node's surviving files.

        Engines re-run their recovery scans (index rebuild, torn-tail
        truncation), the slop WAL is replayed into outstanding hints,
        and the network resumes delivering.  In-memory stores restart
        empty — that is the honest semantics of a non-durable engine.
        """
        from repro.voldemort.server import VoldemortServer
        name = self.node_name(node_id)
        if self.disk is not None:
            self.disk.restart_node(name)
        server = VoldemortServer(node_id, self)
        for definition in self.stores.values():
            server.open_store(definition)
        self.servers[node_id] = server
        self.network.failures.recover(name)
        return server

    def close(self) -> None:
        for server in self.servers.values():
            server.close()
