"""Chord-style finger-table lookup — the baseline for EXP-V4.

The paper contrasts Voldemort with "previous DHT work (like Chord)":
storing the complete topology on every node makes lookups O(1) instead
of O(log N) routing hops (§II.A).  This module implements classic Chord
successor lookup with finger tables so the benchmark can measure hop
counts side by side.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

M_BITS = 64
RING_SIZE = 1 << M_BITS


def chord_hash(data: bytes) -> int:
    return int.from_bytes(hashlib.md5(data).digest()[:8], "big")


@dataclass
class ChordNode:
    node_id: int          # position on the identifier circle
    name: str
    fingers: list[int] = None  # populated by the ring

    def __post_init__(self):
        if not 0 <= self.node_id < RING_SIZE:
            raise ConfigurationError("node id outside the identifier circle")


class ChordRing:
    """A stabilized Chord ring (no churn — we only measure lookups)."""

    def __init__(self, node_names: list[str]):
        if not node_names:
            raise ConfigurationError("need at least one node")
        self.nodes: dict[int, ChordNode] = {}
        for name in node_names:
            node_id = chord_hash(name.encode())
            self.nodes[node_id] = ChordNode(node_id, name)
        self._sorted_ids = sorted(self.nodes)
        for node in self.nodes.values():
            node.fingers = self._build_fingers(node.node_id)

    def _successor(self, point: int) -> int:
        """First node id clockwise from ``point`` (inclusive)."""
        idx = bisect_right(self._sorted_ids, point - 1)
        if idx == len(self._sorted_ids):
            return self._sorted_ids[0]
        return self._sorted_ids[idx]

    def _build_fingers(self, node_id: int) -> list[int]:
        return [self._successor((node_id + (1 << i)) % RING_SIZE)
                for i in range(M_BITS)]

    @staticmethod
    def _in_open_interval(x: int, a: int, b: int) -> bool:
        """x in (a, b) on the circle."""
        if a < b:
            return a < x < b
        return x > a or x < b

    def lookup(self, key: bytes, start_name: str | None = None
               ) -> tuple[str, int]:
        """Find the node owning ``key``; returns (owner name, hop count).

        Implements iterative closest-preceding-finger routing.  Hops
        count the inter-node messages a real Chord lookup would make.
        """
        key_id = chord_hash(key)
        owner_id = self._successor(key_id)
        if start_name is not None:
            current = chord_hash(start_name.encode())
            if current not in self.nodes:
                raise ConfigurationError(f"unknown node {start_name!r}")
        else:
            current = self._sorted_ids[0]
        hops = 0
        while current != owner_id:
            successor = self._successor((current + 1) % RING_SIZE)
            if self._in_open_interval(key_id, current, successor) \
                    or key_id == successor:
                current = successor
                hops += 1
                break
            current = self._closest_preceding(current, key_id)
            hops += 1
            if hops > 4 * M_BITS:
                raise RuntimeError("chord lookup failed to converge")
        return self.nodes[owner_id].name, hops

    def _closest_preceding(self, node_id: int, key_id: int) -> int:
        node = self.nodes[node_id]
        for finger in reversed(node.fingers):
            if self._in_open_interval(finger, node_id, key_id):
                return finger
        return self._successor((node_id + 1) % RING_SIZE)


class FullTopologyRouter:
    """Voldemort's O(1) alternative: every node knows the whole ring."""

    def __init__(self, node_names: list[str]):
        if not node_names:
            raise ConfigurationError("need at least one node")
        self._ids = sorted((chord_hash(n.encode()), n) for n in node_names)

    def lookup(self, key: bytes) -> tuple[str, int]:
        """Owner via local binary search; always a single hop."""
        key_id = chord_hash(key)
        idx = bisect_right([i for i, _ in self._ids], key_id - 1)
        if idx == len(self._ids):
            idx = 0
        return self._ids[idx][1], 1
