"""MySQL-style local store: tables, transactions, binlog, semi-sync.

Espresso "stores documents in MySQL as the local data store" and
captures every change, tagged with its transaction sequence number, in
"a single MySQL binlog to preserve sequential I/O pattern" (§IV.B).
Databus consumes "the database replication log" as one of its capture
approaches (§III.C).  This package supplies that substrate:

* :class:`Table` / :class:`TableSchema` — rows with composite primary
  keys, NOT NULL enforcement, ordered scans;
* :class:`SqlDatabase` — multi-statement transactions committing
  atomically, each commit assigned a monotonic SCN and appended to a
  single per-database :class:`Binlog`;
* semi-synchronous replication — commit blocks until the registered
  replication listener (the Databus relay, in Espresso's deployment)
  acknowledges the transaction, so "each change is written to two
  places before being committed".
"""

from repro.sqlstore.table import Column, Row, Table, TableSchema
from repro.sqlstore.binlog import (
    WATERMARK_TABLE,
    Binlog,
    BinlogTransaction,
    ChangeEvent,
    ChangeKind,
)
from repro.sqlstore.database import SemiSyncTimeoutError, SqlDatabase, Transaction

__all__ = [
    "Column",
    "Row",
    "Table",
    "TableSchema",
    "WATERMARK_TABLE",
    "Binlog",
    "BinlogTransaction",
    "ChangeEvent",
    "ChangeKind",
    "SemiSyncTimeoutError",
    "SqlDatabase",
    "Transaction",
]
